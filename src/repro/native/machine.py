"""The native machine: executes the same IR under the *native execution
model* the paper's baseline tools are built on.

Pointers are plain integers into a flat address space, the stack is a
bump-allocated region whose stale bytes leak into uninitialized locals,
malloc reuses freed blocks immediately, and nothing checks object bounds.
Undefined behaviour therefore does what it does on real hardware: silently
corrupts neighbouring memory or, if the access leaves the mapped regions,
segfaults.

Tools attach in two ways, mirroring §2.2:

* **compile-time instrumentation** (ASan): an IR pass inserts check calls
  and redzone'd allocas before the code reaches this machine, and
  interceptors wrap some builtins;
* **run-time instrumentation** (memcheck): a :class:`Tool` hooks every
  memory access this machine performs, including inside the "precompiled"
  builtin libc.
"""

from __future__ import annotations

from .. import ir
from ..ir import instructions as inst
from ..ir import types as irt
from ..core.errors import (InterpreterLimit, ProgramBug, ProgramCrash,
                           ProgramExit)
from ..core.interpreter import Frame, PreparedBlock, PreparedFunction, \
    _NodeBuilder
from ..core.bits import to_signed
from . import memory as layout
from .errors import Segfault
from .memory import BumpAllocator, FlatMemory


class Tool:
    """Run-time instrumentation hooks (the Valgrind attachment point)."""

    name = "none"

    def on_startup(self, machine: "NativeMachine") -> None:
        pass

    def on_read(self, machine, address: int, size: int, loc) -> None:
        pass

    def on_write(self, machine, address: int, size: int, loc) -> None:
        pass

    def on_malloc(self, machine, address: int, size: int,
                  zeroed: bool) -> None:
        pass

    def on_stack_alloc(self, machine, address: int, size: int) -> None:
        pass

    def on_free(self, machine, address: int, loc) -> None:
        pass

    def on_stack_restore(self, machine, low: int, high: int) -> None:
        pass

    def wrap_builtins(self, builtins: dict) -> dict:
        return builtins

    def reset(self, machine: "NativeMachine") -> None:
        """Reset tool state for a fresh in-process run."""


class _IntSpace:
    """Pointer<->integer adapter: native pointers already are integers."""

    @staticmethod
    def address_of(value):
        return value if value is not None else 0

    @staticmethod
    def to_pointer(value):
        return value

    @staticmethod
    def sort_key(value):
        return value if value is not None else 0


class NativeMachine:
    """Executes an IR module under the native execution model."""

    def __init__(self, module: ir.Module, tool: Tool | None = None,
                 builtins: dict | None = None,
                 max_steps: int | None = None):
        from .nativelibc import default_builtins
        self.module = module
        self.memory = FlatMemory()
        self.allocator = BumpAllocator(self.memory)
        self.tool = tool or Tool()
        self.max_steps = max_steps
        self.steps = 0
        self.space = _IntSpace()
        self.sp = layout.STACK_TOP
        self.prepared: dict[str, PreparedFunction] = {}
        self.global_addresses: dict[str, int] = {}
        self.global_sizes: dict[str, int] = {}
        self.function_addresses: dict[str, int] = {}
        self.functions_by_address: dict[int, ir.Function] = {}
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.stdin = bytearray()
        self.stdin_pos = 0
        self.files: dict[int, dict] = {}
        self.vfs: dict[str, bytearray] = {}
        self.next_fd = 3
        self.current_site = None
        self.current_loc = None
        self.current_frame: Frame | None = None
        self._envp_address = layout.ARGV_BASE
        self.argv_region = (layout.ARGV_BASE, layout.ARGV_BASE)
        # Bind access hooks only when the tool overrides them, so plain
        # and compile-time-instrumented execution pays no per-access call.
        tool_type = type(self.tool)
        self._read_hook = self.tool.on_read \
            if tool_type.on_read is not Tool.on_read else None
        self._write_hook = self.tool.on_write \
            if tool_type.on_write is not Tool.on_write else None
        self._layout_functions()
        self._layout_globals()
        base_builtins = default_builtins()
        if builtins:
            base_builtins.update(builtins)
        self.builtins = self.tool.wrap_builtins(base_builtins)
        self.tool.on_startup(self)
        from .nativestdio import initialize_stdio
        initialize_stdio(self)

    def reset(self) -> None:
        """Reset program data for a fresh run on the same machine (the
        benchmark harness's 'process re-exec' between iterations; the
        prepared code is reused)."""
        start = layout.GLOBALS_BASE
        self.memory.data[start:] = b"\x00" * (layout.MEMORY_SIZE - start)
        for name, gvar in self.module.globals.items():
            if gvar.initializer is not None:
                self._write_initializer(self.global_addresses[name],
                                        gvar.initializer)
        self.allocator = BumpAllocator(self.memory)
        self.sp = layout.STACK_TOP
        self.stdout.clear()
        self.stderr.clear()
        self.stdin_pos = 0
        self.files.clear()
        self.next_fd = 3
        self._strtok_state = 0
        if hasattr(self, "_interned"):
            self._interned.clear()
        self.tool.reset(self)
        from .nativestdio import initialize_stdio
        initialize_stdio(self)

    # -- layout -----------------------------------------------------------------

    def _layout_functions(self) -> None:
        address = layout.CODE_BASE + 16
        for name in self.module.functions:
            self.function_addresses[name] = address
            self.functions_by_address[address] = \
                self.module.functions[name]
            address += 16

    def _layout_globals(self) -> None:
        # Globals are placed with 32-byte gaps; instrumentation may poison
        # the gaps as redzones.
        cursor = layout.GLOBALS_BASE + 64
        for name, gvar in self.module.globals.items():
            size = max(gvar.value_type.size, 1)
            align = max(gvar.value_type.align, 8)
            cursor = (cursor + align - 1) // align * align
            self.global_addresses[name] = cursor
            self.global_sizes[name] = size
            if gvar.initializer is not None:
                self._write_initializer(cursor, gvar.initializer)
            cursor += size + 32
            if cursor >= layout.GLOBALS_END:
                raise ProgramCrash("globals segment exhausted")

    def _write_initializer(self, address: int, const: ir.Constant) -> None:
        if isinstance(const, ir.ConstString):
            self.memory.store_bytes(address, const.data)
        elif isinstance(const, ir.ConstArray):
            elem_size = const.type.elem.size
            for i, element in enumerate(const.elements):
                self._write_initializer(address + i * elem_size, element)
        elif isinstance(const, ir.ConstStruct):
            for field, element in zip(const.type.fields, const.elements):
                self._write_initializer(address + field.offset, element)
        elif isinstance(const, (ir.ConstZero, ir.ConstUndef)):
            pass
        elif isinstance(const, ir.ConstFloat):
            self.memory.store_float(address, const.type.size, const.value)
        else:
            value = self.constant_value(const)
            self.memory.store_int(address, const.type.size, value)

    # -- constants ----------------------------------------------------------------

    def constant_value(self, const: ir.Value):
        if isinstance(const, ir.ConstInt):
            return const.value
        if isinstance(const, ir.ConstFloat):
            return const.value
        if isinstance(const, ir.ConstNull):
            return 0
        if isinstance(const, (ir.ConstUndef, ir.ConstZero)):
            return 0 if not isinstance(const.type, irt.FloatType) else 0.0
        if isinstance(const, ir.Function):
            return self.function_addresses[const.name]
        if isinstance(const, ir.GlobalVariable):
            return self.global_addresses[const.name]
        if isinstance(const, ir.ConstGEP):
            if isinstance(const.base, ir.Function):
                return self.function_addresses[const.base.name]
            return self.global_addresses[const.base.name] \
                + const.byte_offset
        raise TypeError(f"not a native constant: {const!r}")

    # -- checked memory access (tool hooks + segfault detection) ----------------

    def mem_read_int(self, address: int, size: int, loc=None) -> int:
        self.memory.check(address, size, "read", loc)
        if self._read_hook is not None:
            self._read_hook(self, address, size, loc)
        return self.memory.load_int(address, size)

    def mem_read_float(self, address: int, size: int, loc=None) -> float:
        self.memory.check(address, size, "read", loc)
        if self._read_hook is not None:
            self._read_hook(self, address, size, loc)
        return self.memory.load_float(address, size)

    def mem_write_int(self, address: int, size: int, value: int,
                      loc=None) -> None:
        self.memory.check(address, size, "write", loc)
        if self._write_hook is not None:
            self._write_hook(self, address, size, loc)
        self.memory.store_int(address, size, value)

    def mem_write_float(self, address: int, size: int, value: float,
                        loc=None) -> None:
        self.memory.check(address, size, "write", loc)
        if self._write_hook is not None:
            self._write_hook(self, address, size, loc)
        self.memory.store_float(address, size, value)

    def mem_read_bytes(self, address: int, count: int, loc=None) -> bytes:
        self.memory.check(address, max(count, 1), "read", loc)
        if self._read_hook is not None:
            self._read_hook(self, address, count, loc)
        return self.memory.load_bytes(address, count)

    def mem_write_bytes(self, address: int, data: bytes, loc=None) -> None:
        self.memory.check(address, max(len(data), 1), "write", loc)
        if self._write_hook is not None:
            self._write_hook(self, address, len(data), loc)
        self.memory.store_bytes(address, data)

    # -- function management ---------------------------------------------------

    def prepared_function(self, function: ir.Function) -> PreparedFunction:
        cached = self.prepared.get(function.name)
        if cached is not None and cached.function is function:
            return cached
        prepared = PreparedFunction(function)
        _prepare_native(self, function, prepared)
        self.prepared[function.name] = prepared
        return prepared

    def intrinsic(self, name: str):
        handler = self.builtins.get(name)
        if handler is None:
            raise ir.LinkError(f"undefined symbol @{name} at native "
                               f"link time")
        return handler

    # -- calls --------------------------------------------------------------------

    def call_function(self, target, args: list):
        if isinstance(target, ir.Function):
            if not target.is_definition:
                return self.intrinsic(target.name)(self, self.current_frame,
                                                   args)
            target = self.prepared_function(target)
        prepared: PreparedFunction = target
        prepared.call_count += 1
        return self.interpret(prepared, args)

    def call_address(self, address: int, args: list):
        function = self.functions_by_address.get(address)
        if function is None:
            raise Segfault(address, 1, "execute")
        return self.call_function(function, args)

    def interpret(self, prepared: PreparedFunction, args: list):
        frame = Frame(prepared.nregs, prepared.name)
        saved_sp = self.sp
        saved_frame = self.current_frame
        # Variadic tail: write 8-byte slots into the caller-visible
        # argument area on the stack (sized value + stale upper bytes).
        params = prepared.param_indices
        fixed = args[:len(params)]
        extra = args[len(params):]
        va_base = 0
        if extra:
            # Slots sit flush against the caller's frame, like spilled
            # argument registers.
            self.sp -= 8 * len(extra)
            va_base = self.sp
            for i, entry in enumerate(extra):
                value, vtype = entry if isinstance(entry, tuple) \
                    else (entry, irt.I64)
                slot = va_base + 8 * i
                if isinstance(vtype, irt.FloatType):
                    self.memory.store_float(slot, vtype.size, value)
                elif isinstance(vtype, irt.PointerType):
                    self.memory.store_int(slot, 8, value or 0)
                else:
                    # Only the value's own bytes are written; the upper
                    # bytes of the slot keep whatever the stack held.
                    self.memory.store_int(slot, min(vtype.size, 8), value)
                self.tool.on_write(self, slot, 8, None)
        frame.varargs = extra
        frame.va_base = va_base
        frame.saved_sp = saved_sp
        regs = frame.regs
        for i, index in enumerate(params):
            value = fixed[i]
            regs[index] = value[0] if isinstance(value, tuple) else value
        self.current_frame = frame
        try:
            return self._run_blocks(prepared, frame)
        finally:
            self.tool.on_stack_restore(self, self.sp, saved_sp)
            self.sp = saved_sp
            self.current_frame = saved_frame

    def _run_blocks(self, prepared: PreparedFunction, frame: Frame):
        blocks = prepared.blocks
        index = 0
        previous = -1
        max_steps = self.max_steps
        while True:
            block = blocks[index]
            if block.phi_moves:
                moves = block.phi_moves.get(previous)
                if moves:
                    values = [getter(frame) for _, getter in moves]
                    for (dst, _), value in zip(moves, values):
                        frame.regs[dst] = value
            for step in block.steps:
                step(frame)
            result = block.terminator(frame)
            if type(result) is tuple:
                return result[0]
            previous = index
            index = result
            if max_steps is not None:
                self.steps += 1
                if self.steps > max_steps:
                    raise InterpreterLimit(
                        f"exceeded {max_steps} native steps")

    # -- stack allocation ---------------------------------------------------------

    def stack_alloc(self, size: int, align: int = 1) -> int:
        self.sp -= size
        if align > 1:
            self.sp &= ~(align - 1)
        if self.sp < layout.STACK_LIMIT:
            raise Segfault(self.sp, size, "stack-grow")
        self.tool.on_stack_alloc(self, self.sp, size)
        return self.sp

    # -- program entry -----------------------------------------------------------

    def run_main(self, argv: list[str] | None = None,
                 stdin: bytes = b"") -> int:
        self.stdin = bytearray(stdin)
        main = self.module.functions.get("main")
        if main is None or not main.is_definition:
            raise ir.LinkError("program has no main()")
        argv = list(argv or ["program"])
        argc = len(argv)
        argv_address = self._write_argv(argv)
        args = [argc, argv_address, self._envp_address]
        nparams = len(main.ftype.params)
        try:
            status = self.call_function(main, args[:nparams])
        except ProgramExit as exit_request:
            return exit_request.status
        if status is None:
            return 0
        return to_signed(status & 0xFFFFFFFF, 32)

    def _write_argv(self, argv: list[str]) -> int:
        """Write argv[] then envp[] contiguously into the loader area.
        argv has no guard after its NULL terminator: argv[argc+k] reads
        straight into the environment strings."""
        cursor = layout.ARGV_BASE + 16
        pointers = []
        env = ["SULONG_SECRET=hunter2", "PATH=/usr/bin", "HOME=/root"]
        string_cursor = cursor + 8 * (len(argv) + 1 + len(env) + 1)
        table = cursor
        for arg in argv:
            data = arg.encode() + b"\x00"
            self.memory.store_bytes(string_cursor, data)
            pointers.append(string_cursor)
            string_cursor += len(data)
        pointers.append(0)
        env_pointers = []
        for entry in env:
            data = entry.encode() + b"\x00"
            self.memory.store_bytes(string_cursor, data)
            env_pointers.append(string_cursor)
            string_cursor += len(data)
        env_pointers.append(0)
        all_pointers = pointers + env_pointers
        for i, pointer in enumerate(all_pointers):
            self.memory.store_int(table + 8 * i, 8, pointer)
        self._envp_address = table + 8 * len(pointers)
        self.argv_region = (layout.ARGV_BASE, string_cursor)
        return table


# ---------------------------------------------------------------------------
# Native node builder: shares all pure-value nodes with the managed
# interpreter's builder; overrides everything that touches memory.
# ---------------------------------------------------------------------------

class _NativeNodeBuilder(_NodeBuilder):
    def __init__(self, machine: NativeMachine, index_of, block_index):
        super().__init__(machine, index_of, block_index)
        self.machine = machine

    # constants resolve to integers/floats via the machine
    def getter(self, value: ir.Value):
        if isinstance(value, ir.VirtualRegister):
            index = self.index_of(value)
            return lambda frame, _i=index: frame.regs[_i]
        constant = self.machine.constant_value(value)
        return lambda frame, _c=constant: _c

    def _node_Alloca(self, instruction: inst.Alloca):
        dst = self.index_of(instruction.result)
        size = max(instruction.allocated_type.size, 1)
        # Natural alignment: locals pack tightly, as real frames do.
        align = max(instruction.allocated_type.align, 1)
        machine = self.machine

        def node(frame):
            frame.regs[dst] = machine.stack_alloc(size, align)
        return node

    def _node_Load(self, instruction: inst.Load):
        dst = self.index_of(instruction.result)
        pointer = self.getter(instruction.pointer)
        value_type = instruction.result.type
        loc = instruction.loc
        machine = self.machine
        size = value_type.size
        if isinstance(value_type, irt.FloatType):
            def node(frame):
                frame.regs[dst] = machine.mem_read_float(pointer(frame),
                                                         size, loc)
            return node
        mask = value_type.mask if isinstance(value_type, irt.IntType) \
            else (1 << 64) - 1

        def node(frame):
            frame.regs[dst] = machine.mem_read_int(pointer(frame), size,
                                                   loc) & mask
        return node

    def _node_Store(self, instruction: inst.Store):
        pointer = self.getter(instruction.pointer)
        value = self.getter(instruction.value)
        value_type = instruction.value.type
        loc = instruction.loc
        machine = self.machine
        size = value_type.size
        if isinstance(value_type, irt.FloatType):
            def node(frame):
                machine.mem_write_float(pointer(frame), size, value(frame),
                                        loc)
            return node

        def node(frame):
            machine.mem_write_int(pointer(frame), size, value(frame) or 0,
                                  loc)
        return node

    def _node_Gep(self, instruction: inst.Gep):
        dst = self.index_of(instruction.result)
        base = self.getter(instruction.base)
        pointee = instruction.base.type.pointee

        const_offset = 0
        dynamic: list[tuple] = []
        current = pointee
        for position, index in enumerate(instruction.indices):
            if position == 0:
                stride = current.size
            elif isinstance(current, irt.ArrayType):
                stride = current.elem.size
                current = current.elem
            elif isinstance(current, irt.StructType):
                field = current.fields[index.value]
                const_offset += field.offset
                current = field.type
                continue
            else:
                raise TypeError(f"cannot GEP into {current}")
            if isinstance(index, ir.ConstInt):
                const_offset += index.signed_value * stride
            else:
                dynamic.append((self.getter(index), stride,
                                index.type.bits))

        if not dynamic:
            def node(frame, _off=const_offset):
                frame.regs[dst] = (base(frame) + _off) \
                    & 0xFFFFFFFFFFFFFFFF
            return node

        def node(frame):
            offset = const_offset
            for getter, stride, bits in dynamic:
                offset += to_signed(getter(frame), bits) * stride
            frame.regs[dst] = (base(frame) + offset) & 0xFFFFFFFFFFFFFFFF
        return node

    def _node_Cast(self, instruction: inst.Cast):
        kind = instruction.kind
        if kind == "bitcast":
            dst = self.index_of(instruction.result)
            value = self.getter(instruction.value)
            return lambda frame: frame.regs.__setitem__(dst, value(frame))
        if kind == "inttoptr":
            dst = self.index_of(instruction.result)
            value = self.getter(instruction.value)
            return lambda frame: frame.regs.__setitem__(dst, value(frame))
        if kind == "ptrtoint":
            dst = self.index_of(instruction.result)
            value = self.getter(instruction.value)
            mask = instruction.result.type.mask
            return lambda frame: frame.regs.__setitem__(
                dst, value(frame) & mask)
        return super()._node_Cast(instruction)

    def _node_Call(self, instruction: inst.Call):
        dst = None
        if instruction.result is not None:
            dst = self.index_of(instruction.result)
        arg_getters = [self.getter(arg) for arg in instruction.args]
        arg_types = [arg.type for arg in instruction.args]
        signature = instruction.signature
        n_fixed = len(signature.params)
        machine = self.machine
        loc = instruction.loc
        callee = instruction.callee
        site_id = id(instruction)

        def pack(frame):
            values = [getter(frame) for getter in arg_getters]
            if len(values) == n_fixed:
                return values
            packed = values[:n_fixed]
            for value, vtype in zip(values[n_fixed:], arg_types[n_fixed:]):
                packed.append((value, vtype))
            return packed

        # Compile-time instrumentation is cheap at run time: the shadow
        # check call is inlined into the executing code (as ASan's two
        # shadow instructions are), rather than dispatched like a call.
        if isinstance(callee, ir.Function) \
                and callee.name == "__asan_check" \
                and hasattr(machine.tool, "shadow") \
                and isinstance(instruction.args[1], ir.ConstInt):
            tool = machine.tool
            shadow = tool.shadow.shadow
            address_getter = arg_getters[0]
            size = instruction.args[1].value
            is_write = bool(isinstance(instruction.args[2], ir.ConstInt)
                            and instruction.args[2].value)

            def node(frame):
                address = address_getter(frame)
                if shadow.count(0, address, address + size) != size:
                    tool.check(machine, address, size, is_write, loc)
            return node

        if isinstance(callee, ir.Function):
            if callee.is_definition:
                def node(frame, _target=callee):
                    try:
                        result = machine.call_function(_target, pack(frame))
                    except ProgramBug as bug:
                        bug.attach_location(loc)
                        raise
                    except RecursionError:
                        raise Segfault(machine.sp, 0, "stack-grow",
                                       loc) from None
                    if dst is not None:
                        frame.regs[dst] = result
                return node

            builtin_name = callee.name

            def node(frame):
                handler = machine.intrinsic(builtin_name)
                machine.current_site = site_id
                machine.current_loc = loc
                try:
                    result = handler(machine, frame, pack(frame))
                except ProgramBug as bug:
                    bug.attach_location(loc)
                    raise
                if dst is not None:
                    frame.regs[dst] = result
            return node

        target_getter = self.getter(callee)

        def node(frame):
            address = target_getter(frame)
            try:
                result = machine.call_address(address, pack(frame))
            except ProgramBug as bug:
                bug.attach_location(loc)
                raise
            except RecursionError:
                raise Segfault(machine.sp, 0, "stack-grow", loc) from None
            if dst is not None:
                frame.regs[dst] = result
        return node


def _prepare_native(machine: NativeMachine, function: ir.Function,
                    prepared: PreparedFunction) -> None:
    reg_index: dict[int, int] = {}

    def index_of(register: ir.VirtualRegister) -> int:
        idx = reg_index.get(id(register))
        if idx is None:
            idx = len(reg_index)
            reg_index[id(register)] = idx
        return idx

    for param in function.params:
        prepared.param_indices.append(index_of(param))

    block_index = {block: i for i, block in enumerate(function.blocks)}
    builder = _NativeNodeBuilder(machine, index_of, block_index)

    prepared_blocks = []
    for block in function.blocks:
        pblock = PreparedBlock(block.label)
        for instruction in block.instructions:
            if isinstance(instruction, inst.Phi):
                continue
            if instruction.is_terminator:
                pblock.terminator = builder.terminator(instruction)
            else:
                pblock.steps.append(builder.step(instruction))
        prepared_blocks.append(pblock)

    for block, pblock in zip(function.blocks, prepared_blocks):
        phis = block.phis()
        if not phis:
            continue
        for phi in phis:
            dst = index_of(phi.result)
            for pred_block, value in phi.incoming:
                pred = block_index[pred_block]
                pblock.phi_moves.setdefault(pred, []).append(
                    (dst, builder.getter(value)))

    prepared.blocks = prepared_blocks
    prepared.nregs = len(reg_index)
