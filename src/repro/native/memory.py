"""Flat byte-addressable memory: the native execution model's substrate.

Layout (a small AMD64-like address space):

    0x000000 - 0x000FFF   unmapped null page (dereferencing traps)
    0x001000 - 0x00FFFF   function "code" addresses (data access traps)
    0x010000 - 0x0FFFFF   globals
    0x100000 - 0x2FFFFF   heap (grows up)
    0x300000 - 0x3EFFFF   stack (grows down from STACK_TOP)
    0x3F0000 - 0x3FFFFF   argv / environment area, written by the process
                          loader *before* any instrumented code runs —
                          which is why compile-time instrumentation (ASan)
                          never covers it (§4.1 case 1)

Out-of-bounds accesses that stay inside a mapped region silently read or
corrupt neighbouring objects, exactly like real hardware; only leaving the
mapped regions raises :class:`~repro.native.errors.Segfault`.
"""

from __future__ import annotations

import struct

from .errors import Segfault

NULL_PAGE_END = 0x1000
CODE_BASE = 0x1000
CODE_END = 0x10000
GLOBALS_BASE = 0x10000
GLOBALS_END = 0x100000
HEAP_BASE = 0x100000
HEAP_END = 0x300000
STACK_LIMIT = 0x300000
STACK_TOP = 0x3F0000
ARGV_BASE = 0x3F0000
MEMORY_SIZE = 0x400000

_PACK_F32 = struct.Struct("<f")
_PACK_F64 = struct.Struct("<d")


class FlatMemory:
    """A single bytearray with bounds (segfault) checking only."""

    __slots__ = ("data",)

    def __init__(self):
        self.data = bytearray(MEMORY_SIZE)

    # -- raw access (no policy hooks; the machine applies those) -------------

    def check(self, address: int, size: int, access: str, loc=None) -> None:
        if address < GLOBALS_BASE or address + size > MEMORY_SIZE:
            raise Segfault(address, size, access, loc)

    def load_int(self, address: int, size: int) -> int:
        return int.from_bytes(self.data[address:address + size], "little")

    def store_int(self, address: int, size: int, value: int) -> None:
        self.data[address:address + size] = \
            (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")

    def load_float(self, address: int, size: int) -> float:
        if size == 8:
            return _PACK_F64.unpack_from(self.data, address)[0]
        return _PACK_F32.unpack_from(self.data, address)[0]

    def store_float(self, address: int, size: int, value: float) -> None:
        if size == 8:
            _PACK_F64.pack_into(self.data, address, value)
        else:
            _PACK_F32.pack_into(self.data, address, value)

    def load_bytes(self, address: int, count: int) -> bytes:
        return bytes(self.data[address:address + count])

    def store_bytes(self, address: int, data: bytes) -> None:
        self.data[address:address + len(data)] = data


class BumpAllocator:
    """The native heap: first-fit with immediate reuse of freed blocks.

    Blocks carry an 8-byte size header (classic dlmalloc-style layout), so
    a buffer overflow can silently corrupt the allocator metadata of the
    next block, and use-after-free reads whatever the reused block now
    holds — the failure modes shadow-memory tools try to catch.
    """

    HEADER = 8

    def __init__(self, memory: FlatMemory, base: int = HEAP_BASE,
                 end: int = HEAP_END):
        self.memory = memory
        self.base = base
        self.end = end
        self.cursor = base
        self.free_lists: dict[int, list[int]] = {}

    def _aligned(self, size: int) -> int:
        return (size + 15) // 16 * 16

    def malloc(self, size: int) -> int:
        rounded = self._aligned(max(size, 1))
        bucket = self.free_lists.get(rounded)
        if bucket:
            address = bucket.pop()  # immediate reuse: hides UAF
            self.memory.store_int(address - self.HEADER, 8, rounded)
            return address
        block = self.cursor
        if block + self.HEADER + rounded > self.end:
            return 0  # out of memory: malloc returns NULL
        self.memory.store_int(block, 8, rounded)
        self.cursor = block + self.HEADER + rounded
        return block + self.HEADER

    def usable_size(self, address: int) -> int:
        return self.memory.load_int(address - self.HEADER, 8)

    def free(self, address: int) -> None:
        if address == 0:
            return
        # No validation whatsoever: freeing a stack pointer or freeing
        # twice silently corrupts the free lists, as on a real heap.
        if not (self.base < address < self.end):
            return
        size = self.memory.load_int(address - self.HEADER, 8)
        if size == 0 or size > self.end - self.base:
            return
        self.free_lists.setdefault(size, []).append(address)
