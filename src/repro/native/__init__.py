"""The native execution model: flat memory, integer pointers, no checks.

The substrate on which the baseline tools (ASan-style compile-time
instrumentation, memcheck-style run-time instrumentation) are built.
"""

from .errors import NativeTrap, Segfault
from .loader import compile_native, run_native
from .machine import NativeMachine, Tool

__all__ = ["NativeTrap", "Segfault", "compile_native", "run_native",
           "NativeMachine", "Tool"]
