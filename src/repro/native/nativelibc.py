"""The native libc: "precompiled" builtins operating on flat memory.

This models the baseline tools' world (P4): libc is a binary blob the
compile-time instrumentation never sees.  Its accesses go through the
machine's hooked ``mem_*`` helpers, so *run-time* instrumentation
(memcheck) observes them — exactly as Valgrind instruments libc's machine
code — while ASan only checks what its interceptors explicitly wrap.

Variadic calls follow the native ABI model: the caller writes 8-byte
argument slots onto the simulated stack; ``printf`` et al. walk those slots
with no idea how many were actually passed.  A missing argument or a
``%ld`` reading a 4-byte slot silently consumes stale stack bytes (§4.1
cases 2 and 5).
"""

from __future__ import annotations

import math

from ..core.errors import ProgramCrash, ProgramExit
from ..ir import types as irt
from ..core.bits import to_signed
from .errors import NativeTrap

BUILTINS: dict[str, object] = {}


def builtin(name: str):
    def register(fn):
        BUILTINS[name] = fn
        return fn
    return register


def default_builtins() -> dict[str, object]:
    from . import nativestdio  # noqa: F401 — registers the stdio builtins
    return dict(BUILTINS)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def read_cstring(machine, address: int, loc=None) -> bytes:
    out = bytearray()
    for offset in range(1 << 20):
        byte = machine.mem_read_int(address + offset, 1, loc)
        if byte == 0:
            return bytes(out)
        out.append(byte)
    raise ProgramCrash("unterminated native string")


class _VaReader:
    """Walks 8-byte argument slots on the simulated stack, obliviously."""

    __slots__ = ("machine", "cursor", "loc")

    def __init__(self, machine, base: int, loc=None):
        self.machine = machine
        self.cursor = base
        self.loc = loc

    def next_int(self, size: int) -> int:
        value = self.machine.mem_read_int(self.cursor, size, self.loc)
        self.cursor += 8
        return value

    def next_double(self) -> float:
        value = self.machine.mem_read_float(self.cursor, 8, self.loc)
        self.cursor += 8
        return value

    def next_pointer(self) -> int:
        value = self.machine.mem_read_int(self.cursor, 8, self.loc)
        self.cursor += 8
        return value


def _setup_va(machine, extra: list) -> tuple[int, int]:
    """Write variadic arguments as stack slots (the call ABI); returns
    (va_base, saved_sp).  Only each value's own bytes are written — the
    rest of the slot keeps stale stack content."""
    saved_sp = machine.sp
    if extra:
        machine.sp -= 8 * len(extra)
    base = machine.sp
    for i, entry in enumerate(extra):
        value, vtype = entry if isinstance(entry, tuple) else (entry,
                                                               irt.I64)
        slot = base + 8 * i
        if isinstance(vtype, irt.FloatType):
            machine.memory.store_float(slot, 8, float(value))
        elif isinstance(vtype, irt.PointerType):
            machine.memory.store_int(slot, 8, value or 0)
        else:
            machine.memory.store_int(slot, min(vtype.size, 8), value or 0)
        # The slot is an 8-byte register spill: run-time instrumentation
        # sees the whole slot as written (the value bytes are the value,
        # the rest is whatever the register held).
        machine.tool.on_write(machine, slot, 8, None)
    return base, saved_sp


# ---------------------------------------------------------------------------
# allocation
# ---------------------------------------------------------------------------

@builtin("malloc")
def _malloc(machine, frame, args):
    address = machine.allocator.malloc(args[0])
    if address:
        machine.tool.on_malloc(machine, address, args[0], zeroed=False)
    return address


@builtin("calloc")
def _calloc(machine, frame, args):
    size = args[0] * args[1]
    address = machine.allocator.malloc(size)
    if address:
        machine.memory.store_bytes(address, b"\x00" * size)
        machine.tool.on_malloc(machine, address, size, zeroed=True)
    return address


@builtin("realloc")
def _realloc(machine, frame, args):
    old, new_size = args
    if old == 0:
        return _malloc(machine, frame, [new_size])
    old_size = machine.allocator.usable_size(old)
    new = machine.allocator.malloc(new_size)
    if new:
        copy = min(old_size, new_size)
        machine.memory.store_bytes(new, machine.memory.load_bytes(old,
                                                                  copy))
        machine.tool.on_malloc(machine, new, new_size, zeroed=False)
    machine.tool.on_free(machine, old, machine.current_loc)
    machine.allocator.free(old)
    return new


@builtin("free")
def _free(machine, frame, args):
    machine.tool.on_free(machine, args[0], machine.current_loc)
    machine.allocator.free(args[0])
    return None


# ---------------------------------------------------------------------------
# process control
# ---------------------------------------------------------------------------

@builtin("exit")
@builtin("_Exit")
def _exit(machine, frame, args):
    status = args[0] if args else 0
    raise ProgramExit(to_signed(status & 0xFFFFFFFF, 32))


@builtin("abort")
def _abort(machine, frame, args):
    raise NativeTrap("SIGABRT: abort() called")


@builtin("__sulong_assert_fail")
def _assert_fail(machine, frame, args):
    expression = read_cstring(machine, args[0]).decode("ascii", "replace")
    raise NativeTrap(f"SIGABRT: assertion failed: {expression}")


@builtin("atexit")
def _atexit(machine, frame, args):
    return 0  # handlers are not run on the native model (simplification)


@builtin("getenv")
def _getenv(machine, frame, args):
    return 0


# ---------------------------------------------------------------------------
# memory / string functions
# ---------------------------------------------------------------------------

@builtin("__sulong_zero_memory")
def _zero_memory(machine, frame, args):
    address, size = args
    machine.mem_write_bytes(address, b"\x00" * size, machine.current_loc)
    return None


@builtin("__sulong_copy_memory")
def _copy_memory(machine, frame, args):
    dst, src, size = args
    data = machine.mem_read_bytes(src, size, machine.current_loc)
    machine.mem_write_bytes(dst, data, machine.current_loc)
    return None


@builtin("memcpy")
def _memcpy(machine, frame, args):
    dst, src, n = args
    if n:
        data = machine.mem_read_bytes(src, n, machine.current_loc)
        machine.mem_write_bytes(dst, data, machine.current_loc)
    return dst


@builtin("memmove")
def _memmove(machine, frame, args):
    return _memcpy(machine, frame, args)


@builtin("memset")
def _memset(machine, frame, args):
    dst, value, n = args
    if n:
        machine.mem_write_bytes(dst, bytes([value & 0xFF]) * n,
                                machine.current_loc)
    return dst


@builtin("memcmp")
def _memcmp(machine, frame, args):
    a, b, n = args
    loc = machine.current_loc
    for i in range(n):
        x = machine.mem_read_int(a + i, 1, loc)
        y = machine.mem_read_int(b + i, 1, loc)
        if x != y:
            return (x - y) & 0xFFFFFFFF
    return 0


@builtin("memchr")
def _memchr(machine, frame, args):
    address, value, n = args
    loc = machine.current_loc
    for i in range(n):
        if machine.mem_read_int(address + i, 1, loc) == (value & 0xFF):
            return address + i
    return 0


@builtin("strlen")
def _strlen(machine, frame, args):
    return len(read_cstring(machine, args[0], machine.current_loc))


@builtin("strcpy")
def _strcpy(machine, frame, args):
    dst, src = args
    data = read_cstring(machine, src, machine.current_loc) + b"\x00"
    machine.mem_write_bytes(dst, data, machine.current_loc)
    return dst


@builtin("strncpy")
def _strncpy(machine, frame, args):
    dst, src, n = args
    loc = machine.current_loc
    data = bytearray()
    for i in range(n):
        byte = machine.mem_read_int(src + i, 1, loc)
        data.append(byte)
        if byte == 0:
            break
    while len(data) < n:
        data.append(0)
    machine.mem_write_bytes(dst, bytes(data[:n]), loc)
    return dst


@builtin("strcat")
def _strcat(machine, frame, args):
    dst, src = args
    loc = machine.current_loc
    base = len(read_cstring(machine, dst, loc))
    data = read_cstring(machine, src, loc) + b"\x00"
    machine.mem_write_bytes(dst + base, data, loc)
    return dst


@builtin("strncat")
def _strncat(machine, frame, args):
    dst, src, n = args
    loc = machine.current_loc
    base = len(read_cstring(machine, dst, loc))
    data = read_cstring(machine, src, loc)[:n] + b"\x00"
    machine.mem_write_bytes(dst + base, data, loc)
    return dst


@builtin("strcmp")
def _strcmp(machine, frame, args):
    loc = machine.current_loc
    a, b = args
    i = 0
    while True:
        x = machine.mem_read_int(a + i, 1, loc)
        y = machine.mem_read_int(b + i, 1, loc)
        if x != y or x == 0:
            return (x - y) & 0xFFFFFFFF
        i += 1


@builtin("strncmp")
def _strncmp(machine, frame, args):
    loc = machine.current_loc
    a, b, n = args
    for i in range(n):
        x = machine.mem_read_int(a + i, 1, loc)
        y = machine.mem_read_int(b + i, 1, loc)
        if x != y or x == 0:
            return (x - y) & 0xFFFFFFFF
    return 0


@builtin("strcasecmp")
def _strcasecmp(machine, frame, args):
    loc = machine.current_loc
    a, b = args
    i = 0
    while True:
        x = machine.mem_read_int(a + i, 1, loc)
        y = machine.mem_read_int(b + i, 1, loc)
        lx = x + 32 if 65 <= x <= 90 else x
        ly = y + 32 if 65 <= y <= 90 else y
        if lx != ly or lx == 0:
            return (lx - ly) & 0xFFFFFFFF
        i += 1


@builtin("strchr")
def _strchr(machine, frame, args):
    address, value = args
    loc = machine.current_loc
    target = value & 0xFF
    i = 0
    while True:
        byte = machine.mem_read_int(address + i, 1, loc)
        if byte == target:
            return address + i
        if byte == 0:
            return 0
        i += 1


@builtin("strrchr")
def _strrchr(machine, frame, args):
    address, value = args
    data = read_cstring(machine, address, machine.current_loc)
    target = value & 0xFF
    if target == 0:
        return address + len(data)
    index = data.rfind(bytes([target]))
    return address + index if index >= 0 else 0


@builtin("strstr")
def _strstr(machine, frame, args):
    loc = machine.current_loc
    haystack = read_cstring(machine, args[0], loc)
    needle = read_cstring(machine, args[1], loc)
    index = haystack.find(needle)
    return args[0] + index if index >= 0 else 0


@builtin("strtok")
def _strtok(machine, frame, args):
    """Stateful strtok scanning raw memory — no interceptor checks this
    (ASan gained one only after the paper's report, §4.1 case 2)."""
    address, delim_ptr = args
    loc = machine.current_loc
    if address == 0:
        address = getattr(machine, "_strtok_state", 0)
        if address == 0:
            return 0
    # Read the delimiter set byte-by-byte; an unterminated delimiter
    # array silently includes stale neighbouring bytes (Figure 11).
    delims = read_cstring(machine, delim_ptr, loc)
    i = address
    while True:
        byte = machine.mem_read_int(i, 1, loc)
        if byte == 0:
            machine._strtok_state = 0
            return 0
        if byte not in delims:
            break
        i += 1
    start = i
    while True:
        byte = machine.mem_read_int(i, 1, loc)
        if byte == 0:
            machine._strtok_state = 0
            return start
        if byte in delims:
            machine.mem_write_int(i, 1, 0, loc)
            machine._strtok_state = i + 1
            return start
        i += 1


@builtin("strdup")
def _strdup(machine, frame, args):
    data = read_cstring(machine, args[0], machine.current_loc) + b"\x00"
    address = machine.allocator.malloc(len(data))
    if address:
        machine.tool.on_malloc(machine, address, len(data), zeroed=False)
        machine.mem_write_bytes(address, data, machine.current_loc)
    return address


@builtin("strspn")
def _strspn(machine, frame, args):
    loc = machine.current_loc
    text = read_cstring(machine, args[0], loc)
    accept = read_cstring(machine, args[1], loc)
    n = 0
    while n < len(text) and text[n] in accept:
        n += 1
    return n


@builtin("strcspn")
def _strcspn(machine, frame, args):
    loc = machine.current_loc
    text = read_cstring(machine, args[0], loc)
    reject = read_cstring(machine, args[1], loc)
    n = 0
    while n < len(text) and text[n] not in reject:
        n += 1
    return n


@builtin("strpbrk")
def _strpbrk(machine, frame, args):
    loc = machine.current_loc
    text = read_cstring(machine, args[0], loc)
    accept = read_cstring(machine, args[1], loc)
    for i, byte in enumerate(text):
        if byte in accept:
            return args[0] + i
    return 0


@builtin("strerror")
def _strerror(machine, frame, args):
    return machine.global_addresses.get("__native_strerror_buf", 0) or \
        _intern_string(machine, b"Unknown error")


def _intern_string(machine, data: bytes) -> int:
    cache = getattr(machine, "_interned", None)
    if cache is None:
        cache = machine._interned = {}
    address = cache.get(data)
    if address is None:
        address = machine.allocator.malloc(len(data) + 1)
        machine.memory.store_bytes(address, data + b"\x00")
        cache[data] = address
    return address


# ---------------------------------------------------------------------------
# conversions, PRNG, qsort
# ---------------------------------------------------------------------------

def _parse_long(text: bytes, base: int) -> tuple[int, int]:
    i = 0
    while i < len(text) and text[i:i + 1] in b" \t\n\r":
        i += 1
    sign = 1
    if i < len(text) and text[i:i + 1] in b"+-":
        sign = -1 if text[i:i + 1] == b"-" else 1
        i += 1
    if base in (0, 16) and text[i:i + 2].lower() == b"0x":
        i += 2
        base = 16
    elif base == 0 and text[i:i + 1] == b"0":
        base = 8
    elif base == 0:
        base = 10
    digits = b"0123456789abcdefghijklmnopqrstuvwxyz"[:base]
    value = 0
    start = i
    while i < len(text) and text[i:i + 1].lower() in digits:
        value = value * base + digits.index(text[i:i + 1].lower())
        i += 1
    if i == start:
        i = 0
    return sign * value, i


@builtin("atoi")
def _atoi(machine, frame, args):
    value, _ = _parse_long(read_cstring(machine, args[0],
                                        machine.current_loc), 10)
    return value & 0xFFFFFFFF


@builtin("atol")
def _atol(machine, frame, args):
    value, _ = _parse_long(read_cstring(machine, args[0],
                                        machine.current_loc), 10)
    return value & 0xFFFFFFFFFFFFFFFF


@builtin("strtol")
def _strtol(machine, frame, args):
    address, end_ptr, base = args
    text = read_cstring(machine, address, machine.current_loc)
    value, consumed = _parse_long(text, to_signed(base, 32))
    if end_ptr:
        machine.mem_write_int(end_ptr, 8, address + consumed,
                              machine.current_loc)
    return value & 0xFFFFFFFFFFFFFFFF


@builtin("strtoul")
def _strtoul(machine, frame, args):
    return _strtol(machine, frame, args)


def _parse_double(text: bytes) -> tuple[float, int]:
    i = 0
    while i < len(text) and text[i:i + 1] in b" \t\n\r":
        i += 1
    best = 0.0
    best_end = 0
    for end in range(len(text), i, -1):
        try:
            best = float(text[i:end])
            best_end = end
            break
        except ValueError:
            continue
    return best, best_end


@builtin("strtod")
def _strtod(machine, frame, args):
    address, end_ptr = args
    text = read_cstring(machine, address, machine.current_loc)
    value, consumed = _parse_double(text)
    if end_ptr:
        machine.mem_write_int(end_ptr, 8, address + consumed,
                              machine.current_loc)
    return value


@builtin("atof")
def _atof(machine, frame, args):
    value, _ = _parse_double(read_cstring(machine, args[0],
                                          machine.current_loc))
    return value


@builtin("abs")
def _abs(machine, frame, args):
    return abs(to_signed(args[0], 32)) & 0xFFFFFFFF


@builtin("labs")
def _labs(machine, frame, args):
    return abs(to_signed(args[0], 64)) & 0xFFFFFFFFFFFFFFFF


@builtin("rand")
def _rand(machine, frame, args):
    state = getattr(machine, "_rand_state", 1)
    state = (state * 6364136223846793005 + 1442695040888963407) \
        & 0xFFFFFFFFFFFFFFFF
    machine._rand_state = state
    return (state >> 33) & 0x7FFFFFFF


@builtin("srand")
def _srand(machine, frame, args):
    machine._rand_state = args[0]
    return None


@builtin("qsort")
def _qsort(machine, frame, args):
    base, count, size, compare = args
    loc = machine.current_loc

    def key_swap(i: int, j: int) -> None:
        a = machine.mem_read_bytes(base + i * size, size, loc)
        b = machine.mem_read_bytes(base + j * size, size, loc)
        machine.mem_write_bytes(base + i * size, b, loc)
        machine.mem_write_bytes(base + j * size, a, loc)

    def cmp(i: int, j: int) -> int:
        result = machine.call_address(compare,
                                      [base + i * size, base + j * size])
        return to_signed(result & 0xFFFFFFFF, 32)

    # Insertion sort: quadratic but simple and allocation-free.
    for i in range(1, count):
        j = i
        while j > 0 and cmp(j, j - 1) < 0:
            key_swap(j, j - 1)
            j -= 1
    return None


@builtin("bsearch")
def _bsearch(machine, frame, args):
    key, base, count, size, compare = args
    lo, hi = 0, count
    while lo < hi:
        mid = (lo + hi) // 2
        probe = base + mid * size
        order = to_signed(machine.call_address(compare, [key, probe])
                          & 0xFFFFFFFF, 32)
        if order == 0:
            return probe
        if order < 0:
            hi = mid
        else:
            lo = mid + 1
    return 0


# ---------------------------------------------------------------------------
# math
# ---------------------------------------------------------------------------

def _math1(name: str, fn):
    @builtin(name)
    def handler(machine, frame, args, _fn=fn):
        try:
            return float(_fn(args[0]))
        except (ValueError, OverflowError):
            return math.nan


def _math2(name: str, fn):
    @builtin(name)
    def handler(machine, frame, args, _fn=fn):
        try:
            return float(_fn(args[0], args[1]))
        except (ValueError, OverflowError):
            return math.nan


for _name, _fn in [
    ("sqrt", math.sqrt), ("sin", math.sin), ("cos", math.cos),
    ("tan", math.tan), ("asin", math.asin), ("acos", math.acos),
    ("atan", math.atan), ("sinh", math.sinh), ("cosh", math.cosh),
    ("tanh", math.tanh), ("exp", math.exp), ("log", math.log),
    ("log2", math.log2), ("log10", math.log10), ("floor", math.floor),
    ("ceil", math.ceil), ("fabs", abs), ("round", round),
    ("trunc", math.trunc), ("sqrtf", math.sqrt), ("sinf", math.sin),
    ("cosf", math.cos), ("fabsf", abs),
]:
    _math1(_name, _fn)

for _name, _fn in [
    ("pow", math.pow), ("atan2", math.atan2), ("fmod", math.fmod),
    ("hypot", math.hypot), ("fmin", min), ("fmax", max),
    ("powf", math.pow), ("ldexp", lambda x, e: math.ldexp(x, int(e))),
]:
    _math2(_name, _fn)


@builtin("time")
def _time(machine, frame, args):
    value = 1_500_000_000 + machine.steps // 1_000_000
    if args and args[0]:
        machine.mem_write_int(args[0], 8, value, machine.current_loc)
    return value


@builtin("clock")
def _clock(machine, frame, args):
    return machine.steps


@builtin("__native_va_area")
def _va_area(machine, frame, args):
    return frame.va_base


# ---------------------------------------------------------------------------
# ctype and remaining string/stdlib functions
# ---------------------------------------------------------------------------

def _ctype1(name: str, predicate):
    @builtin(name)
    def handler(machine, frame, args, _p=predicate):
        return 1 if _p(to_signed(args[0], 32)) else 0


for _name, _p in [
    ("isdigit", lambda c: 48 <= c <= 57),
    ("isupper", lambda c: 65 <= c <= 90),
    ("islower", lambda c: 97 <= c <= 122),
    ("isalpha", lambda c: 65 <= c <= 90 or 97 <= c <= 122),
    ("isalnum", lambda c: 48 <= c <= 57 or 65 <= c <= 90
        or 97 <= c <= 122),
    ("isspace", lambda c: c in (32, 9, 10, 13, 12, 11)),
    ("isprint", lambda c: 32 <= c < 127),
    ("isgraph", lambda c: 32 < c < 127),
    ("iscntrl", lambda c: 0 <= c < 32 or c == 127),
    ("ispunct", lambda c: 32 < c < 127 and not (
        48 <= c <= 57 or 65 <= c <= 90 or 97 <= c <= 122)),
    ("isxdigit", lambda c: 48 <= c <= 57 or 65 <= c <= 70
        or 97 <= c <= 102),
    ("isblank", lambda c: c in (32, 9)),
]:
    _ctype1(_name, _p)


@builtin("toupper")
def _toupper(machine, frame, args):
    c = to_signed(args[0], 32)
    return (c - 32) & 0xFFFFFFFF if 97 <= c <= 122 else c & 0xFFFFFFFF


@builtin("tolower")
def _tolower(machine, frame, args):
    c = to_signed(args[0], 32)
    return (c + 32) & 0xFFFFFFFF if 65 <= c <= 90 else c & 0xFFFFFFFF


@builtin("strnlen")
def _strnlen(machine, frame, args):
    address, maximum = args
    loc = machine.current_loc
    for i in range(maximum):
        if machine.mem_read_int(address + i, 1, loc) == 0:
            return i
    return maximum


@builtin("strncasecmp")
def _strncasecmp(machine, frame, args):
    a, b, n = args
    loc = machine.current_loc
    for i in range(n):
        x = machine.mem_read_int(a + i, 1, loc)
        y = machine.mem_read_int(b + i, 1, loc)
        if 65 <= x <= 90:
            x += 32
        if 65 <= y <= 90:
            y += 32
        if x != y or x == 0:
            return (x - y) & 0xFFFFFFFF
    return 0


@builtin("llabs")
def _llabs(machine, frame, args):
    return abs(to_signed(args[0], 64)) & 0xFFFFFFFFFFFFFFFF


@builtin("strerror")
def _strerror_override(machine, frame, args):
    return _intern_string(machine, b"Unknown error")
