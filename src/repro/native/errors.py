"""Failure modes of the native execution model.

On the native machine there are no managed checks: an invalid access either
lands in mapped memory (silent corruption — the undetected-bug case the
paper is about) or leaves the address space and traps.
"""

from __future__ import annotations

from ..core.errors import ProgramCrash


class Segfault(ProgramCrash):
    """An access left the mapped address space (SIGSEGV)."""

    def __init__(self, address: int, size: int, access: str, loc=None):
        self.address = address
        self.size = size
        self.access = access
        self.loc = loc
        where = f" at {loc}" if loc else ""
        super().__init__(
            f"SIGSEGV: invalid {access} of {size} bytes at "
            f"0x{address:x}{where}")

    @property
    def is_null_page(self) -> bool:
        return 0 <= self.address < 0x1000


class NativeTrap(ProgramCrash):
    """Division by zero and similar hardware traps."""
