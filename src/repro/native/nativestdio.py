"""Native stdio builtins: printf/scanf families and FILE streams.

printf walks the caller's variadic argument slots on the simulated stack
with nothing but the format string to guide it — the exact mechanism that
makes format-string mismatches silent on the native model (and exploitable
in reality, §2.1).
"""

from __future__ import annotations

from ..core.bits import to_signed
from . import memory as layout
from .nativelibc import (_VaReader, _setup_va, builtin, read_cstring)

# FILE layout on the native heap: fd(i32), ungot+1(i32), eof(i32), err(i32)
_FILE_SIZE = 16


def initialize_stdio(machine) -> None:
    """Allocate FILE objects for the standard streams and point the
    ``stdin``/``stdout``/``stderr`` globals at them (the dynamic loader's
    job on a real system)."""
    for name, fd in (("stdin", 0), ("stdout", 1), ("stderr", 2)):
        address = machine.allocator.malloc(_FILE_SIZE)
        machine.tool.on_malloc(machine, address, _FILE_SIZE, zeroed=True)
        machine.memory.store_bytes(address, b"\x00" * _FILE_SIZE)
        machine.memory.store_int(address, 4, fd)
        setattr(machine, f"_{name}_file", address)
        gvar_address = machine.global_addresses.get(name)
        if gvar_address is not None:
            machine.memory.store_int(gvar_address, 8, address)


def _stream_fd(machine, stream: int) -> int:
    return to_signed(machine.mem_read_int(stream, 4, machine.current_loc), 32)


def _fd_write(machine, fd: int, data: bytes) -> int:
    if fd == 1:
        machine.stdout.extend(data)
    elif fd == 2:
        machine.stderr.extend(data)
    else:
        handle = machine.files.get(fd)
        if handle is None or "w" not in handle["mode"]:
            return -1
        handle["data"] += data
        handle["pos"] = len(handle["data"])
    return len(data)


def _fd_read_byte(machine, fd: int) -> int:
    if fd == 0:
        if machine.stdin_pos >= len(machine.stdin):
            return -1
        byte = machine.stdin[machine.stdin_pos]
        machine.stdin_pos += 1
        return byte
    handle = machine.files.get(fd)
    if handle is None or handle["pos"] >= len(handle["data"]):
        return -1
    byte = handle["data"][handle["pos"]]
    handle["pos"] += 1
    return byte


def _stream_getc(machine, stream: int) -> int:
    ungot = machine.mem_read_int(stream + 4, 4, machine.current_loc)
    if ungot:
        machine.mem_write_int(stream + 4, 4, 0, machine.current_loc)
        return (ungot - 1) & 0xFF
    byte = _fd_read_byte(machine, _stream_fd(machine, stream))
    if byte < 0:
        machine.mem_write_int(stream + 8, 4, 1, machine.current_loc)  # eof
        return -1
    return byte


def _stream_ungetc(machine, stream: int, c: int) -> int:
    if c < 0:
        return -1
    machine.mem_write_int(stream + 4, 4, (c & 0xFF) + 1, machine.current_loc)
    machine.mem_write_int(stream + 8, 4, 0, machine.current_loc)
    return c


# ---------------------------------------------------------------------------
# character I/O builtins
# ---------------------------------------------------------------------------

@builtin("fputc")
def _fputc(machine, frame, args):
    c, stream = args
    _fd_write(machine, _stream_fd(machine, stream), bytes([c & 0xFF]))
    return c & 0xFF


@builtin("putc")
def _putc(machine, frame, args):
    return _fputc(machine, frame, args)


@builtin("putchar")
def _putchar(machine, frame, args):
    machine.stdout.append(args[0] & 0xFF)
    return args[0] & 0xFF


@builtin("fputs")
def _fputs(machine, frame, args):
    text = read_cstring(machine, args[0], machine.current_loc)
    _fd_write(machine, _stream_fd(machine, args[1]), text)
    return 0


@builtin("puts")
def _puts(machine, frame, args):
    text = read_cstring(machine, args[0], machine.current_loc)
    machine.stdout.extend(text + b"\n")
    return 0


@builtin("fgetc")
def _fgetc(machine, frame, args):
    value = _stream_getc(machine, args[0])
    return value & 0xFFFFFFFF


@builtin("getc")
def _getc(machine, frame, args):
    return _fgetc(machine, frame, args)


@builtin("getchar")
def _getchar(machine, frame, args):
    return _stream_getc(machine, machine._stdin_file) & 0xFFFFFFFF


@builtin("ungetc")
def _ungetc(machine, frame, args):
    c, stream = args
    return _stream_ungetc(machine, stream, to_signed(c, 32)) & 0xFFFFFFFF


@builtin("fgets")
def _fgets(machine, frame, args):
    buffer, size, stream = args
    size = to_signed(size, 32)
    if size <= 0:
        return 0
    loc = machine.current_loc
    i = 0
    while i < size - 1:
        c = _stream_getc(machine, stream)
        if c < 0:
            break
        machine.mem_write_int(buffer + i, 1, c, loc)
        i += 1
        if c == 10:
            break
    if i == 0:
        return 0
    machine.mem_write_int(buffer + i, 1, 0, loc)
    return buffer


@builtin("gets")
def _gets(machine, frame, args):
    buffer = args[0]
    loc = machine.current_loc
    i = 0
    c = -1
    while True:
        c = _stream_getc(machine, machine._stdin_file)
        if c < 0 or c == 10:
            break
        machine.mem_write_int(buffer + i, 1, c, loc)
        i += 1
    if i == 0 and c < 0:
        return 0
    machine.mem_write_int(buffer + i, 1, 0, loc)
    return buffer


# ---------------------------------------------------------------------------
# streams
# ---------------------------------------------------------------------------

@builtin("fopen")
def _fopen(machine, frame, args):
    path = read_cstring(machine, args[0],
                        machine.current_loc).decode("utf-8", "replace")
    mode = read_cstring(machine, args[1],
                        machine.current_loc).decode("utf-8", "replace")
    if "r" in mode and path not in machine.vfs:
        return 0
    if "w" in mode:
        machine.vfs[path] = bytearray()
    fd = machine.next_fd
    machine.next_fd += 1
    machine.files[fd] = {"path": path, "mode": mode,
                         "data": machine.vfs.setdefault(path, bytearray()),
                         "pos": 0}
    address = machine.allocator.malloc(_FILE_SIZE)
    machine.tool.on_malloc(machine, address, _FILE_SIZE, zeroed=True)
    machine.memory.store_bytes(address, b"\x00" * _FILE_SIZE)
    machine.memory.store_int(address, 4, fd)
    return address


@builtin("fclose")
def _fclose(machine, frame, args):
    fd = _stream_fd(machine, args[0])
    machine.files.pop(fd, None)
    if fd > 2:
        machine.tool.on_free(machine, args[0], machine.current_loc)
        machine.allocator.free(args[0])
    return 0


@builtin("fflush")
def _fflush(machine, frame, args):
    return 0


@builtin("feof")
def _feof(machine, frame, args):
    return machine.mem_read_int(args[0] + 8, 4, machine.current_loc)


@builtin("ferror")
def _ferror(machine, frame, args):
    return machine.mem_read_int(args[0] + 12, 4, machine.current_loc)


@builtin("fread")
def _fread(machine, frame, args):
    buffer, size, count, stream = args
    loc = machine.current_loc
    total = size * count
    got = 0
    while got < total:
        c = _stream_getc(machine, stream)
        if c < 0:
            break
        machine.mem_write_int(buffer + got, 1, c, loc)
        got += 1
    return got // size if size else 0


@builtin("fwrite")
def _fwrite(machine, frame, args):
    buffer, size, count, stream = args
    total = size * count
    data = machine.mem_read_bytes(buffer, total, machine.current_loc)
    written = _fd_write(machine, _stream_fd(machine, stream), data)
    if written < 0:
        return 0
    return written // size if size else 0


@builtin("perror")
def _perror(machine, frame, args):
    if args[0]:
        machine.stderr.extend(
            read_cstring(machine, args[0], machine.current_loc) + b": ")
    machine.stderr.extend(b"error\n")
    return None


# ---------------------------------------------------------------------------
# printf
# ---------------------------------------------------------------------------

def _format_native(machine, fmt: bytes, reader: _VaReader) -> bytes:
    out = bytearray()
    i = 0
    n = len(fmt)
    while i < n:
        c = fmt[i]
        if c != 37:  # '%'
            out.append(c)
            i += 1
            continue
        i += 1
        left = zero = plus = False
        width = 0
        precision = -1
        longs = 0
        while i < n and fmt[i] in b"-0+ #":
            if fmt[i] == 45:
                left = True
            elif fmt[i] == 48:
                zero = True
            elif fmt[i] == 43:
                plus = True
            i += 1
        if i < n and fmt[i] == 42:  # '*'
            width = to_signed(reader.next_int(4), 32)
            i += 1
        else:
            while i < n and 48 <= fmt[i] <= 57:
                width = width * 10 + (fmt[i] - 48)
                i += 1
        if i < n and fmt[i] == 46:  # '.'
            i += 1
            precision = 0
            if i < n and fmt[i] == 42:
                precision = to_signed(reader.next_int(4), 32)
                i += 1
            else:
                while i < n and 48 <= fmt[i] <= 57:
                    precision = precision * 10 + (fmt[i] - 48)
                    i += 1
        while i < n and fmt[i] in b"lhz":
            if fmt[i] in b"lz":
                longs += 1
            i += 1
        if i >= n:
            break
        conv = chr(fmt[i])
        i += 1
        text = ""
        pad = "0" if (zero and not left) else " "
        if conv == "%":
            out.append(37)
            continue
        if conv in "di":
            size = 8 if longs else 4
            value = to_signed(reader.next_int(size), size * 8)
            text = f"{value:+d}" if plus else str(value)
        elif conv == "u":
            text = str(reader.next_int(8 if longs else 4))
        elif conv in "xX":
            text = format(reader.next_int(8 if longs else 4),
                          "X" if conv == "X" else "x")
        elif conv == "o":
            text = format(reader.next_int(8 if longs else 4), "o")
        elif conv == "c":
            text = chr(reader.next_int(4) & 0xFF)
        elif conv == "s":
            pointer = reader.next_pointer()
            if pointer == 0:
                text = "(null)"
            else:
                raw = read_cstring(machine, pointer, reader.loc)
                text = raw.decode("latin-1")
            if precision >= 0:
                text = text[:precision]
            pad = " "
        elif conv == "p":
            pointer = reader.next_pointer()
            text = "(nil)" if pointer == 0 else f"0x{pointer:x}"
            pad = " "
        elif conv in "fFeEgG":
            value = reader.next_double()
            p = precision if precision >= 0 else 6
            if conv in "eE":
                text = f"{value:.{p}e}"
            elif conv in "gG":
                text = f"{value:.{p if p else 1}g}"
            else:
                text = f"{value:.{p}f}"
        else:
            text = "%" + conv
        if width > len(text):
            if left:
                text = text + " " * (width - len(text))
            else:
                text = pad * (width - len(text)) + text
        out.extend(text.encode("latin-1"))
    return bytes(out)


def _printf_common(machine, fmt_ptr: int, extra: list,
                   va_base: int | None = None) -> bytes:
    fmt = read_cstring(machine, fmt_ptr, machine.current_loc)
    if va_base is None:
        base, saved_sp = _setup_va(machine, extra)
        try:
            return _format_native(machine, fmt,
                                  _VaReader(machine, base,
                                            machine.current_loc))
        finally:
            machine.sp = saved_sp
    return _format_native(machine, fmt,
                          _VaReader(machine, va_base, machine.current_loc))


@builtin("printf")
def _printf(machine, frame, args):
    data = _printf_common(machine, args[0], args[1:])
    machine.stdout.extend(data)
    return len(data)


@builtin("fprintf")
def _fprintf(machine, frame, args):
    data = _printf_common(machine, args[1], args[2:])
    _fd_write(machine, _stream_fd(machine, args[0]), data)
    return len(data)


@builtin("vfprintf")
def _vfprintf(machine, frame, args):
    stream, fmt_ptr, ap = args
    data = _printf_common(machine, fmt_ptr, [], va_base=ap)
    _fd_write(machine, _stream_fd(machine, stream), data)
    return len(data)


@builtin("sprintf")
def _sprintf(machine, frame, args):
    data = _printf_common(machine, args[1], args[2:])
    machine.mem_write_bytes(args[0], data + b"\x00", machine.current_loc)
    return len(data)


@builtin("snprintf")
def _snprintf(machine, frame, args):
    buffer, size, fmt_ptr = args[0], args[1], args[2]
    data = _printf_common(machine, fmt_ptr, args[3:])
    if size > 0:
        cut = data[:size - 1]
        machine.mem_write_bytes(buffer, cut + b"\x00", machine.current_loc)
    return len(data)


@builtin("vsnprintf")
def _vsnprintf(machine, frame, args):
    buffer, size, fmt_ptr, ap = args
    data = _printf_common(machine, fmt_ptr, [], va_base=ap)
    if size > 0:
        cut = data[:size - 1]
        machine.mem_write_bytes(buffer, cut + b"\x00", machine.current_loc)
    return len(data)


# ---------------------------------------------------------------------------
# scanf
# ---------------------------------------------------------------------------

class _ScanSource:
    def __init__(self, machine, stream: int | None, text_ptr: int | None):
        self.machine = machine
        self.stream = stream
        self.text_ptr = text_ptr
        self.pos = 0

    def getc(self) -> int:
        if self.stream is not None:
            return _stream_getc(self.machine, self.stream)
        byte = self.machine.mem_read_int(self.text_ptr + self.pos, 1,
                                         self.machine.current_loc)
        if byte == 0:
            return -1
        self.pos += 1
        return byte

    def ungetc(self, c: int) -> None:
        if c < 0:
            return
        if self.stream is not None:
            _stream_ungetc(self.machine, self.stream, c)
        else:
            self.pos -= 1


def _scan_core(machine, source: _ScanSource, fmt: bytes,
               reader: _VaReader) -> int:
    assigned = 0
    i = 0
    n = len(fmt)
    loc = machine.current_loc
    while i < n:
        f = fmt[i]
        if f in b" \t\n":
            c = source.getc()
            while c in (32, 9, 10, 13):
                c = source.getc()
            source.ungetc(c)
            i += 1
            continue
        if f != 37:
            c = source.getc()
            if c != f:
                source.ungetc(c)
                return assigned
            i += 1
            continue
        i += 1
        width = 0
        longs = 0
        while i < n and 48 <= fmt[i] <= 57:
            width = width * 10 + (fmt[i] - 48)
            i += 1
        while i < n and fmt[i] in b"lhz":
            if fmt[i] in b"lz":
                longs += 1
            i += 1
        if i >= n:
            break
        conv = chr(fmt[i])
        i += 1
        if conv == "%":
            c = source.getc()
            if c != 37:
                source.ungetc(c)
                return assigned
            continue
        if conv == "c":
            out = reader.next_pointer()
            count = width or 1
            for k in range(count):
                c = source.getc()
                if c < 0:
                    return assigned
                machine.mem_write_int(out + k, 1, c, loc)
            assigned += 1
            continue
        if conv == "s":
            out = reader.next_pointer()
            c = source.getc()
            while c in (32, 9, 10, 13):
                c = source.getc()
            if c < 0:
                return assigned
            k = 0
            while c >= 0 and c not in (32, 9, 10, 13) \
                    and (width == 0 or k < width):
                machine.mem_write_int(out + k, 1, c, loc)
                k += 1
                c = source.getc()
            source.ungetc(c)
            machine.mem_write_int(out + k, 1, 0, loc)
            assigned += 1
            continue
        if conv in "diux":
            digits = bytearray()
            base = 16 if conv == "x" else 10
            c = source.getc()
            while c in (32, 9, 10, 13):
                c = source.getc()
            if c in (43, 45):
                digits.append(c)
                c = source.getc()
            def is_digit(ch):
                if 48 <= ch <= 57:
                    return True
                return base == 16 and (97 <= ch <= 102 or 65 <= ch <= 70)
            while c >= 0 and is_digit(c):
                digits.append(c)
                c = source.getc()
            source.ungetc(c)
            if not digits or digits in (b"+", b"-"):
                return assigned
            value = int(bytes(digits), base)
            out = reader.next_pointer()
            machine.mem_write_int(out, 8 if longs else 4, value, loc)
            assigned += 1
            continue
        if conv in "feg":
            token = bytearray()
            c = source.getc()
            while c in (32, 9, 10, 13):
                c = source.getc()
            while c >= 0 and (48 <= c <= 57
                              or c in (43, 45, 46, 101, 69)):
                token.append(c)
                c = source.getc()
            source.ungetc(c)
            if not token:
                return assigned
            try:
                value = float(bytes(token))
            except ValueError:
                return assigned
            out = reader.next_pointer()
            machine.mem_write_float(out, 8 if longs else 4, value, loc)
            assigned += 1
            continue
        return assigned
    return assigned


def _scanf_common(machine, source: _ScanSource, fmt_ptr: int,
                  extra: list) -> int:
    fmt = read_cstring(machine, fmt_ptr, machine.current_loc)
    base, saved_sp = _setup_va(machine, extra)
    try:
        reader = _VaReader(machine, base, machine.current_loc)
        return _scan_core(machine, source, fmt, reader)
    finally:
        machine.sp = saved_sp


@builtin("scanf")
def _scanf(machine, frame, args):
    source = _ScanSource(machine, machine._stdin_file, None)
    return _scanf_common(machine, source, args[0], args[1:]) & 0xFFFFFFFF


@builtin("fscanf")
def _fscanf(machine, frame, args):
    source = _ScanSource(machine, args[0], None)
    return _scanf_common(machine, source, args[1], args[2:]) & 0xFFFFFFFF


@builtin("sscanf")
def _sscanf(machine, frame, args):
    source = _ScanSource(machine, None, args[0])
    return _scanf_common(machine, source, args[1], args[2:]) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# stream positioning
# ---------------------------------------------------------------------------

_SEEK_SET, _SEEK_CUR, _SEEK_END = 0, 1, 2


def _fd_seek(machine, fd: int, offset: int, whence: int) -> int:
    if fd == 0:
        base = {_SEEK_SET: 0, _SEEK_CUR: machine.stdin_pos,
                _SEEK_END: len(machine.stdin)}.get(whence)
        if base is None or base + offset < 0:
            return -1
        machine.stdin_pos = base + offset
        return machine.stdin_pos
    handle = machine.files.get(fd)
    if handle is None:
        return -1
    base = {_SEEK_SET: 0, _SEEK_CUR: handle["pos"],
            _SEEK_END: len(handle["data"])}.get(whence)
    if base is None or base + offset < 0:
        return -1
    handle["pos"] = base + offset
    return handle["pos"]


@builtin("fseek")
def _fseek(machine, frame, args):
    stream, offset, whence = args
    fd = _stream_fd(machine, stream)
    if _fd_seek(machine, fd, to_signed(offset, 64),
                to_signed(whence, 32)) < 0:
        return 0xFFFFFFFF  # -1
    machine.mem_write_int(stream + 4, 4, 0, machine.current_loc)  # ungot
    machine.mem_write_int(stream + 8, 4, 0, machine.current_loc)  # eof
    return 0


@builtin("ftell")
def _ftell(machine, frame, args):
    stream = args[0]
    fd = _stream_fd(machine, stream)
    position = _fd_seek(machine, fd, 0, _SEEK_CUR)
    if position >= 0 and machine.mem_read_int(stream + 4, 4,
                                              machine.current_loc):
        position -= 1  # account for a pushed-back character
    return position & 0xFFFFFFFFFFFFFFFF


@builtin("rewind")
def _rewind(machine, frame, args):
    stream = args[0]
    _fd_seek(machine, _stream_fd(machine, stream), 0, _SEEK_SET)
    machine.mem_write_int(stream + 4, 4, 0, machine.current_loc)
    machine.mem_write_int(stream + 8, 4, 0, machine.current_loc)
    machine.mem_write_int(stream + 12, 4, 0, machine.current_loc)
    return None


@builtin("remove")
def _remove(machine, frame, args):
    path = read_cstring(machine, args[0],
                        machine.current_loc).decode("utf-8", "replace")
    if path in machine.vfs:
        del machine.vfs[path]
        return 0
    return 0xFFFFFFFF
