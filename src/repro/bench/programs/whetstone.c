/* The classic Whetstone benchmark (reduced loop counts), after
 * Painter Engineering's C version: eight computation "modules" mixing
 * floating point, integer, and libm-heavy work. */
#include <math.h>
#include <stdio.h>

static double t = 0.499975;
static double t1 = 0.50025;
static double t2 = 2.0;

static double e1[4];

static void pa(double *e) {
    int j = 0;
    do {
        e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
        e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
        e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
        e[3] = (-e[0] + e[1] + e[2] + e[3]) / t2;
        j++;
    } while (j < 6);
}

static void p3(double x, double y, double *z) {
    double x1 = x;
    double y1 = y;
    x1 = t * (x1 + y1);
    y1 = t * (x1 + y1);
    *z = (x1 + y1) / t2;
}

int main(void) {
    long loop = 50;
    long n1 = 0 * loop;
    long n2 = 12 * loop;
    long n3 = 14 * loop;
    long n6 = 29 * loop;
    long n7 = 3 * loop; /* reduced trig module */
    long n8 = 16 * loop;
    long n10 = 0 * loop;
    long n11 = 9 * loop; /* reduced exp/log module */
    double x1 = 1.0;
    double x2 = -1.0;
    double x3 = -1.0;
    double x4 = -1.0;
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;
    long i;
    int j = 1;
    int k = 2;
    int l = 3;

    (void)n1;
    (void)n10;

    /* Module 2: simple identifiers. */
    for (i = 0; i < n2; i++) {
        x1 = (x1 + x2 + x3 - x4) * t;
        x2 = (x1 + x2 - x3 + x4) * t;
        x3 = (x1 - x2 + x3 + x4) * t;
        x4 = (-x1 + x2 + x3 + x4) * t;
    }

    /* Module 3: array accesses via procedure. */
    e1[0] = 1.0;
    e1[1] = -1.0;
    e1[2] = -1.0;
    e1[3] = -1.0;
    for (i = 0; i < n3; i++) {
        pa(e1);
    }

    /* Module 6: integer arithmetic. */
    j = 1;
    k = 2;
    l = 3;
    for (i = 0; i < n6; i++) {
        j = j * (k - j) * (l - k);
        k = l * k - (l - j) * k;
        l = (l - k) * (k + j);
        e1[l - 2] = j + k + l;
        e1[k - 2] = j * k * l;
    }

    /* Module 7: trig functions. */
    x = 0.5;
    y = 0.5;
    for (i = 0; i < n7; i++) {
        x = t * atan(t2 * sin(x) * cos(x)
                     / (cos(x + y) + cos(x - y) - 1.0));
        y = t * atan(t2 * sin(y) * cos(y)
                     / (cos(x + y) + cos(x - y) - 1.0));
    }

    /* Module 8: procedure calls. */
    x = 1.0;
    y = 1.0;
    z = 1.0;
    for (i = 0; i < n8; i++) {
        p3(x, y, &z);
    }

    /* Module 11: standard functions. */
    x = 0.75;
    for (i = 0; i < n11; i++) {
        x = sqrt(exp(log(x) / t1));
    }

    printf("whetstone: x=%.6f z=%.6f e1=%.6f\n", x, z, e1[3]);
    return 0;
}
