/* Computer Language Benchmarks Game: fasta-redux (cumulative-lookup
 * variant, reduced N).  This is the *fixed* version: the original
 * contained a rounding bug where the probabilities did not add up to
 * 1.00 and a lookup ran out of bounds — the paper's authors found it
 * with Safe Sulong and submitted the fix (§4.3).  The buggy lookup is
 * preserved in examples/fastaredux_rounding_bug.c. */
#include <stdio.h>

#define IM 139968
#define IA 3877
#define IC 29573
#define LOOKUP_SIZE 64

static long seed = 42;

static double fasta_random(double max) {
    seed = (seed * IA + IC) % IM;
    return max * (double)seed / IM;
}

static const double probabilities[4] = {0.27, 0.12, 0.12, 0.49};
static const char symbols[4] = "acgt";

int main(void) {
    char lookup[LOOKUP_SIZE];
    double cumulative = 0.0;
    int slot = 0;
    int i;
    unsigned int checksum = 0;

    /* Build the cumulative lookup table; the fix clamps the fill so
     * rounding error cannot leave trailing slots unset. */
    for (i = 0; i < 4; i++) {
        int end;
        cumulative += probabilities[i];
        end = (int)(cumulative * LOOKUP_SIZE);
        if (i == 3) {
            end = LOOKUP_SIZE; /* the fix: force the last symbol */
        }
        while (slot < end && slot < LOOKUP_SIZE) {
            lookup[slot] = symbols[i];
            slot++;
        }
    }

    for (i = 0; i < 2000; i++) {
        double r = fasta_random(1.0);
        int index = (int)(r * LOOKUP_SIZE);
        checksum = checksum * 31 + (unsigned char)lookup[index];
    }
    printf("fastaredux checksum: %u\n", checksum);
    return 0;
}
