/* Computer Language Benchmarks Game: n-body (reduced step count). */
#include <math.h>
#include <stdio.h>

#define BODIES 5
#define SOLAR_MASS (4.0 * M_PI * M_PI)
#define DAYS_PER_YEAR 365.24

struct body {
    double x, y, z;
    double vx, vy, vz;
    double mass;
};

static struct body bodies[BODIES] = {
    {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, SOLAR_MASS},
    {4.84143144246472090, -1.16032004402742839, -0.103622044471123109,
     0.00166007664274403694 * DAYS_PER_YEAR,
     0.00769901118419740425 * DAYS_PER_YEAR,
     -0.0000690460016972063023 * DAYS_PER_YEAR,
     0.000954791938424326609 * SOLAR_MASS},
    {8.34336671824457987, 4.12479856412430479, -0.403523417114321381,
     -0.00276742510726862411 * DAYS_PER_YEAR,
     0.00499852801234917238 * DAYS_PER_YEAR,
     0.0000230417297573763929 * DAYS_PER_YEAR,
     0.000285885980666130812 * SOLAR_MASS},
    {12.8943695621391310, -15.1111514016986312, -0.223307578892655734,
     0.00296460137564761618 * DAYS_PER_YEAR,
     0.00237847173959480950 * DAYS_PER_YEAR,
     -0.0000296589568540237556 * DAYS_PER_YEAR,
     0.0000436624404335156298 * SOLAR_MASS},
    {15.3796971148509165, -25.9193146099879641, 0.179258772950371181,
     0.00268067772490389322 * DAYS_PER_YEAR,
     0.00162824170038242295 * DAYS_PER_YEAR,
     -0.0000951592254519715870 * DAYS_PER_YEAR,
     0.0000515138902046611451 * SOLAR_MASS},
};

static void offset_momentum(void) {
    double px = 0.0;
    double py = 0.0;
    double pz = 0.0;
    int i;
    for (i = 0; i < BODIES; i++) {
        px += bodies[i].vx * bodies[i].mass;
        py += bodies[i].vy * bodies[i].mass;
        pz += bodies[i].vz * bodies[i].mass;
    }
    bodies[0].vx = -px / SOLAR_MASS;
    bodies[0].vy = -py / SOLAR_MASS;
    bodies[0].vz = -pz / SOLAR_MASS;
}

static void advance(double dt) {
    int i;
    int j;
    for (i = 0; i < BODIES; i++) {
        for (j = i + 1; j < BODIES; j++) {
            double dx = bodies[i].x - bodies[j].x;
            double dy = bodies[i].y - bodies[j].y;
            double dz = bodies[i].z - bodies[j].z;
            double dist = sqrt(dx * dx + dy * dy + dz * dz);
            double mag = dt / (dist * dist * dist);
            bodies[i].vx -= dx * bodies[j].mass * mag;
            bodies[i].vy -= dy * bodies[j].mass * mag;
            bodies[i].vz -= dz * bodies[j].mass * mag;
            bodies[j].vx += dx * bodies[i].mass * mag;
            bodies[j].vy += dy * bodies[i].mass * mag;
            bodies[j].vz += dz * bodies[i].mass * mag;
        }
    }
    for (i = 0; i < BODIES; i++) {
        bodies[i].x += dt * bodies[i].vx;
        bodies[i].y += dt * bodies[i].vy;
        bodies[i].z += dt * bodies[i].vz;
    }
}

static double energy(void) {
    double e = 0.0;
    int i;
    int j;
    for (i = 0; i < BODIES; i++) {
        e += 0.5 * bodies[i].mass
            * (bodies[i].vx * bodies[i].vx
               + bodies[i].vy * bodies[i].vy
               + bodies[i].vz * bodies[i].vz);
        for (j = i + 1; j < BODIES; j++) {
            double dx = bodies[i].x - bodies[j].x;
            double dy = bodies[i].y - bodies[j].y;
            double dz = bodies[i].z - bodies[j].z;
            e -= bodies[i].mass * bodies[j].mass
                / sqrt(dx * dx + dy * dy + dz * dz);
        }
    }
    return e;
}

int main(void) {
    int i;
    /* Re-initialize for repeated in-process runs. */
    offset_momentum();
    printf("nbody energy before: %.9f\n", energy());
    for (i = 0; i < 250; i++) {
        advance(0.01);
    }
    printf("nbody energy after: %.9f\n", energy());
    return 0;
}
