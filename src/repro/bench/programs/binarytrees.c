/* Computer Language Benchmarks Game: binary-trees (scaled down).
 * Allocation-intensive: stresses allocator paths — the benchmark where
 * the paper reports ASan 14x and Valgrind 58x slowdowns while Safe
 * Sulong stays at 1.7x. */
#include <stdio.h>
#include <stdlib.h>

struct tree {
    struct tree *left;
    struct tree *right;
};

static struct tree *make_tree(int depth) {
    struct tree *t = (struct tree *)malloc(sizeof(struct tree));
    if (depth > 0) {
        t->left = make_tree(depth - 1);
        t->right = make_tree(depth - 1);
    } else {
        t->left = NULL;
        t->right = NULL;
    }
    return t;
}

static int check_tree(struct tree *t) {
    if (t->left == NULL) {
        return 1;
    }
    return 1 + check_tree(t->left) + check_tree(t->right);
}

static void free_tree(struct tree *t) {
    if (t->left != NULL) {
        free_tree(t->left);
        free_tree(t->right);
    }
    free(t);
}

int main(void) {
    int max_depth = 6;
    int min_depth = 2;
    int depth;
    long checksum = 0;
    struct tree *long_lived = make_tree(max_depth);
    for (depth = min_depth; depth <= max_depth; depth += 2) {
        int iterations = 1 << (max_depth - depth + min_depth);
        int i;
        long check = 0;
        for (i = 0; i < iterations; i++) {
            struct tree *t = make_tree(depth);
            check += check_tree(t);
            free_tree(t);
        }
        checksum += check;
    }
    checksum += check_tree(long_lived);
    free_tree(long_lived);
    printf("binarytrees checksum: %ld\n", checksum);
    return 0;
}
