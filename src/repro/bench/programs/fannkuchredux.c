/* Computer Language Benchmarks Game: fannkuch-redux (n = 7). */
#include <stdio.h>

#define N 7

int main(void) {
    int perm[N];
    int perm1[N];
    int count[N];
    int max_flips = 0;
    int checksum = 0;
    int perm_index = 0;
    int r = N;
    int i;

    for (i = 0; i < N; i++) {
        perm1[i] = i;
    }

    while (1) {
        while (r != 1) {
            count[r - 1] = r;
            r--;
        }
        for (i = 0; i < N; i++) {
            perm[i] = perm1[i];
        }
        {
            int flips = 0;
            int k = perm[0];
            while (k != 0) {
                int lo = 0;
                int hi = k;
                while (lo < hi) {
                    int tmp = perm[lo];
                    perm[lo] = perm[hi];
                    perm[hi] = tmp;
                    lo++;
                    hi--;
                }
                flips++;
                k = perm[0];
            }
            if (flips > max_flips) {
                max_flips = flips;
            }
            if (perm_index % 2 == 0) {
                checksum += flips;
            } else {
                checksum -= flips;
            }
        }
        while (1) {
            int first;
            if (r == N) {
                printf("fannkuchredux: checksum=%d maxflips=%d\n",
                       checksum, max_flips);
                return 0;
            }
            first = perm1[0];
            for (i = 0; i < r; i++) {
                perm1[i] = perm1[i + 1];
            }
            perm1[r] = first;
            count[r] = count[r] - 1;
            if (count[r] > 0) {
                break;
            }
            r++;
        }
        r = 1;
        perm_index++;
    }
}
