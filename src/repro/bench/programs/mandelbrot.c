/* Computer Language Benchmarks Game: mandelbrot (small grid, bit
 * checksum instead of PBM output). */
#include <stdio.h>

int main(void) {
    int size = 32;
    int x;
    int y;
    unsigned int checksum = 0;
    for (y = 0; y < size; y++) {
        for (x = 0; x < size; x++) {
            double cr = 2.0 * x / size - 1.5;
            double ci = 2.0 * y / size - 1.0;
            double zr = 0.0;
            double zi = 0.0;
            int iterations = 0;
            int in_set = 1;
            while (iterations < 50) {
                double zr2 = zr * zr;
                double zi2 = zi * zi;
                if (zr2 + zi2 > 4.0) {
                    in_set = 0;
                    break;
                }
                zi = 2.0 * zr * zi + ci;
                zr = zr2 - zi2 + cr;
                iterations++;
            }
            checksum = checksum * 31 + (unsigned int)(in_set * 255
                                                      + iterations);
        }
    }
    printf("mandelbrot checksum: %u\n", checksum);
    return 0;
}
