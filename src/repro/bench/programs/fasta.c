/* Computer Language Benchmarks Game: fasta (reduced N, checksummed
 * output instead of full sequence dumps). */
#include <stdio.h>

#define IM 139968
#define IA 3877
#define IC 29573

static long seed = 42;

static double fasta_random(double max) {
    seed = (seed * IA + IC) % IM;
    return max * (double)seed / IM;
}

static const char alu[] =
    "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGG"
    "GAGGCCGAGGCGGGCGGATCACCTGAGGTCAGGAGTTCGAGA";

struct amino {
    char symbol;
    double probability;
};

static struct amino iub[15] = {
    {'a', 0.27}, {'c', 0.12}, {'g', 0.12}, {'t', 0.27}, {'B', 0.02},
    {'D', 0.02}, {'H', 0.02}, {'K', 0.02}, {'M', 0.02}, {'N', 0.02},
    {'R', 0.02}, {'S', 0.02}, {'V', 0.02}, {'W', 0.02}, {'Y', 0.02},
};

static char select_symbol(struct amino *table, int n, double r) {
    int i;
    double cumulative = 0.0;
    for (i = 0; i < n - 1; i++) {
        cumulative += table[i].probability;
        if (r < cumulative) {
            return table[i].symbol;
        }
    }
    return table[n - 1].symbol;
}

int main(void) {
    int repeat_length = 600;
    int random_length = 900;
    unsigned int checksum = 0;
    int i;
    int alu_len = 84;
    for (i = 0; i < repeat_length; i++) {
        checksum = checksum * 31 + (unsigned char)alu[i % alu_len];
    }
    for (i = 0; i < random_length; i++) {
        char c = select_symbol(iub, 15, fasta_random(1.0));
        checksum = checksum * 31 + (unsigned char)c;
    }
    printf("fasta checksum: %u\n", checksum);
    return 0;
}
