/* Computer Language Benchmarks Game: spectral-norm (n = 24). */
#include <math.h>
#include <stdio.h>

#define N 20

static double eval_a(int i, int j) {
    return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1);
}

static void mult_av(const double *v, double *av) {
    int i;
    int j;
    for (i = 0; i < N; i++) {
        av[i] = 0.0;
        for (j = 0; j < N; j++) {
            av[i] += eval_a(i, j) * v[j];
        }
    }
}

static void mult_atv(const double *v, double *atv) {
    int i;
    int j;
    for (i = 0; i < N; i++) {
        atv[i] = 0.0;
        for (j = 0; j < N; j++) {
            atv[i] += eval_a(j, i) * v[j];
        }
    }
}

static void mult_atav(const double *v, double *atav, double *tmp) {
    mult_av(v, tmp);
    mult_atv(tmp, atav);
}

int main(void) {
    double u[N];
    double v[N];
    double tmp[N];
    double vbv = 0.0;
    double vv = 0.0;
    int i;
    for (i = 0; i < N; i++) {
        u[i] = 1.0;
    }
    for (i = 0; i < 8; i++) {
        mult_atav(u, v, tmp);
        mult_atav(v, u, tmp);
    }
    for (i = 0; i < N; i++) {
        vbv += u[i] * v[i];
        vv += v[i] * v[i];
    }
    printf("spectralnorm: %.9f\n", sqrt(vbv / vv));
    return 0;
}
