/* Benchmarks Game: meteor-contest stand-in.
 *
 * The real meteor benchmark packs pentominoes on a hex board; this
 * reduced version solves an exact board-packing problem with the same
 * control-flow profile (deep recursive backtracking over bitmasks on a
 * small board), counting all tilings of a 4x4 board with 2x1 dominoes
 * plus L-triominoes.  One iteration explores the full search space. */
#include <stdio.h>

#define WIDTH 4
#define HEIGHT 4
#define CELLS (WIDTH * HEIGHT)

static long solutions;

static int first_free(unsigned int occupied) {
    int i;
    for (i = 0; i < CELLS; i++) {
        if ((occupied & (1u << i)) == 0) {
            return i;
        }
    }
    return -1;
}

static void place(unsigned int occupied, int pieces_left);

static void try_piece(unsigned int occupied, int pieces_left,
                      unsigned int mask, unsigned int needed) {
    if ((mask & needed) == needed && (occupied & needed) == 0) {
        place(occupied | needed, pieces_left - 1);
    }
}

static void place(unsigned int occupied, int pieces_left) {
    int cell;
    int x;
    int y;
    unsigned int full = (1u << CELLS) - 1;
    if (occupied == full) {
        solutions++;
        return;
    }
    cell = first_free(occupied);
    x = cell % WIDTH;
    y = cell / WIDTH;

    /* Horizontal domino. */
    if (x + 1 < WIDTH) {
        unsigned int needed = (1u << cell) | (1u << (cell + 1));
        if ((occupied & needed) == 0) {
            place(occupied | needed, pieces_left - 1);
        }
    }
    /* Vertical domino. */
    if (y + 1 < HEIGHT) {
        unsigned int needed = (1u << cell) | (1u << (cell + WIDTH));
        if ((occupied & needed) == 0) {
            place(occupied | needed, pieces_left - 1);
        }
    }
    /* L-triomino, four orientations. */
    if (x + 1 < WIDTH && y + 1 < HEIGHT) {
        unsigned int corner = (1u << cell);
        unsigned int right = (1u << (cell + 1));
        unsigned int below = (1u << (cell + WIDTH));
        unsigned int diag = (1u << (cell + WIDTH + 1));
        unsigned int shapes[4];
        int i;
        shapes[0] = corner | right | below;
        shapes[1] = corner | right | diag;
        shapes[2] = corner | below | diag;
        shapes[3] = corner | right | below | diag; /* 2x2 square */
        for (i = 0; i < 4; i++) {
            if ((occupied & shapes[i]) == 0) {
                place(occupied | shapes[i], pieces_left - 1);
            }
        }
    }
    (void)pieces_left;
}

int main(void) {
    solutions = 0;
    place(0u, CELLS / 2);
    printf("meteor solutions: %ld\n", solutions);
    return 0;
}
