"""Benchmark trajectory: fold BENCH_*.json results into one history.

Each benchmark module writes its current numbers to a ``BENCH_<name>.json``
file at the repo root — a snapshot, overwritten per run.  This module
appends those snapshots to ``BENCH_trajectory.json`` so the performance
*trajectory* across commits/runs is preserved: one entry per merge run,
keyed by an increasing run index, carrying every benchmark file's data.

Identical consecutive snapshots are not re-appended (re-running the merge
without re-running the benchmarks is a no-op), so the trajectory grows
only when the numbers actually change.
"""

from __future__ import annotations

import glob
import json
import os

SCHEMA_VERSION = 1
TRAJECTORY_NAME = "BENCH_trajectory.json"


def collect_bench_files(root: str) -> dict[str, dict]:
    """Read every ``BENCH_*.json`` in ``root`` (except the trajectory
    itself); returns {benchmark name: payload}."""
    results: dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        base = os.path.basename(path)
        if base == TRAJECTORY_NAME:
            continue
        name = base[len("BENCH_"):-len(".json")]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                results[name] = json.load(handle)
        except (OSError, ValueError):
            # A half-written or corrupt snapshot must not poison the
            # trajectory; skip it and keep the rest.
            continue
    return results


def load_trajectory(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {"schema": SCHEMA_VERSION, "runs": []}
    if not isinstance(data, dict) or not isinstance(data.get("runs"), list):
        return {"schema": SCHEMA_VERSION, "runs": []}
    data.setdefault("schema", SCHEMA_VERSION)
    return data


def merge(root: str, timestamp: str | None = None) -> dict:
    """Fold the current BENCH_*.json snapshots into the trajectory file
    under ``root``.  Returns a report: {path, runs, appended, benchmarks}.
    """
    snapshots = collect_bench_files(root)
    path = os.path.join(root, TRAJECTORY_NAME)
    trajectory = load_trajectory(path)
    runs = trajectory["runs"]
    appended = False
    if snapshots:
        last = runs[-1]["benchmarks"] if runs else None
        if last != snapshots:
            entry = {"run": len(runs) + 1, "benchmarks": snapshots}
            if timestamp:
                entry["timestamp"] = timestamp
            runs.append(entry)
            appended = True
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(trajectory, handle, indent=2, sort_keys=True)
                handle.write("\n")
    return {"path": path, "runs": len(runs), "appended": appended,
            "benchmarks": sorted(snapshots)}


def record_benchmark(root: str | None = None) -> dict:
    """Convenience hook for benchmark modules: merge after writing a
    BENCH_*.json.  ``root`` defaults to the repository root (two levels
    above this file's package)."""
    if root is None:
        here = os.path.dirname(os.path.abspath(__file__))
        root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return merge(root)
