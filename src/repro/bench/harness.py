"""Benchmark harness: sessions that run one program repeatedly under each
execution configuration, as the paper's warm-up/peak harness does (§4.3:
"we had to account for the adaptive compilation techniques of Truffle and
Graal by setting up a harness that warmed up the benchmarks").
"""

from __future__ import annotations

import os
import time

from ..cfront import compile_source
from ..core.errors import ProgramExit
from ..core.interpreter import Runtime
from ..core.intrinsics import default_intrinsics
from ..libc import include_dir, libc_module
from ..native import NativeMachine, compile_native
from ..sanitizers.asan import AsanTool, instrument_module
from ..sanitizers.memcheck import MemcheckTool

PROGRAMS = ["binarytrees", "fannkuchredux", "fasta", "fastaredux",
            "mandelbrot", "meteor", "nbody", "spectralnorm", "whetstone"]

# Excluded from the Figure 16 plot (shown separately), as in the paper.
FIGURE16_PROGRAMS = [p for p in PROGRAMS if p != "binarytrees"]


def programs_dir() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "programs")


def program_source(name: str) -> str:
    path = os.path.join(programs_dir(), name + ".c")
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


class Session:
    """One warmed-up execution configuration for one program."""

    name = "session"

    def run_iteration(self) -> bytes:
        """Run main() once; returns its stdout."""
        raise NotImplementedError

    def timed_iteration(self) -> tuple[float, bytes]:
        started = time.perf_counter()
        output = self.run_iteration()
        return time.perf_counter() - started, output


class ManagedSession(Session):
    """Safe Sulong: managed interpreter + optional dynamic compilation."""

    def __init__(self, source: str, jit_threshold: int | None = 3,
                 jit_compile_latency: int = 0,
                 filename: str = "bench.c",
                 elide_checks: bool = False,
                 speculate: bool = False,
                 fuse: bool = True,
                 observer=None, track_heap: bool = False):
        self.name = "safe-sulong"
        program = compile_source(source, filename=filename,
                                 include_dirs=[include_dir()],
                                 defines={"__SAFE_SULONG__": "1"})
        module = libc_module().link(program, name=filename)
        if speculate:
            elide_checks = True
        if elide_checks:
            from ..opt import elide
            elide.run_module(module)
        self.observer = observer
        self.runtime = Runtime(module, intrinsics=default_intrinsics(),
                               jit_threshold=jit_threshold,
                               jit_compile_latency=jit_compile_latency,
                               elide_checks=elide_checks,
                               speculate=speculate, fuse=fuse,
                               observer=observer,
                               track_heap=track_heap)

    def run_iteration(self) -> bytes:
        runtime = self.runtime
        runtime.reset()
        try:
            runtime.run_main()
        except ProgramExit:
            pass
        return bytes(runtime.stdout)

    @property
    def compiled_functions(self) -> int:
        return self.runtime.compiled_functions


class NativeSession(Session):
    """Clang-compiled execution, optionally under a tool."""

    def __init__(self, source: str, opt_level: int = 0,
                 tool_factory=None, name: str | None = None,
                 filename: str = "bench.c",
                 prepare_eagerly: bool = False):
        self.name = name or f"clang-O{opt_level}"
        self.module = compile_native(source, filename=filename,
                                     opt_level=opt_level)
        if tool_factory is not None and tool_factory is AsanTool:
            instrument_module(self.module)
        self.tool_factory = tool_factory
        self.machine = self._new_machine()
        if prepare_eagerly:
            for function in self.module.functions.values():
                if function.is_definition:
                    self.machine.prepared_function(function)

    def _new_machine(self) -> NativeMachine:
        tool = self.tool_factory() if self.tool_factory else None
        return NativeMachine(self.module, tool=tool)

    def run_iteration(self) -> bytes:
        # Reset data state (globals, heap, stack, tool shadow) like a
        # process re-exec; the prepared code is reused.
        machine = self.machine
        machine.reset()
        try:
            machine.run_main()
        except ProgramExit:
            pass
        return bytes(machine.stdout)


def make_session(program: str, configuration: str) -> Session:
    """Configurations used across the performance experiments."""
    source = program_source(program)
    filename = program + ".c"
    if configuration == "safe-sulong":
        return ManagedSession(source, jit_threshold=3, filename=filename)
    if configuration == "safe-sulong-warmup":
        # Background-compiler model: functions compile one by one while
        # the program keeps interpreting (Figure 15's gradual ramp).
        return ManagedSession(source, jit_threshold=3,
                              jit_compile_latency=0.5,
                              filename=filename)
    if configuration == "safe-sulong-interp":
        return ManagedSession(source, jit_threshold=None,
                              filename=filename)
    if configuration == "safe-sulong-elide":
        # Static check elision (opt/elide.py): dynamic checks the
        # dataflow analyses prove redundant are skipped.
        return ManagedSession(source, jit_threshold=3, filename=filename,
                              elide_checks=True)
    if configuration == "safe-sulong-interp-elide":
        return ManagedSession(source, jit_threshold=None,
                              filename=filename, elide_checks=True)
    if configuration == "safe-sulong-interp-nofuse":
        # The pre-superinstruction dispatch baseline: no fusion, no
        # elision, no speculation — what the interpreter was before
        # the speculative-elision work (BENCH_speculate.json baseline).
        return ManagedSession(source, jit_threshold=None,
                              filename=filename, fuse=False)
    if configuration == "safe-sulong-interp-speculate":
        # Speculative check elision + safe-O2 clone + fused dispatch,
        # interpreter tier only (no JIT): the treatment side of the
        # ≥2x gate in benchmarks/test_speculative_elision.py.
        return ManagedSession(source, jit_threshold=None,
                              filename=filename, speculate=True)
    if configuration == "safe-sulong-speculate":
        # Same with the dynamic tier: compiled code carries the same
        # guards and deopts back to the interpreter on failure.
        return ManagedSession(source, jit_threshold=3, filename=filename,
                              speculate=True)
    if configuration == "safe-sulong-obs":
        # Enabled observability: every check/instruction/call counted.
        from ..obs import Observer
        return ManagedSession(source, jit_threshold=None,
                              filename=filename,
                              observer=Observer(enabled=True))
    if configuration == "safe-sulong-obs-disabled":
        # Observer attached but disabled: must specialize to exactly
        # the plain fast paths (the <3% contract in BENCH_obs.json).
        from ..obs import Observer
        return ManagedSession(source, jit_threshold=None,
                              filename=filename,
                              observer=Observer(enabled=False))
    if configuration == "safe-sulong-blocktrace":
        # Block-trace recording (`repro explain`): every basic-block
        # entry snapshots the register file into a bounded ring.
        from ..obs import Observer
        return ManagedSession(source, jit_threshold=None,
                              filename=filename,
                              observer=Observer(enabled=True,
                                                block_trace=True))
    if configuration == "safe-sulong-blocktrace-disabled":
        # Recorder requested on a *disabled* observer: must specialize
        # to the plain fast path (the <3% contract in
        # BENCH_explain.json).
        from ..obs import Observer
        return ManagedSession(source, jit_threshold=None,
                              filename=filename,
                              observer=Observer(enabled=False,
                                                block_trace=True))
    if configuration == "safe-sulong-provenance":
        # Heap-object tracking kept alive for --heap-dump provenance
        # renders (alloc/free sites are stamped either way; this pays
        # only for retaining the object list).
        return ManagedSession(source, jit_threshold=None,
                              filename=filename, track_heap=True)
    if configuration == "safe-sulong-lines":
        # Per-source-line attribution: every retired instruction bumps
        # its line's counters (the `repro profile --lines` cost).
        from ..obs import Observer
        return ManagedSession(source, jit_threshold=None,
                              filename=filename,
                              observer=Observer(enabled=True, lines=True))
    if configuration == "clang-O0":
        return NativeSession(source, 0, filename=filename)
    if configuration == "clang-O3":
        return NativeSession(source, 3, filename=filename)
    if configuration == "asan-O0":
        return NativeSession(source, 0, tool_factory=AsanTool,
                             name="asan-O0", filename=filename)
    if configuration == "memcheck-O0":
        return NativeSession(source, 0, tool_factory=MemcheckTool,
                             name="memcheck-O0", filename=filename)
    raise KeyError(configuration)
