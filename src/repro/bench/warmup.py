"""Warm-up experiment (paper Figure 15).

Continuously re-executes a benchmark and reports how many iterations each
configuration completed in successive one-second buckets, together with
the number of functions the dynamic compiler had compiled by each bucket
(the dots on the paper's curve).  Safe Sulong starts slow (interpreter),
then crosses the run-time-instrumentation baseline and finally the
compile-time-instrumentation baseline, exactly as in §4.2.
"""

from __future__ import annotations

import time

from .harness import ManagedSession, make_session


class WarmupSeries:
    __slots__ = ("configuration", "buckets", "compiled_marks",
                 "total_iterations")

    def __init__(self, configuration: str, buckets: list[float],
                 compiled_marks: list[int], total_iterations: int):
        self.configuration = configuration
        self.buckets = buckets  # iterations/s per time bucket
        self.compiled_marks = compiled_marks  # compiled fns per bucket
        self.total_iterations = total_iterations

    def peak_rate(self) -> float:
        return max(self.buckets) if self.buckets else 0.0

    def first_bucket_rate(self) -> float:
        return self.buckets[0] if self.buckets else 0.0


def measure_warmup(program: str, configuration: str,
                   duration: float = 6.0,
                   bucket_seconds: float = 1.0) -> WarmupSeries:
    # The clock starts at tool invocation, as in Figure 15: Safe Sulong's
    # first bucket pays for engine start-up and libc parsing.
    start = time.perf_counter()
    session = make_session(program, configuration)
    buckets: list[float] = []
    compiled_marks: list[int] = []
    total = 0
    bucket_end = start + bucket_seconds
    bucket_count = 0
    while True:
        session.run_iteration()
        total += 1
        bucket_count += 1
        now = time.perf_counter()
        if now >= bucket_end:
            # Account for iterations spanning bucket boundaries by
            # normalizing to the actual elapsed bucket time.
            elapsed = now - (bucket_end - bucket_seconds)
            buckets.append(bucket_count / elapsed)
            compiled_marks.append(
                session.compiled_functions
                if isinstance(session, ManagedSession) else 0)
            bucket_count = 0
            bucket_end = now + bucket_seconds
        if now - start >= duration:
            break
    # The trailing partial bucket is dropped (it would under-report).
    return WarmupSeries(configuration, buckets, compiled_marks, total)


def warmup_report(program: str = "meteor", duration: float = 6.0,
                  configurations: list[str] | None = None
                  ) -> dict[str, WarmupSeries]:
    configurations = configurations or ["asan-O0", "memcheck-O0",
                                        "safe-sulong-warmup"]
    return {
        configuration: measure_warmup(program, configuration, duration)
        for configuration in configurations
    }


def format_report(report: dict[str, WarmupSeries]) -> str:
    lines = ["warm-up: iterations/second per one-second bucket"]
    for configuration, series in report.items():
        rates = " ".join(f"{rate:6.2f}" for rate in series.buckets)
        lines.append(f"{configuration:14} {rates}")
        if any(series.compiled_marks):
            marks = " ".join(f"{m:6d}" for m in series.compiled_marks)
            lines.append(f"{'  compiled fns':14} {marks}")
    return "\n".join(lines)
