"""Performance experiments: warm-up (Fig. 15), peak (Fig. 16), start-up
(§4.2), over the Benchmarks Game + whetstone programs."""

from .harness import (FIGURE16_PROGRAMS, PROGRAMS, ManagedSession,
                      NativeSession, Session, make_session, program_source)
from .peak import (measure_peak, memcheck_slowdowns, relative_peaks)
from .startup import startup_report
from .warmup import WarmupSeries, measure_warmup, warmup_report

__all__ = ["FIGURE16_PROGRAMS", "PROGRAMS", "ManagedSession",
           "NativeSession", "Session", "make_session", "program_source",
           "measure_peak", "memcheck_slowdowns", "relative_peaks",
           "startup_report", "WarmupSeries", "measure_warmup",
           "warmup_report"]
