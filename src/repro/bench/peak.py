"""Peak-performance experiment (paper Figure 16 and the §4.3 text).

Warms each configuration up, then samples steady-state iteration times
and reports them relative to Clang -O0 — the same normalization as the
paper's box plots.
"""

from __future__ import annotations


from .harness import FIGURE16_PROGRAMS, make_session

DEFAULT_CONFIGURATIONS = ["clang-O0", "clang-O3", "asan-O0", "safe-sulong"]


def measure_peak(program: str, configuration: str, warmup: int = 4,
                 samples: int = 3) -> float:
    """Best steady-state seconds per iteration.

    The minimum is the standard robust estimator for benchmarks: timing
    noise on a shared machine is strictly one-sided (interference only
    ever makes an iteration slower).  The cycle collector is paused
    during samples so garbage accumulated by *earlier* experiments in the
    same process cannot tax this one."""
    import gc
    session = make_session(program, configuration)
    for _ in range(warmup):
        session.run_iteration()
    gc.collect()
    gc.disable()
    try:
        times = []
        for _ in range(samples):
            seconds, _output = session.timed_iteration()
            times.append(seconds)
    finally:
        gc.enable()
    return min(times)


def relative_peaks(programs: list[str] | None = None,
                   configurations: list[str] | None = None,
                   warmup: int = 4, samples: int = 3
                   ) -> dict[str, dict[str, float]]:
    """program -> configuration -> time relative to clang -O0."""
    programs = programs or FIGURE16_PROGRAMS
    configurations = configurations or DEFAULT_CONFIGURATIONS
    table: dict[str, dict[str, float]] = {}
    for program in programs:
        baseline = measure_peak(program, "clang-O0", warmup, samples)
        row = {"clang-O0": 1.0}
        for configuration in configurations:
            if configuration == "clang-O0":
                continue
            seconds = measure_peak(program, configuration, warmup, samples)
            row[configuration] = seconds / baseline
        table[program] = row
    return table


def format_table(table: dict[str, dict[str, float]]) -> str:
    configurations = list(next(iter(table.values())).keys())
    lines = [f"{'benchmark':16}"
             + "".join(f"{c:>14}" for c in configurations)]
    for program, row in table.items():
        lines.append(f"{program:16}" + "".join(
            f"{row[c]:>14.2f}" for c in configurations))
    return "\n".join(lines)


def memcheck_slowdowns(programs: list[str] | None = None,
                       warmup: int = 1, samples: int = 1
                       ) -> dict[str, float]:
    """Valgrind-style slowdowns relative to Clang -O0 (§4.3: 10–58x,
    lowest on spectralnorm/fasta/fannkuchredux)."""
    programs = programs or FIGURE16_PROGRAMS
    table = {}
    for program in programs:
        baseline = measure_peak(program, "clang-O0", warmup, samples)
        memcheck = measure_peak(program, "memcheck-O0", warmup, samples)
        table[program] = memcheck / baseline
    return table
