"""Start-up cost experiment (paper §4.2).

Measures the time from "tool invoked" to a completed "Hello, World!":

* **asan**: the binary is already compiled and instrumented; start-up is
  process/runtime initialization only — fastest.
* **memcheck**: run-time instrumentation translates the code at load
  time (we prepare every function eagerly, Valgrind-style) and sets up
  shadow state — in between.
* **safe-sulong**: the engine must initialize and *parse libc* before
  calling main (§4.2: "the JVM initializes and starts Safe Sulong, which
  must then parse libc") — slowest.
"""

from __future__ import annotations

import time

from ..core.engine import SafeSulong
from ..core.interpreter import Runtime
from ..core.intrinsics import default_intrinsics
from ..libc import libc_module
from ..native import NativeMachine, compile_native
from ..sanitizers.asan import AsanTool, instrument_module
from ..sanitizers.memcheck import MemcheckTool

HELLO = '#include <stdio.h>\nint main(void) { printf("Hello, World!\\n"); return 0; }\n'


def startup_asan() -> float:
    module = compile_native(HELLO)  # precompiled, like a shipped binary
    instrument_module(module)
    started = time.perf_counter()
    machine = NativeMachine(module, tool=AsanTool())
    machine.run_main()
    return time.perf_counter() - started


def startup_memcheck() -> float:
    module = compile_native(HELLO)  # the binary exists; the tool loads it
    started = time.perf_counter()
    machine = NativeMachine(module, tool=MemcheckTool())
    # Dynamic binary translation at load time: instrument all code.
    for function in module.functions.values():
        if function.is_definition:
            machine.prepared_function(function)
    machine.run_main()
    return time.perf_counter() - started


def startup_safe_sulong() -> float:
    engine = SafeSulong()
    started = time.perf_counter()
    libc = libc_module(force_reload=True)  # parse libc at start-up
    module = engine.compile(HELLO)
    runtime = Runtime(module, intrinsics=default_intrinsics())
    runtime.run_main()
    return time.perf_counter() - started


def startup_report(repeats: int = 3) -> dict[str, float]:
    """Best-of-N start-up seconds per tool."""
    measurements = {
        "asan": min(startup_asan() for _ in range(repeats)),
        "memcheck": min(startup_memcheck() for _ in range(repeats)),
        "safe-sulong": min(startup_safe_sulong() for _ in range(repeats)),
    }
    return measurements
