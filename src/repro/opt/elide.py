"""Proven-safe check elision (static companion to the dynamic checks).

Runs the pointer/interval analyses over each function and annotates
loads, stores, and geps whose dynamic safety checks are *proven*
redundant:

* ``elide = 1`` — the pointer is definitely non-null and definitely a
  data-object address (it comes from an alloca, a global, or the
  managed allocator, possibly through gep/phi/select), so the
  per-access null/function-pointer check cannot fire.  The access still
  goes through the managed object, whose own bounds and lifetime
  checks remain — a use-after-free or out-of-bounds is still caught.
* ``elide = 2`` — additionally, the byte-offset interval is proven
  inside ``[0, size - access_size]`` of an object proven live: a stack
  or global object (which cannot be freed), or a heap object whose
  allocation site is LIVE on every path to the access.  No check of any
  kind can fire, so the interpreter may also drop its per-access
  exception plumbing.

With interprocedural ``summaries`` (from
:func:`repro.analysis.interproc.module_summaries`) the proofs survive
calls: a call to a summarized-safe callee — one that neither frees nor
retains its pointer arguments — no longer invalidates the liveness of
the heap objects passed to it, and pointers returned by summarized
allocator wrappers carry the same fresh-heap proof a direct ``malloc``
result does.

This is the paper's "safe semantics" discipline in static form: a check
is removed only when the analysis *proves* the abstract machine cannot
reach the error, never because an error looks unlikely.  Unoptimized
(clang -O0-style) IR is what the managed engine executes, so the pass
works there — no mem2reg required; facts flow through registers, which
are SSA even at -O0 (and the summaries are computed on the same
unmutated IR).

The annotations are inert until a :class:`~repro.core.interpreter.
Runtime` is created with ``elide_checks=True`` — important because the
libc module is compiled once per process and shared across engines.
"""

from __future__ import annotations

from .. import ir
from ..analysis.cfg import ControlFlowGraph
from ..analysis.heapstate import LIVE, HeapStateAnalysis
from ..analysis.intervals import IntervalAnalysis
from ..analysis.pointers import NONNULL, PointerAnalysis
from ..ir import instructions as inst


def run(function: ir.Function, summaries: dict | None = None) -> int:
    """Annotate one function; returns the number of instructions whose
    checks were (fully or partly) elided.  Idempotent."""
    if not function.is_definition:
        return 0
    cfg = ControlFlowGraph(function)
    intervals = IntervalAnalysis(function, cfg).run()
    pointers = PointerAnalysis(function, intervals, cfg,
                               summaries=summaries).run()
    heap = HeapStateAnalysis(function, pointers, cfg,
                             summaries=summaries).run()
    elided = 0
    for block in cfg.reverse_postorder:
        if block not in pointers.result.input:
            continue
        pointers._current_block = block
        pointer_state = dict(pointers.result.input[block])
        heap_state = dict(heap.result.input.get(block, {}))
        for instruction in block.instructions:
            if isinstance(instruction, (inst.Load, inst.Store)):
                fact = pointers.fact_for(instruction.pointer,
                                         pointer_state)
                level = _proof_level(fact, _access_size(instruction),
                                     heap_state)
                if level > instruction.elide:
                    instruction.elide = level
                    elided += 1
            elif isinstance(instruction, inst.Gep):
                fact = pointers.fact_for(instruction.base, pointer_state)
                if fact.nullness == NONNULL and \
                        fact.region is not None and \
                        fact.region.kind != "param" and \
                        not instruction.proven_nonnull:
                    instruction.proven_nonnull = True
                    elided += 1
            pointers._transfer_instruction(instruction, pointer_state)
            heap._transfer_instruction(instruction, heap_state)
    return elided


def run_module(module: ir.Module, cache=None) -> int:
    """Annotate every function, with interprocedural summaries computed
    over the module (incrementally, when ``cache`` is given).

    A function whose annotations end up *level-1 only* (no level-2
    access, no proven gep) is reset to level 0: a bare level-1 mark
    removes just the null/dispatch test yet changes which node shapes
    the interpreter can pick — in particular it blocks gep+access
    fusion for accesses whose gep lacks the matching non-null proof —
    so with nothing else proven the marks cost more than they save
    (this showed up as nbody's 0.98x in BENCH_elision.json)."""
    from ..analysis.interproc.driver import module_summaries
    summaries = module_summaries(module, cache=cache)
    total = 0
    for function in module.functions.values():
        elided = run(function, summaries)
        if elided and _level1_only(function):
            _reset(function)
            elided = 0
        total += elided
    return total


def _level1_only(function: ir.Function) -> bool:
    proven_something = False
    annotated_any = False
    for instruction in function.instructions():
        if isinstance(instruction, (inst.Load, inst.Store)):
            if instruction.elide >= 2:
                proven_something = True
            elif instruction.elide == 1:
                annotated_any = True
        elif isinstance(instruction, inst.Gep) \
                and instruction.proven_nonnull:
            proven_something = True
    return annotated_any and not proven_something


def _reset(function: ir.Function) -> None:
    for instruction in function.instructions():
        if isinstance(instruction, (inst.Load, inst.Store)):
            instruction.elide = 0
        elif isinstance(instruction, inst.Gep):
            instruction.proven_nonnull = False


def _access_size(instruction) -> int | None:
    access_type = instruction.result.type \
        if isinstance(instruction, inst.Load) else instruction.value.type
    try:
        return access_type.size
    except TypeError:
        return None


def _proof_level(fact, access_size: int | None, heap_state) -> int:
    # Level 1 requires a known region: nullness alone is not enough,
    # because e.g. inttoptr of a nonzero integer is "non-null" yet still
    # trips the dynamic invalid-pointer check.  A region proves the
    # value is a genuine object address.
    if fact.nullness != NONNULL or fact.region is None:
        return 0
    region = fact.region
    if region.kind == "param":
        # A param region is an *identity* (for summary collection), not
        # a proof: the caller may pass any bit pattern.  Never elide on
        # it — the summaries pipeline sets param_regions, the elision
        # pipeline does not, so this is defense in depth.
        return 0
    if access_size is None or region.size is None or fact.offset is None:
        return 1
    in_bounds = fact.offset.lo is not None and fact.offset.lo >= 0 and \
        fact.offset.hi is not None and \
        fact.offset.hi + access_size <= region.size
    if not in_bounds:
        return 1
    if not region.freeable:
        return 2  # stack/global object: no lifetime to check
    # A heap object is provably live when its allocation site is LIVE
    # on every path to this point (the join washes any may-freed path
    # to TOP); the summaries keep that proof across calls to callees
    # that neither free nor retain the pointer.
    if heap_state.get(id(region.site)) == LIVE:
        return 2
    return 1
