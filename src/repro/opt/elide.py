"""Proven-safe check elision (static companion to the dynamic checks).

Runs the pointer/interval analyses over each function and annotates
loads, stores, and geps whose dynamic safety checks are *proven*
redundant:

* ``elide = 1`` — the pointer is definitely non-null and definitely a
  data-object address (it comes from an alloca, a global, or the
  managed allocator, possibly through gep/phi/select), so the
  per-access null/function-pointer check cannot fire.  The access still
  goes through the managed object, whose own bounds and lifetime
  checks remain — a use-after-free or out-of-bounds is still caught.
* ``elide = 2`` — additionally, the byte-offset interval is proven
  inside ``[0, size - access_size]`` of a *non-freeable* (stack or
  global) object, so no check of any kind can fire and the interpreter
  may also drop its per-access exception plumbing.

This is the paper's "safe semantics" discipline in static form: a check
is removed only when the analysis *proves* the abstract machine cannot
reach the error, never because an error looks unlikely.  Unoptimized
(clang -O0-style) IR is what the managed engine executes, so the pass
works there — no mem2reg required; facts flow through registers, which
are SSA even at -O0.

The annotations are inert until a :class:`~repro.core.interpreter.
Runtime` is created with ``elide_checks=True`` — important because the
libc module is compiled once per process and shared across engines.
"""

from __future__ import annotations

from .. import ir
from ..analysis.cfg import ControlFlowGraph
from ..analysis.intervals import IntervalAnalysis
from ..analysis.pointers import NONNULL, PointerAnalysis
from ..ir import instructions as inst
from ..ir import types as irt


def run(function: ir.Function) -> int:
    """Annotate one function; returns the number of instructions whose
    checks were (fully or partly) elided.  Idempotent."""
    if not function.is_definition:
        return 0
    cfg = ControlFlowGraph(function)
    intervals = IntervalAnalysis(function, cfg).run()
    pointers = PointerAnalysis(function, intervals, cfg).run()
    elided = 0

    def annotate(block, instruction, state):
        nonlocal elided
        if isinstance(instruction, (inst.Load, inst.Store)):
            fact = pointers.fact_for(instruction.pointer, state)
            level = _proof_level(fact, _access_size(instruction))
            if level > instruction.elide:
                instruction.elide = level
                elided += 1
        elif isinstance(instruction, inst.Gep):
            fact = pointers.fact_for(instruction.base, state)
            if fact.nullness == NONNULL and fact.region is not None \
                    and not instruction.proven_nonnull:
                instruction.proven_nonnull = True
                elided += 1

    pointers.visit(annotate)
    return elided


def run_module(module: ir.Module) -> int:
    return sum(run(function) for function in module.functions.values())


def _access_size(instruction) -> int | None:
    access_type = instruction.result.type \
        if isinstance(instruction, inst.Load) else instruction.value.type
    try:
        return access_type.size
    except TypeError:
        return None


def _proof_level(fact, access_size: int | None) -> int:
    # Level 1 requires a known region: nullness alone is not enough,
    # because e.g. inttoptr of a nonzero integer is "non-null" yet still
    # trips the dynamic invalid-pointer check.  A region proves the
    # value is a genuine object address.
    if fact.nullness != NONNULL or fact.region is None:
        return 0
    region = fact.region
    if region.freeable or access_size is None:
        return 1  # heap objects can be freed; lifetime check must stay
    if region.size is None or fact.offset is None:
        return 1
    if fact.offset.lo is not None and fact.offset.lo >= 0 and \
            fact.offset.hi is not None and \
            fact.offset.hi + access_size <= region.size:
        return 2
    return 1
