"""Profile-guided speculative check elision: the analysis layer.

The paper's engine pays a dynamic check on every memory access (§3.4).
The static elision pass (``opt/elide.py``) removes the checks it can
*prove* away; this module handles the next tier: checks that cannot be
proven statically but — per the observer's per-site profile — never
fired.  For a *counted loop* whose accesses stride linearly through an
array, all per-iteration bounds/lifetime checks collapse into one
loop-invariant guard evaluated at the preheader:

* the loop is ``for (i = init; i <pred> limit; i += c)`` with ``c > 0``
  and a loop-invariant ``limit`` (header = one induction phi + compare);
* each speculated access is ``base[k*i + d]`` with a loop-invariant
  ``base``, static stride ``k`` and offset ``d`` (``k``, ``d`` multiples
  of the element size);
* the guard checks, once: the base is a live typed array of the right
  element kind, the first and last touched offsets are in bounds, and
  the induction range cannot wrap.  Accesses sharing a base and stride
  are merged into one guard *run* spanning their ``[lo, hi]`` constant
  offsets (contiguous-access merging).

If the guard holds, every check in the loop body is vacuous and the
engine runs raw element accesses; if not, nothing has been elided — the
interpreter falls back to the full-checks blocks locally, and compiled
code raises :class:`~repro.core.errors.DeoptSignal` (which is only
permitted where the deopt *replay* is sound; see ``clean_preheader``).

This module is pure analysis over the IR; the interpreter and JIT
consume the plans (``core/interpreter.py`` / ``core/jit.py``).
"""

from __future__ import annotations

import hashlib

from .. import ir
from ..analysis.cfg import ControlFlowGraph
from ..ir import instructions as inst
from ..ir import types as irt


class SiteAccess:
    """One speculated load/store inside the loop."""

    __slots__ = ("instruction", "gep", "const_offset", "value_type",
                 "is_store", "drop_gep")

    def __init__(self, instruction, gep, const_offset, value_type,
                 is_store, drop_gep):
        self.instruction = instruction
        self.gep = gep
        self.const_offset = const_offset
        self.value_type = value_type
        self.is_store = is_store
        # The GEP's only use is this access: the fast path skips it.
        self.drop_gep = drop_gep


class SiteGroup:
    """Accesses sharing (base, stride, element size, kind): one guard
    covers the merged constant-offset run [lo, hi]."""

    __slots__ = ("base", "stride", "elem", "kind", "lo", "hi", "sites")

    def __init__(self, base, stride, elem, kind):
        self.base = base
        self.stride = stride
        self.elem = elem
        self.kind = kind  # "int" | "float"
        self.lo = 0
        self.hi = 0
        self.sites: list[SiteAccess] = []


class LoopPlan:
    """Everything the execution tiers need to speculate one loop."""

    __slots__ = ("header", "preheader", "latch", "body", "phi", "init",
                 "step", "limit", "predicate", "bits", "groups",
                 "clean_preheader", "dead", "guard_addend", "init_floor")

    def __init__(self, header, preheader, latch, body, phi, init, step,
                 limit, predicate, bits, groups, clean_preheader):
        # ids of extra pure instructions (constant-index GEP chains and
        # single-use index extensions) the fast path can skip entirely;
        # filled in by _collect_dead.
        self.dead: set[int] = set()
        # ``a[i + c]`` sites fold ``c`` into their constant offset; the
        # guard must then also rule out ``i + c`` wrapping at the phi
        # width (guard_addend: largest positive such c computed at phi
        # width) and, for a zero-extended ``i - c``, a negative
        # intermediate (init_floor: init must be >= it).
        self.guard_addend = 0
        self.init_floor = 0
        self.header = header
        self.preheader = preheader
        self.latch = latch
        self.body = body
        self.phi = phi
        self.init = init
        self.step = step
        self.limit = limit
        self.predicate = predicate  # normalized: slt | sle | ult | ule
        self.bits = bits
        self.groups = groups
        # True when no side effect can occur on any path from function
        # entry through the preheader: a guard failure there may raise
        # DeoptSignal and replay the activation from scratch.
        self.clean_preheader = clean_preheader


class SpeculationState:
    """Attached to a PreparedFunction; shared by interpreter and JIT."""

    __slots__ = ("plans", "digest")

    def __init__(self, plans, digest):
        self.plans = plans
        self.digest = digest

    @property
    def jit_plans(self):
        return [plan for plan in self.plans if plan.clean_preheader]


_SWAPPED = {"sgt": "slt", "sge": "sle", "ugt": "ult", "uge": "ule"}


def analyze_function(function: ir.Function, profile=None) -> list[LoopPlan]:
    """Find speculable counted loops.  ``profile`` is an observer
    profile dict (``{"fired": [[file, line], ...], ...}``): sites whose
    source line has ever fired a check are excluded.  ``None`` means
    optimistic mode — speculate every eligible site."""
    if not function.is_definition:
        return []
    cfg = ControlFlowGraph(function)
    if not cfg.loops:
        return []
    fired = _fired_lines(profile)
    defs: dict[int, inst.Instruction] = {}
    def_block: dict[int, ir.Block] = {}
    uses: dict[int, int] = {}
    for block in function.blocks:
        for instruction in block.instructions:
            if instruction.result is not None:
                defs[id(instruction.result)] = instruction
                def_block[id(instruction.result)] = block
            for operand in instruction.operands():
                if isinstance(operand, ir.VirtualRegister):
                    uses[id(operand)] = uses.get(id(operand), 0) + 1
    clean = _clean_blocks(function, cfg, defs)
    plans = []
    for header, body in cfg.loops.items():
        # Innermost loops only: cloned fast blocks never nest.
        if any(other is not header and other in body
               for other in cfg.loops):
            continue
        plan = _analyze_loop(header, body, cfg, defs, def_block, uses,
                             fired, clean)
        if plan is not None:
            plans.append(plan)
    plans.sort(key=lambda plan: cfg.rpo_index.get(plan.header, 1 << 30))
    return plans


def _fired_lines(profile):
    if not isinstance(profile, dict):
        return None
    fired = set()
    for entry in profile.get("fired", ()):
        if isinstance(entry, (list, tuple)) and len(entry) == 2:
            fired.add((str(entry[0]), int(entry[1])))
    return fired


def _analyze_loop(header, body, cfg, defs, def_block, uses, fired, clean):
    outside = [pred for pred in cfg.predecessors[header]
               if pred not in body]
    if len(outside) != 1:
        return None
    preheader = outside[0]
    # Calls could free/realloc a speculated base (or observe state);
    # loops containing any call are left fully checked.
    for block in body:
        for instruction in block.instructions:
            if isinstance(instruction, inst.Call):
                return None

    term = header.instructions[-1] if header.instructions else None
    if not isinstance(term, inst.CondBr):
        return None
    if term.if_true not in body or term.if_false in body:
        return None
    compare = defs.get(id(term.condition)) \
        if isinstance(term.condition, ir.VirtualRegister) else None
    if not isinstance(compare, inst.ICmp) \
            or def_block.get(id(compare.result)) is not header:
        return None
    predicate, lhs, rhs = compare.predicate, compare.lhs, compare.rhs
    if predicate in _SWAPPED:
        predicate = _SWAPPED[predicate]
        lhs, rhs = rhs, lhs
    if predicate not in ("slt", "sle", "ult", "ule"):
        return None
    if not isinstance(lhs.type, irt.IntType):
        return None

    phi = defs.get(id(lhs)) if isinstance(lhs, ir.VirtualRegister) else None
    if not isinstance(phi, inst.Phi) \
            or def_block.get(id(phi.result)) is not header \
            or len(phi.incoming) != 2:
        return None
    init = next_value = latch = None
    for pred_block, value in phi.incoming:
        if pred_block is preheader:
            init = value
        elif pred_block in body:
            latch, next_value = pred_block, value
    if init is None or next_value is None:
        return None
    add = defs.get(id(next_value)) \
        if isinstance(next_value, ir.VirtualRegister) else None
    if not isinstance(add, inst.BinOp) or add.op != "add":
        return None
    if add.lhs is phi.result and isinstance(add.rhs, ir.ConstInt):
        step = add.rhs.signed_value
    elif add.rhs is phi.result and isinstance(add.lhs, ir.ConstInt):
        step = add.lhs.signed_value
    else:
        return None
    if step <= 0:
        return None
    if isinstance(init, ir.VirtualRegister) \
            and def_block.get(id(init)) in body:
        return None
    limit = rhs
    if isinstance(limit, ir.VirtualRegister) \
            and def_block.get(id(limit)) in body:
        return None

    groups: dict[tuple, SiteGroup] = {}
    dead: set[int] = set()
    guard_addend = 0
    init_floor = 0
    for block in sorted(body, key=lambda b: cfg.rpo_index.get(b, 1 << 30)):
        for instruction in block.instructions:
            classified = _classify_site(instruction, phi, body, defs,
                                        def_block, uses, fired)
            if classified is None:
                continue
            site, stride, base, chain, (addend, narrow, zext) = classified
            if narrow and addend > 0:
                guard_addend = max(guard_addend, addend)
            if zext and addend < 0:
                init_floor = max(init_floor, -addend)
            key = (id(base), stride, site.value_type.size,
                   "float" if isinstance(site.value_type, irt.FloatType)
                   else "int")
            group = groups.get(key)
            if group is None:
                group = SiteGroup(base, stride, key[2], key[3])
                groups[key] = group
            group.sites.append(site)
            if site.drop_gep:
                _collect_dead(site, chain, defs, uses, dead)
    if not groups:
        return None
    for group in groups.values():
        offsets = [site.const_offset for site in group.sites]
        group.lo = min(offsets)
        group.hi = max(offsets)
    plan = LoopPlan(header, preheader, latch, body, phi, init, step,
                    limit, predicate, lhs.type.bits,
                    list(groups.values()), clean.get(preheader, False))
    plan.dead = dead
    plan.guard_addend = guard_addend
    plan.init_floor = init_floor
    return plan


def _collect_dead(site, chain, defs, uses, dead: set) -> None:
    """Pure instructions the fast path may skip once the site's GEP is
    dropped: the folded constant-index GEP chain (each link's sole use
    is the dropped link above it) and a single-use sext/zext feeding the
    dropped GEP's dynamic index.  All of these are non-trapping once the
    guard has verified the base is a live array Address."""
    for link in chain:
        if uses.get(id(link.result), 0) != 1:
            break  # shared by something the fast path still runs
        dead.add(id(link))
    for index in site.gep.indices:
        # The index chain (ext / phi±const arithmetic, possibly both) is
        # droppable link by link while each link's sole consumer is the
        # link just dropped above it.
        current = index
        for _ in range(3):
            if not isinstance(current, ir.VirtualRegister) \
                    or uses.get(id(current), 0) != 1:
                break
            definition = defs.get(id(current))
            if isinstance(definition, inst.Cast) \
                    and definition.kind in ("sext", "zext"):
                dead.add(id(definition))
                current = definition.value
            elif isinstance(definition, inst.BinOp) \
                    and definition.op in ("add", "sub"):
                dead.add(id(definition))
                break
            else:
                break


def _classify_site(instruction, phi, body, defs, def_block, uses, fired):
    """A (SiteAccess, stride, base, chain) tuple when ``instruction`` is
    a speculable access of the loop's induction pattern, else None.
    ``base`` is the loop-invariant pointer after folding any chain of
    constant-index GEPs (``chain``, outer → inner) into the constant
    offset — the front end addresses ``array[i]`` as a decay GEP feeding
    a dynamic GEP."""
    if isinstance(instruction, inst.Load):
        pointer, value_type, is_store = (instruction.pointer,
                                         instruction.result.type, False)
    elif isinstance(instruction, inst.Store):
        pointer, value_type, is_store = (instruction.pointer,
                                         instruction.value.type, True)
    else:
        return None
    if not isinstance(value_type, (irt.IntType, irt.FloatType)):
        return None
    gep = defs.get(id(pointer)) \
        if isinstance(pointer, ir.VirtualRegister) else None
    if not isinstance(gep, inst.Gep) \
            or def_block.get(id(gep.result)) not in body:
        return None
    decomposed = _decompose_gep(gep)
    if decomposed is None:
        return None
    const_offset, dynamic = decomposed
    if len(dynamic) != 1:
        return None
    index_value, stride = dynamic[0]
    induction = _induction_addend(index_value, phi, defs)
    if induction is None:
        return None
    const_offset += induction[0] * stride
    base = gep.base
    chain: list[inst.Gep] = []
    for _ in range(8):
        if not (isinstance(base, ir.VirtualRegister)
                and def_block.get(id(base)) in body):
            break
        inner = defs.get(id(base))
        if not isinstance(inner, inst.Gep):
            break
        folded = _decompose_gep(inner)
        if folded is None or folded[1]:
            break  # dynamic inner index: not foldable
        const_offset += folded[0]
        chain.append(inner)
        base = inner.base
    elem = value_type.size
    if stride <= 0 or stride % elem or const_offset % elem:
        return None
    if isinstance(base, ir.VirtualRegister) \
            and def_block.get(id(base)) in body:
        return None
    if fired is not None:
        loc = instruction.loc
        if loc is not None and getattr(loc, "line", 0) > 0 \
                and (loc.filename, loc.line) in fired:
            return None
    drop_gep = uses.get(id(gep.result), 0) == 1
    return (SiteAccess(instruction, gep, const_offset, value_type,
                       is_store, drop_gep), stride, base, chain, induction)


def _induction_addend(value, phi, defs):
    """``(addend, narrow, zext)`` when ``value`` is the induction
    variable plus a compile-time constant, else None.

    Recognized shapes (the wrap guard pins the phi to
    ``[0, 2^(bits-1))``, where sign- and zero-extension agree with the
    raw register value):

    * ``phi`` / ``ext(phi)``                        → addend 0
    * ``phi ± c`` / ``ext(phi ± c)``                → addend ±c, computed
      at the *narrow* phi width (guard must keep ``last + c`` from
      wrapping); ``zext`` of a negative intermediate flips its sign, so
      that combination additionally requires ``init ≥ c`` (init_floor)
    * ``ext(phi) ± c`` in a strictly wider type     → addend ±c, wide
      arithmetic (no extra wrap exposure for |c| < 2^phi.bits)
    """

    def const_addend(definition, operand):
        """±c when ``definition`` is ``operand ± ConstInt``."""
        if not isinstance(definition, inst.BinOp):
            return None
        if definition.op == "add":
            if definition.lhs is operand \
                    and isinstance(definition.rhs, ir.ConstInt):
                return definition.rhs.signed_value
            if definition.rhs is operand \
                    and isinstance(definition.lhs, ir.ConstInt):
                return definition.lhs.signed_value
        elif definition.op == "sub" and definition.lhs is operand \
                and isinstance(definition.rhs, ir.ConstInt):
            return -definition.rhs.signed_value
        return None

    if value is phi.result:
        return (0, False, False)
    definition = defs.get(id(value)) \
        if isinstance(value, ir.VirtualRegister) else None
    if isinstance(definition, inst.Cast) \
            and definition.kind in ("sext", "zext"):
        inner = definition.value
        if inner is phi.result:
            return (0, False, False)
        inner_def = defs.get(id(inner)) \
            if isinstance(inner, ir.VirtualRegister) else None
        addend = const_addend(inner_def, phi.result)
        if addend is None:
            return None
        return (addend, True, definition.kind == "zext")
    addend = const_addend(definition, phi.result)
    if addend is not None:
        return (addend, True, False)
    if isinstance(definition, inst.BinOp):
        for operand in (definition.lhs, definition.rhs):
            ext = defs.get(id(operand)) \
                if isinstance(operand, ir.VirtualRegister) else None
            if isinstance(ext, inst.Cast) and ext.kind in ("sext", "zext") \
                    and ext.value is phi.result \
                    and isinstance(definition.result.type, irt.IntType) \
                    and isinstance(phi.result.type, irt.IntType) \
                    and definition.result.type.bits \
                    >= phi.result.type.bits + 2:
                addend = const_addend(definition, operand)
                if addend is not None \
                        and abs(addend) < (1 << phi.result.type.bits):
                    return (addend, False, False)
    return None


def _decompose_gep(gep: inst.Gep):
    """Mirror of the interpreter's GEP lowering: a constant byte offset
    plus (index value, byte stride) dynamic terms.  None = unsupported
    shape."""
    const_offset = 0
    dynamic: list[tuple] = []
    current = gep.base.type.pointee
    for position, index in enumerate(gep.indices):
        if position == 0:
            stride = current.size
        elif isinstance(current, irt.ArrayType):
            stride = current.elem.size
            current = current.elem
        elif isinstance(current, irt.StructType):
            if not isinstance(index, ir.ConstInt):
                return None
            field = current.fields[index.value]
            const_offset += field.offset
            current = field.type
            continue
        else:
            return None
        if isinstance(index, ir.ConstInt):
            const_offset += index.signed_value * stride
        else:
            dynamic.append((index, stride))
    return const_offset, dynamic


def _clean_blocks(function, cfg, defs) -> dict:
    """Greatest fixpoint of "every path from entry to the end of this
    block is effect-free".  Effects: any call, and any store that is not
    provably to a fresh local alloca (a replayed activation re-creates
    its allocas, so writes to them are discarded with the frame)."""
    free = {}
    for block in function.blocks:
        ok = True
        for instruction in block.instructions:
            if isinstance(instruction, inst.Call):
                ok = False
                break
            if isinstance(instruction, inst.Store) \
                    and not _stores_to_local(instruction, defs):
                ok = False
                break
        free[block] = ok
    clean = dict(free)
    changed = True
    while changed:
        changed = False
        for block in cfg.reverse_postorder:
            if block is cfg.entry or not clean.get(block, False):
                continue
            if not all(clean.get(pred, False)
                       for pred in cfg.predecessors[block]):
                clean[block] = False
                changed = True
    return clean


def _stores_to_local(store: inst.Store, defs) -> bool:
    value = store.pointer
    for _ in range(32):
        if not isinstance(value, ir.VirtualRegister):
            return False
        definition = defs.get(id(value))
        if isinstance(definition, inst.Alloca):
            return True
        if isinstance(definition, inst.Gep):
            value = definition.base
        elif isinstance(definition, inst.Cast) \
                and definition.kind == "bitcast":
            value = definition.value
        else:
            return False
    return False


def plans_digest(function: ir.Function, plans: list[LoopPlan]) -> str:
    """Stable fingerprint of the speculation decisions — part of the
    speculative JIT artifact's cache key (a different profile selects
    different sites, hence different generated code)."""
    hasher = hashlib.sha256()
    hasher.update(function.name.encode())
    for plan in plans:
        hasher.update(
            f"|{plan.header.label}:{plan.predicate}:{plan.step}"
            f":{plan.bits}:{int(plan.clean_preheader)}"
            f":{plan.guard_addend}:{plan.init_floor}".encode())
        for group in plan.groups:
            hasher.update(f"[{group.stride}:{group.elem}:{group.kind}"
                          f":{group.lo}:{group.hi}".encode())
            for site in group.sites:
                hasher.update(
                    f"({'S' if site.is_store else 'L'}"
                    f":{site.const_offset}:{int(site.drop_gep)})".encode())
    return hasher.hexdigest()[:16]
