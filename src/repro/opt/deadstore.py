"""Dead-store elimination for non-escaping allocas.

If an alloca's address never escapes (it is only used by stores into it
and by GEPs that themselves never feed anything but dead loads/stores),
all stores into it are dead and are removed.  Combined with dead-loop
deletion this reduces the paper's Figure 3 function to ``return 0`` —
deleting the out-of-bounds store along the way.
"""

from __future__ import annotations

from .. import ir
from ..ir import instructions as inst


def run(function: ir.Function) -> bool:
    # Derived pointers: alloca -> set of registers that alias into it.
    alias_of: dict[int, inst.Alloca] = {}
    allocas: list[inst.Alloca] = []
    for instruction in function.instructions():
        if isinstance(instruction, inst.Alloca):
            allocas.append(instruction)
            alias_of[id(instruction.result)] = instruction

    # Propagate through GEPs and bitcasts until fixpoint.
    changed = True
    while changed:
        changed = False
        for instruction in function.instructions():
            if isinstance(instruction, (inst.Gep,)) or (
                    isinstance(instruction, inst.Cast)
                    and instruction.kind == "bitcast"):
                source = instruction.base if isinstance(instruction,
                                                        inst.Gep) \
                    else instruction.value
                alloca = alias_of.get(id(source))
                if alloca is not None \
                        and id(instruction.result) not in alias_of:
                    alias_of[id(instruction.result)] = alloca
                    changed = True

    # An alloca is "write-only" if every use of any alias is: a store
    # *into* it, or a GEP/bitcast deriving another alias.
    escaped: set[int] = set()
    loaded: set[int] = set()
    for instruction in function.instructions():
        for operand in instruction.operands():
            alloca = alias_of.get(id(operand))
            if alloca is None:
                continue
            if isinstance(instruction, inst.Store):
                if instruction.value is operand:
                    escaped.add(id(alloca))
                continue
            if isinstance(instruction, inst.Load):
                loaded.add(id(alloca))
                continue
            if isinstance(instruction, inst.Gep) \
                    and instruction.base is operand:
                continue
            if isinstance(instruction, inst.Cast) \
                    and instruction.kind == "bitcast":
                continue
            if _is_zero_fill(instruction):
                continue  # memset(0)-style initialization is a pure write
            escaped.add(id(alloca))

    dead_allocas = {id(alloca) for alloca in allocas
                    if id(alloca) not in escaped
                    and id(alloca) not in loaded}
    if not dead_allocas:
        return False

    removed = False
    for block in function.blocks:
        kept = []
        for instruction in block.instructions:
            if isinstance(instruction, inst.Store):
                alloca = alias_of.get(id(instruction.pointer))
                if alloca is not None and id(alloca) in dead_allocas:
                    removed = True
                    continue
            if _is_zero_fill(instruction):
                alloca = alias_of.get(id(instruction.args[0]))
                if alloca is not None and id(alloca) in dead_allocas:
                    removed = True
                    continue
            kept.append(instruction)
        block.instructions = kept
    return removed


def _is_zero_fill(instruction: inst.Instruction) -> bool:
    from ..cfront.irgen import ZERO_MEMORY
    return (isinstance(instruction, inst.Call)
            and isinstance(instruction.callee, ir.Function)
            and instruction.callee.name == ZERO_MEMORY)
