"""Loop-invariant code motion for the *safe* tier.

Hoists pure, non-trapping computations whose operands are all defined
outside a natural loop into the loop's unique outside predecessor
(inserted just before its terminator).  Because the engine must stay
bit-identical to the unoptimized interpreter, the hoistable set is
deliberately narrow:

* int/float arithmetic except division and remainder (division can
  stop the program; hoisting would move — or speculatively introduce —
  the stop);
* integer and float compares (pointer compares touch the lazy virtual
  address space, an observable effect);
* selects and arithmetic casts.

Memory accesses, GEPs (they trap on non-pointer values), calls, and
anything address-space-related never move.  Hoisted instructions may
execute speculatively (the predecessor can branch around the loop),
which is safe precisely because the set above is effect- and trap-free.

Loops come from the existing CFG utilities
(:class:`repro.analysis.cfg.ControlFlowGraph`); inner loops are
processed first so invariants can bubble outward level by level.
"""

from __future__ import annotations

from .. import ir
from ..analysis.cfg import ControlFlowGraph
from ..ir import instructions as inst
from ..ir import types as irt

_NO_HOIST_BINOPS = frozenset(["sdiv", "srem", "udiv", "urem"])
_PURE_CASTS = frozenset([
    "trunc", "zext", "sext", "fpext", "fptrunc",
    "sitofp", "uitofp", "fptosi", "fptoui",
])


def run(function: ir.Function) -> bool:
    if not function.is_definition:
        return False
    cfg = ControlFlowGraph(function)
    if not cfg.loops:
        return False
    changed = False
    order = {block: i for i, block in enumerate(cfg.reverse_postorder)}
    for header, body in sorted(cfg.loops.items(),
                               key=lambda item: len(item[1])):
        outside = [pred for pred in cfg.predecessors[header]
                   if pred not in body]
        if len(outside) != 1:
            continue
        preheader = outside[0]
        if preheader not in order:
            continue
        changed |= _hoist_loop(body, preheader, order)
    return changed


def _hoist_loop(body: set, preheader, order) -> bool:
    defined = set()
    for block in body:
        for instruction in block.instructions:
            if instruction.result is not None:
                defined.add(id(instruction.result))
    hoisted: list = []
    blocks = sorted(body, key=lambda block: order.get(block, 0))
    moving = True
    while moving:
        moving = False
        for block in blocks:
            kept = []
            for instruction in block.instructions:
                if _hoistable(instruction) and \
                        _invariant(instruction, defined):
                    hoisted.append(instruction)
                    defined.discard(id(instruction.result))
                    moving = True
                else:
                    kept.append(instruction)
            if len(kept) != len(block.instructions):
                block.instructions = kept
    if not hoisted:
        return False
    preheader.instructions[-1:-1] = hoisted
    return True


def _hoistable(instruction) -> bool:
    if isinstance(instruction, inst.BinOp):
        return instruction.op not in _NO_HOIST_BINOPS
    if isinstance(instruction, inst.ICmp):
        return not isinstance(instruction.lhs.type, irt.PointerType)
    if isinstance(instruction, inst.FCmp):
        return True
    if isinstance(instruction, inst.Select):
        return not isinstance(instruction.condition.type, irt.PointerType)
    if isinstance(instruction, inst.Cast):
        return instruction.kind in _PURE_CASTS
    return False


def _invariant(instruction, defined: set) -> bool:
    for operand in instruction.operands():
        if isinstance(operand, ir.VirtualRegister) \
                and id(operand) in defined:
            return False
    return True
