"""Dead-loop deletion (LLVM's loop-deletion pass).

A natural loop whose body has no side effects and whose values are not
used outside the loop is deleted by redirecting the header's exit branch.
This is how Figure 3 of the paper becomes ``return 0``: the store loop is
dead after dead-store elimination, so the loop — including its potential
out-of-bounds iterations — disappears (P2).
"""

from __future__ import annotations

from .. import ir
from ..ir import instructions as inst


def _dominators(function: ir.Function) -> dict[ir.Block, set[ir.Block]]:
    blocks = function.blocks
    preds = function.compute_predecessors()
    entry = function.entry
    dom: dict[ir.Block, set[ir.Block]] = {
        block: set(blocks) for block in blocks}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is entry:
                continue
            pred_doms = [dom[p] for p in preds[block]]
            new = set.intersection(*pred_doms) | {block} if pred_doms \
                else {block}
            if new != dom[block]:
                dom[block] = new
                changed = True
    return dom


def _natural_loop(back_from: ir.Block, header: ir.Block,
                  preds) -> set[ir.Block]:
    body = {header, back_from}
    worklist = [back_from]
    while worklist:
        block = worklist.pop()
        if block is header:
            continue
        for pred in preds[block]:
            if pred not in body:
                body.add(pred)
                worklist.append(pred)
    return body


def run(function: ir.Function) -> bool:
    preds = function.compute_predecessors()
    dom = _dominators(function)
    changed = False

    for block in list(function.blocks):
        for successor in block.successors():
            if successor in dom.get(block, set()):
                header = successor
                body = _natural_loop(block, header, preds)
                if _try_delete(function, header, body):
                    changed = True
                    return True  # CFG changed; callers re-run the pipeline
    return changed


def _try_delete(function: ir.Function, header: ir.Block,
                body: set[ir.Block]) -> bool:
    # Find the unique exit target (a successor of a body block outside the
    # body).  Bail out on multiple exits.
    exits = set()
    for block in body:
        for successor in block.successors():
            if successor not in body:
                exits.add(successor)
    if len(exits) != 1:
        return False
    exit_block = exits.pop()

    # The body must be side-effect-free.
    defined: set[int] = set()
    for block in body:
        for instruction in block.instructions:
            if isinstance(instruction, (inst.Store, inst.Call)):
                return False
            if isinstance(instruction, inst.Unreachable):
                return False
            if instruction.result is not None:
                defined.add(id(instruction.result))

    # No value defined inside may be used outside.
    for block in function.blocks:
        if block in body:
            continue
        for instruction in block.instructions:
            for operand in instruction.operands():
                if isinstance(operand, ir.VirtualRegister) \
                        and id(operand) in defined:
                    return False
    # Phis in the exit block must not read loop-defined values (checked
    # above) — but they may reference body blocks as predecessors.
    for phi in exit_block.phis():
        phi.incoming = [(pred, value) for pred, value in phi.incoming
                        if pred not in body or pred is header]

    # Redirect every edge *into* the header from outside the loop straight
    # to the exit... simpler and sufficient for our -O0-shaped CFGs:
    # replace the header's terminator with a branch to the exit.
    terminator = header.terminator
    header.instructions = [inst.Br(exit_block, loc=terminator.loc)]
    return True
