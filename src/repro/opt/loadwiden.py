"""Load widening (§2.3, P2 — the ASan false-positive story).

Real compilers merge several adjacent narrow loads into one wide load:
correct at the system level (alignment guarantees the wide access cannot
fault) but *out of bounds in C* when the object ends mid-word.  The paper
recounts the Firefox false positive this caused in ASan, which was fixed
by disabling load widening under ASan.

This pass reproduces the transform: three consecutive ``i8`` loads from
constant offsets ``c, c+1, c+2`` (with ``c`` 4-aligned, no intervening
side effects) become one ``i32`` load plus byte extractions — reading the
byte at ``c+3`` that the program never asked for.
"""

from __future__ import annotations

from .. import ir
from ..ir import instructions as inst
from ..ir import types as irt


def run(function: ir.Function) -> bool:
    changed = False
    counter = [0]

    def fresh(type_: irt.IRType) -> ir.VirtualRegister:
        counter[0] += 1
        return ir.VirtualRegister(f"widen.{counter[0]}", type_)

    for block in function.blocks:
        changed |= _widen_block(function, block, fresh)
    return changed


def _widen_block(function: ir.Function, block: ir.Block, fresh) -> bool:
    # Split the block at side effects; widen within each segment.
    loads: dict[int, list[tuple[int, inst.Load, int]]] = {}
    gep_info: dict[int, tuple[int, int]] = {}  # reg id -> (base id, off)

    def base_and_offset(pointer: ir.Value):
        if id(pointer) in gep_info:
            return gep_info[id(pointer)]
        return None

    candidates: list[tuple[int, inst.Load, int, int]] = []
    for position, instruction in enumerate(block.instructions):
        if isinstance(instruction, (inst.Store, inst.Call)):
            loads.clear()
            continue
        if isinstance(instruction, inst.Gep):
            indices = instruction.indices
            if all(isinstance(index, ir.ConstInt) for index in indices):
                origin = base_and_offset(instruction.base)
                if origin is not None:
                    base_id, base_off = origin
                else:
                    base_id, base_off = id(instruction.base), 0
                offset, _final = inst.gep_offset(
                    instruction.base.type.pointee,
                    [index.signed_value for index in indices])
                gep_info[id(instruction.result)] = (base_id,
                                                    base_off + offset)
            continue
        if isinstance(instruction, inst.Load) \
                and instruction.result.type == irt.I8:
            origin = base_and_offset(instruction.pointer)
            if origin is None:
                continue
            base_id, offset = origin
            loads.setdefault(base_id, []).append(
                (offset, instruction, position))
            run_ = _find_run(loads[base_id])
            if run_ is not None:
                _apply_widening(function, block, run_, fresh)
                return True  # block changed; caller may re-run
    return False


def _find_run(entries):
    """Three loads at consecutive offsets starting on a 4-byte boundary."""
    by_offset = {offset: (load, position)
                 for offset, load, position in entries}
    for offset in by_offset:
        if offset % 4 == 0 and offset + 1 in by_offset \
                and offset + 2 in by_offset:
            return [(offset + k, *by_offset[offset + k])
                    for k in range(3)]
    return None


def _apply_widening(function: ir.Function, block: ir.Block, run_,
                    fresh) -> None:
    base_offset, first_load, first_position = run_[0]
    insert_at = min(position for _, _, position in run_)

    # The wide pointer: reuse the first load's pointer, bitcast to i32*.
    wide_ptr = fresh(irt.ptr(irt.I32))
    cast = inst.Cast(wide_ptr, "bitcast", first_load.pointer,
                     loc=first_load.loc)
    wide = fresh(irt.I32)
    wide_load = inst.Load(wide, wide_ptr, loc=first_load.loc)

    replacements: list[inst.Instruction] = [cast, wide_load]
    for k, (offset, load, _position) in enumerate(run_):
        if k == 0:
            extracted = fresh(irt.I32)
            replacements.append(inst.BinOp(extracted, "and", wide,
                                           ir.ConstInt(irt.I32, 0xFF),
                                           loc=load.loc))
        else:
            shifted = fresh(irt.I32)
            replacements.append(inst.BinOp(
                shifted, "lshr", wide, ir.ConstInt(irt.I32, 8 * k),
                loc=load.loc))
            extracted = shifted
        narrow = fresh(irt.I8)
        replacements.append(inst.Cast(narrow, "trunc", extracted,
                                      loc=load.loc))
        _replace_uses(function, load.result, narrow)

    dead = {id(load) for _, load, _ in run_}
    new_instructions: list[inst.Instruction] = []
    for position, instruction in enumerate(block.instructions):
        if position == insert_at:
            new_instructions.extend(replacements)
        if id(instruction) in dead:
            continue
        new_instructions.append(instruction)
    block.instructions = new_instructions


def _replace_uses(function: ir.Function, old, new) -> None:
    for instruction in function.instructions():
        instruction.replace_operand(old, new)
