"""CFG cleanup: drop unreachable blocks, thread trivial branches, merge
straight-line block chains."""

from __future__ import annotations

from .. import ir
from ..ir import instructions as inst


def run(function: ir.Function) -> bool:
    changed = False
    changed |= _remove_unreachable(function)
    changed |= _thread_jumps(function)
    changed |= _remove_unreachable(function)
    changed |= _merge_chains(function)
    return changed


def _remove_unreachable(function: ir.Function) -> bool:
    reachable: set[ir.Block] = set()
    worklist = [function.entry]
    while worklist:
        block = worklist.pop()
        if block in reachable:
            continue
        reachable.add(block)
        worklist.extend(block.successors())
    dead = [block for block in function.blocks if block not in reachable]
    if not dead:
        return False
    dead_set = set(dead)
    for block in dead:
        function.remove_block(block)
    # Remove phi incoming entries from deleted predecessors.
    for block in function.blocks:
        for phi in block.phis():
            phi.incoming = [(pred, value) for pred, value in phi.incoming
                            if pred not in dead_set]
    return True


def _thread_jumps(function: ir.Function) -> bool:
    """Fold conditional branches with constant conditions or equal
    targets."""
    changed = False
    for block in function.blocks:
        terminator = block.terminator
        if isinstance(terminator, inst.CondBr):
            condition = terminator.condition
            if isinstance(condition, ir.ConstInt):
                target = terminator.if_true if condition.value \
                    else terminator.if_false
                dropped = terminator.if_false if condition.value \
                    else terminator.if_true
                block.instructions[-1] = inst.Br(target,
                                                 loc=terminator.loc)
                _remove_phi_edge(dropped, block, keep=target is dropped)
                changed = True
            elif terminator.if_true is terminator.if_false:
                block.instructions[-1] = inst.Br(terminator.if_true,
                                                 loc=terminator.loc)
                changed = True
    return changed


def _remove_phi_edge(target: ir.Block, pred: ir.Block, keep: bool) -> None:
    if keep:
        return
    for phi in target.phis():
        phi.incoming = [(block, value) for block, value in phi.incoming
                        if block is not pred]


def _merge_chains(function: ir.Function) -> bool:
    """Merge a block into its unique successor when that successor has no
    other predecessors and no phis."""
    changed = True
    any_change = False
    while changed:
        changed = False
        preds = function.compute_predecessors()
        for block in list(function.blocks):
            terminator = block.terminator
            if not isinstance(terminator, inst.Br):
                continue
            target = terminator.target
            if target is block or target is function.entry:
                continue
            if len(preds.get(target, [])) != 1 or target.phis():
                continue
            # Splice target's instructions into block.
            block.instructions.pop()
            block.instructions.extend(target.instructions)
            # Phis in target's successors must see the merged block.
            for succ in target.successors():
                for phi in succ.phis():
                    phi.incoming = [
                        (block if pred is target else pred, value)
                        for pred, value in phi.incoming
                    ]
            function.remove_block(target)
            changed = True
            any_change = True
            break
    return any_change
