"""Promote scalar allocas to SSA registers (LLVM's mem2reg).

Uses the maximal-phi construction: insert a phi for every promoted
variable in every join block, rename loads/stores, then iteratively delete
trivial phis.  Simple, and correct on arbitrary CFGs.
"""

from __future__ import annotations

from .. import ir
from ..ir import instructions as inst
from ..ir import types as irt


def _promotable(function: ir.Function) -> list[inst.Alloca]:
    """Allocas of scalar type whose address is only used by direct
    loads/stores (never escapes)."""
    candidates: dict[ir.VirtualRegister, inst.Alloca] = {}
    for instruction in function.instructions():
        if isinstance(instruction, inst.Alloca) and isinstance(
                instruction.allocated_type,
                (irt.IntType, irt.FloatType, irt.PointerType)):
            candidates[instruction.result] = instruction
    for instruction in function.instructions():
        if isinstance(instruction, inst.Load):
            continue
        if isinstance(instruction, inst.Store):
            # The *value* operand escaping disqualifies the alloca.
            if instruction.value in candidates:
                candidates.pop(instruction.value, None)
            continue
        for operand in instruction.operands():
            if operand in candidates:
                candidates.pop(operand, None)
    return list(candidates.values())


def run(function: ir.Function) -> bool:
    allocas = _promotable(function)
    if not allocas:
        return False
    variables = {alloca.result: i for i, alloca in enumerate(allocas)}
    types = [alloca.allocated_type for alloca in allocas]
    preds = function.compute_predecessors()

    # 1. Insert a (maximal) phi per variable in every block with >1 preds
    #    or any preds (except entry with 0).
    counter = [0]

    def fresh(var_index: int) -> ir.VirtualRegister:
        counter[0] += 1
        return ir.VirtualRegister(f"m2r.{var_index}.{counter[0]}",
                                  types[var_index])

    phis: dict[ir.Block, list[inst.Phi | None]] = {}
    for block in function.blocks:
        if block is function.entry or not preds[block]:
            continue
        block_phis: list[inst.Phi | None] = []
        row = []
        for var_index in range(len(allocas)):
            phi = inst.Phi(fresh(var_index), [])
            row.append(phi)
            block_phis.append(phi)
        phis[block] = block_phis
        block.instructions[0:0] = row

    # 2. Rename: walk each block; incoming value is the block's phi (or
    #    undef in the entry).
    out_values: dict[ir.Block, list[ir.Value]] = {}
    for block in function.blocks:
        if block in phis:
            current: list[ir.Value] = [phi.result for phi in phis[block]]
        else:
            current = [ir.ConstUndef(t) for t in types]
        new_instructions = []
        for instruction in block.instructions:
            if isinstance(instruction, inst.Alloca) \
                    and instruction.result in variables:
                continue
            if isinstance(instruction, inst.Load) \
                    and instruction.pointer in variables:
                index = variables[instruction.pointer]
                _replace_uses(function, instruction.result, current[index])
                continue
            if isinstance(instruction, inst.Store) \
                    and instruction.pointer in variables:
                current[variables[instruction.pointer]] = instruction.value
                continue
            new_instructions.append(instruction)
        block.instructions = new_instructions
        out_values[block] = current

    # Load replacement may have happened before the defining store was
    # seen (cross-block flow); fix up with a second pass using phis.
    for block, block_phis in phis.items():
        for var_index, phi in enumerate(block_phis):
            phi.incoming = [
                (pred, out_values[pred][var_index]) for pred in preds[block]
            ]

    _remove_trivial_phis(function)
    return True


def _replace_uses(function: ir.Function, old: ir.VirtualRegister,
                  new: ir.Value) -> None:
    for instruction in function.instructions():
        instruction.replace_operand(old, new)


def _remove_trivial_phis(function: ir.Function) -> None:
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for phi in list(block.phis()):
                operands = {id(value) for _, value in phi.incoming
                            if value is not phi.result}
                distinct = [value for _, value in phi.incoming
                            if value is not phi.result]
                unique: list = []
                for value in distinct:
                    if not any(_same_value(value, seen) for seen in unique):
                        unique.append(value)
                if len(unique) == 1:
                    _replace_uses(function, phi.result, unique[0])
                    block.instructions.remove(phi)
                    changed = True
                elif not unique:
                    block.instructions.remove(phi)
                    changed = True


def _same_value(a: ir.Value, b: ir.Value) -> bool:
    if a is b:
        return True
    if isinstance(a, ir.ConstInt) and isinstance(b, ir.ConstInt):
        return a.type == b.type and a.value == b.value
    if isinstance(a, ir.ConstUndef) and isinstance(b, ir.ConstUndef):
        return a.type == b.type
    return False
