"""Dominator-based global value numbering for the *safe* tier.

Unlike the UB-exploiting study pipeline (``run_o3``), every transform
here must preserve managed semantics exactly — including which dynamic
checks execute and in what order.  The rules:

* A pure computation (int/float arithmetic, integer compares, selects,
  casts between arithmetic types, pointer arithmetic) may be replaced
  by a *dominating* identical computation: the dominator executed
  first with the same operands, so the replacement produces the same
  value — and for the few that can stop the program (division by zero,
  GEP on a non-pointer), the dominator already stopped it.
* A checked memory access is never deleted outright — that would
  delete its detection.  The one exception is a *redundant* load: a
  load whose address and type match an earlier access in the same
  block with no intervening store or call.  No call means no ``free``
  (temporal state cannot change), and the earlier access already
  performed the identical bounds/lifetime check, so the later check
  is a proven no-op and forwarding the value is detection-preserving.
* Pointer *comparisons* and ``ptrtoint``/``inttoptr``/``bitcast`` are
  left alone: they interact with the virtual address space (lazy
  address assignment, untyped-memory materialization), which makes
  them observable effects, not pure values.

This is the Checked C framing (arxiv 2201.13394): a check disappears
only when a static fact re-establishes exactly what it verified.
"""

from __future__ import annotations

from .. import ir
from ..analysis.cfg import ControlFlowGraph
from ..ir import instructions as inst
from ..ir import types as irt

_MISSING = object()

# Casts whose nodes are pure arithmetic on the value (no address-space
# or object-model interaction).
_PURE_CASTS = frozenset([
    "trunc", "zext", "sext", "fpext", "fptrunc",
    "sitofp", "uitofp", "fptosi", "fptoui",
])


def run(function: ir.Function) -> bool:
    if not function.is_definition:
        return False
    cfg = ControlFlowGraph(function)
    children: dict[ir.Block, list[ir.Block]] = {}
    for block in cfg.reverse_postorder:
        parent = cfg.idom.get(block)
        if parent is not None and parent is not block:
            children.setdefault(parent, []).append(block)

    numberer = _Numberer()
    expressions: dict[tuple, ir.Value] = {}
    replacements: dict[int, ir.Value] = {}
    removed: set[int] = set()

    stack: list[tuple[str, object]] = [("enter", cfg.entry)]
    while stack:
        action, payload = stack.pop()
        if action == "exit":
            for key, previous in payload:
                if previous is _MISSING:
                    del expressions[key]
                else:
                    expressions[key] = previous
            continue
        block = payload
        undo: list[tuple[tuple, object]] = []
        _process_block(block, numberer, expressions, undo,
                       replacements, removed)
        stack.append(("exit", undo))
        for child in children.get(block, []):
            stack.append(("enter", child))

    if not removed:
        return False
    for block in function.blocks:
        block.instructions = [
            instruction for instruction in block.instructions
            if id(instruction) not in removed]
        for instruction in block.instructions:
            for operand in list(instruction.operands()):
                replacement = replacements.get(id(operand))
                if replacement is not None:
                    instruction.replace_operand(operand, replacement)
    return True


def _process_block(block, numberer, expressions, undo,
                   replacements, removed) -> None:
    # Block-local available-load table: (ptr vn, type key) -> value.
    # Cleared at block entry and on every store/call barrier, so its
    # facts never cross a point where memory (or temporal state) could
    # change.  See the module docstring for why forwarding is
    # detection-preserving.
    memory: dict[tuple, ir.Value] = {}
    for instruction in block.instructions:
        if isinstance(instruction, inst.Load):
            key = (numberer.of(instruction.pointer, replacements),
                   str(instruction.result.type))
            available = memory.get(key)
            if available is not None:
                replacements[id(instruction.result)] = available
                numberer.alias(instruction.result, available, replacements)
                removed.add(id(instruction))
            else:
                memory[key] = instruction.result
            continue
        if isinstance(instruction, inst.Store):
            memory.clear()
            memory[(numberer.of(instruction.pointer, replacements),
                    str(instruction.value.type))] = instruction.value
            continue
        if isinstance(instruction, inst.Call):
            memory.clear()
            continue
        key = _expression_key(instruction, numberer, replacements)
        if key is None:
            continue
        available = expressions.get(key, _MISSING)
        if available is not _MISSING:
            replacements[id(instruction.result)] = available
            numberer.alias(instruction.result, available, replacements)
            removed.add(id(instruction))
        else:
            undo.append((key, _MISSING))
            expressions[key] = instruction.result


def _expression_key(instruction, numberer, replacements):
    """A hashable identity for pure computations, or None for anything
    GVN must not touch."""
    if isinstance(instruction, inst.BinOp):
        vns = (numberer.of(instruction.lhs, replacements),
               numberer.of(instruction.rhs, replacements))
        if instruction.op in ("add", "mul", "and", "or", "xor",
                              "fadd", "fmul"):
            vns = tuple(sorted(vns))
        return ("binop", instruction.op, str(instruction.lhs.type), *vns)
    if isinstance(instruction, inst.ICmp):
        if isinstance(instruction.lhs.type, irt.PointerType):
            return None  # address-space interaction: not a pure value
        return ("icmp", instruction.predicate, str(instruction.lhs.type),
                numberer.of(instruction.lhs, replacements),
                numberer.of(instruction.rhs, replacements))
    if isinstance(instruction, inst.FCmp):
        return ("fcmp", instruction.predicate, str(instruction.lhs.type),
                numberer.of(instruction.lhs, replacements),
                numberer.of(instruction.rhs, replacements))
    if isinstance(instruction, inst.Cast):
        if instruction.kind not in _PURE_CASTS:
            return None
        return ("cast", instruction.kind, str(instruction.result.type),
                str(instruction.value.type),
                numberer.of(instruction.value, replacements))
    if isinstance(instruction, inst.Select):
        return ("select",
                numberer.of(instruction.condition, replacements),
                numberer.of(instruction.if_true, replacements),
                numberer.of(instruction.if_false, replacements))
    if isinstance(instruction, inst.Gep):
        return ("gep", str(instruction.base.type),
                numberer.of(instruction.base, replacements),
                *[numberer.of(index, replacements)
                  for index in instruction.indices])
    return None


class _Numberer:
    """Assigns stable value numbers: constants by content, registers by
    identity (aliased to their replacement when GVN removed their
    definition)."""

    def __init__(self):
        self._next = 0
        self._registers: dict[int, int] = {}
        self._constants: dict[tuple, int] = {}

    def _fresh(self) -> int:
        self._next += 1
        return self._next

    def of(self, value: ir.Value, replacements: dict) -> int:
        if isinstance(value, ir.VirtualRegister):
            replacement = replacements.get(id(value))
            if replacement is not None and replacement is not value:
                return self.of(replacement, replacements)
            number = self._registers.get(id(value))
            if number is None:
                number = self._fresh()
                self._registers[id(value)] = number
            return number
        key = _constant_key(value)
        if key is None:
            key = ("id", id(value))
        number = self._constants.get(key)
        if number is None:
            number = self._fresh()
            self._constants[key] = number
        return number

    def alias(self, register: ir.VirtualRegister, value: ir.Value,
              replacements: dict) -> None:
        self._registers[id(register)] = self.of(value, replacements)


def _constant_key(value: ir.Value):
    if isinstance(value, ir.ConstInt):
        return ("int", str(value.type), value.value)
    if isinstance(value, ir.ConstFloat):
        # repr distinguishes 0.0 from -0.0; equal payloads fold.
        return ("float", str(value.type), repr(value.value))
    if isinstance(value, ir.ConstNull):
        return ("null", str(value.type))
    if isinstance(value, ir.ConstUndef):
        return ("undef", str(value.type))
    if isinstance(value, ir.ConstZero):
        return ("zero", str(value.type))
    if isinstance(value, (ir.GlobalVariable, ir.Function)):
        return ("global", value.name)
    return None
