"""Backend constant folds that happen *even at -O0* (§4.1 case 3).

The paper found that Clang -O0 still optimized away a global-array
out-of-bounds read (Figure 13): the zero-initialized global was never
stored to, so the backend folded the load to a constant — deleting the bug
before any instrumentation could see it.  This pass models exactly that
transform: a load through a constant-offset pointer into a global that is
(a) declared ``const`` or (b) zero-initialized and never stored to
anywhere in the module is replaced by its constant value; constant-offset
loads *past the end* of such a global fold to 0 (the undef the backend
materializes).
"""

from __future__ import annotations

from .. import ir
from ..ir import instructions as inst
from ..ir import types as irt


def run_module(module: ir.Module) -> bool:
    immutable = _immutable_globals(module)
    changed = False
    for function in module.functions.values():
        if function.is_definition:
            changed |= _fold_loads(function, immutable, module)
    return changed


def _immutable_globals(module: ir.Module) -> set[str]:
    """Globals that are provably never written: ``const`` or
    zero-initialized with no store to any pointer derived from them."""
    candidates = {
        name for name, gvar in module.globals.items()
        if gvar.is_constant or gvar.zero_initialized
        or isinstance(gvar.initializer, (ir.ConstZero,))
    }
    if not candidates:
        return set()
    for function in module.functions.values():
        # Registers derived from a global (via gep/bitcast chains).
        derived: dict[int, str] = {}
        changed = True
        while changed:
            changed = False
            for instruction in function.instructions():
                if isinstance(instruction, inst.Gep):
                    source = instruction.base
                elif isinstance(instruction, inst.Cast) \
                        and instruction.kind == "bitcast":
                    source = instruction.value
                else:
                    continue
                name = _global_base(source) or derived.get(id(source))
                if name is not None \
                        and id(instruction.result) not in derived:
                    derived[id(instruction.result)] = name
                    changed = True

        def origin(value: ir.Value) -> str | None:
            return _global_base(value) or derived.get(id(value))

        for instruction in function.instructions():
            if isinstance(instruction, inst.Store):
                base = origin(instruction.pointer)
                if base is not None:
                    candidates.discard(base)
                base = origin(instruction.value)
                if base is not None:
                    candidates.discard(base)  # address escapes via store
            elif isinstance(instruction, inst.Call):
                for operand in instruction.args:
                    base = origin(operand)
                    if base is not None:
                        candidates.discard(base)
            elif isinstance(instruction, (inst.Select, inst.Phi)):
                for operand in instruction.operands():
                    base = origin(operand)
                    if base is not None:
                        candidates.discard(base)
            elif isinstance(instruction, inst.Ret):
                for operand in instruction.operands():
                    base = origin(operand)
                    if base is not None:
                        candidates.discard(base)
    return candidates


def _global_base(value: ir.Value) -> str | None:
    if isinstance(value, ir.GlobalVariable):
        return value.name
    if isinstance(value, ir.ConstGEP) and isinstance(value.base,
                                                     ir.GlobalVariable):
        return value.base.name
    return None


def _fold_loads(function: ir.Function, immutable: set[str],
                module: ir.Module) -> bool:
    # Track registers that are global + constant byte offset.
    derived: dict[int, tuple[str, int]] = {}
    changed = False
    for block in function.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, inst.Gep):
                base = instruction.base
                origin = None
                if isinstance(base, ir.GlobalVariable):
                    origin = (base.name, 0)
                elif isinstance(base, ir.ConstGEP) and isinstance(
                        base.base, ir.GlobalVariable):
                    origin = (base.base.name, base.byte_offset)
                elif id(base) in derived:
                    origin = derived[id(base)]
                if origin is None:
                    continue
                offset = 0
                constant = True
                current = instruction.base.type.pointee
                index_values = []
                for index in instruction.indices:
                    if isinstance(index, ir.ConstInt):
                        index_values.append(index.signed_value)
                    else:
                        constant = False
                        break
                if not constant:
                    continue
                extra, _final = inst.gep_offset(current, index_values)
                derived[id(instruction.result)] = (origin[0],
                                                   origin[1] + extra)
            elif isinstance(instruction, inst.Cast) \
                    and instruction.kind == "bitcast" \
                    and id(instruction.value) in derived:
                derived[id(instruction.result)] = \
                    derived[id(instruction.value)]

    if not derived:
        return False

    for block in function.blocks:
        for position, instruction in enumerate(list(block.instructions)):
            if not isinstance(instruction, inst.Load):
                continue
            pointer = instruction.pointer
            origin = None
            if isinstance(pointer, ir.ConstGEP) and isinstance(
                    pointer.base, ir.GlobalVariable):
                origin = (pointer.base.name, pointer.byte_offset)
            elif isinstance(pointer, ir.GlobalVariable):
                origin = (pointer.name, 0)
            elif id(pointer) in derived:
                origin = derived[id(pointer)]
            if origin is None or origin[0] not in immutable:
                continue
            gvar = module.globals.get(origin[0])
            if gvar is None:
                continue
            value_type = instruction.result.type
            if not isinstance(value_type, (irt.IntType, irt.FloatType)):
                continue
            folded = _read_initializer(gvar, origin[1], value_type)
            if folded is None:
                continue
            _replace_uses(function, instruction.result, folded)
            block.instructions.remove(instruction)
            changed = True
    return changed


def _read_initializer(gvar: ir.GlobalVariable, offset: int, value_type):
    """Value of a constant global at a byte offset; out-of-bounds offsets
    fold to 0/undef, exactly like the backend's behaviour in Figure 13."""
    size = gvar.value_type.size
    if offset < 0 or offset + value_type.size > size:
        # The access is UB; the backend materializes an arbitrary value.
        if isinstance(value_type, irt.FloatType):
            return ir.ConstFloat(value_type, 0.0)
        return ir.ConstInt(value_type, 0)
    if gvar.zero_initialized or gvar.initializer is None \
            or isinstance(gvar.initializer, ir.ConstZero):
        if isinstance(value_type, irt.FloatType):
            return ir.ConstFloat(value_type, 0.0)
        return ir.ConstInt(value_type, 0)
    data = _initializer_bytes(gvar.initializer, size)
    if data is None:
        return None
    chunk = int.from_bytes(data[offset:offset + value_type.size], "little")
    if isinstance(value_type, irt.FloatType):
        from ..core.bits import bits_to_float
        return ir.ConstFloat(value_type,
                             bits_to_float(chunk, value_type.size))
    return ir.ConstInt(value_type, chunk)


def _initializer_bytes(const: ir.Constant, size: int) -> bytes | None:
    out = bytearray(size)

    def fill(value: ir.Constant, offset: int) -> bool:
        if isinstance(value, ir.ConstString):
            out[offset:offset + len(value.data)] = value.data
            return True
        if isinstance(value, ir.ConstArray):
            elem = value.type.elem.size
            return all(fill(e, offset + i * elem)
                       for i, e in enumerate(value.elements))
        if isinstance(value, ir.ConstStruct):
            return all(fill(e, offset + f.offset)
                       for f, e in zip(value.type.fields, value.elements))
        if isinstance(value, ir.ConstInt):
            out[offset:offset + value.type.size] = \
                value.value.to_bytes(value.type.size, "little")
            return True
        if isinstance(value, ir.ConstFloat):
            from ..core.bits import float_to_bits
            bits = float_to_bits(value.value, value.type.size)
            out[offset:offset + value.type.size] = \
                bits.to_bytes(value.type.size, "little")
            return True
        if isinstance(value, (ir.ConstZero, ir.ConstUndef)):
            return True
        return False  # pointers etc.: give up

    if fill(const, 0):
        return bytes(out)
    return None


def _replace_uses(function, old, new) -> None:
    for instruction in function.instructions():
        instruction.replace_operand(old, new)
