"""Constant folding for binops, comparisons, casts and selects."""

from __future__ import annotations

from .. import ir
from ..core.bits import round_to_f32, to_signed
from ..ir import instructions as inst
from ..ir import types as irt


def run(function: ir.Function) -> bool:
    changed = False
    for block in function.blocks:
        for instruction in list(block.instructions):
            folded = _fold(instruction)
            if folded is not None:
                _replace_uses(function, instruction.result, folded)
                block.instructions.remove(instruction)
                changed = True
    return changed


def _replace_uses(function, old, new) -> None:
    for instruction in function.instructions():
        instruction.replace_operand(old, new)


def _fold(i: inst.Instruction):
    if isinstance(i, inst.BinOp):
        return _fold_binop(i)
    if isinstance(i, inst.ICmp):
        return _fold_icmp(i)
    if isinstance(i, inst.FCmp):
        return _fold_fcmp(i)
    if isinstance(i, inst.Cast):
        return _fold_cast(i)
    if isinstance(i, inst.Select):
        if isinstance(i.condition, ir.ConstInt):
            return i.if_true if i.condition.value else i.if_false
    return None


def _ints(i) -> tuple[int, int] | None:
    if isinstance(i.lhs, ir.ConstInt) and isinstance(i.rhs, ir.ConstInt):
        return i.lhs.value, i.rhs.value
    return None


def _floats(i) -> tuple[float, float] | None:
    if isinstance(i.lhs, ir.ConstFloat) and isinstance(i.rhs,
                                                       ir.ConstFloat):
        return i.lhs.value, i.rhs.value
    return None


def _fold_binop(i: inst.BinOp):
    vtype = i.lhs.type
    if i.op in inst.FLOAT_BINOPS:
        pair = _floats(i)
        if pair is None:
            return None
        a, b = pair
        try:
            value = {"fadd": a + b, "fsub": a - b, "fmul": a * b,
                     "fdiv": a / b if b else float("nan"),
                     "frem": a % b if b else float("nan")}[i.op]
        except (ZeroDivisionError, ValueError):
            return None
        if isinstance(vtype, irt.FloatType) and vtype.bits == 32:
            value = round_to_f32(value)
        return ir.ConstFloat(vtype, value)
    pair = _ints(i)
    if pair is None:
        return _fold_identities(i)
    a, b = pair
    bits = vtype.bits
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    op = i.op
    if op in ("sdiv", "udiv", "srem", "urem") and b == 0:
        return None  # keep the trap
    table = {
        "add": a + b, "sub": a - b, "mul": a * b,
        "and": a & b, "or": a | b, "xor": a ^ b,
        "shl": a << (b % bits), "lshr": a >> (b % bits),
        "ashr": sa >> (b % bits),
        "udiv": a // b if b else 0, "urem": a % b if b else 0,
    }
    if op in ("sdiv", "srem"):
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        table["sdiv"] = quotient
        table["srem"] = sa - quotient * sb
    return ir.ConstInt(vtype, table[op])


def _fold_identities(i: inst.BinOp):
    """x+0, x*1, x*0, x-0, x&0 style identities."""
    lhs, rhs = i.lhs, i.rhs
    if isinstance(rhs, ir.ConstInt):
        value = rhs.value
        if i.op in ("add", "sub", "or", "xor", "shl", "lshr",
                    "ashr") and value == 0:
            return lhs
        if i.op == "mul" and value == 1:
            return lhs
        if i.op in ("mul", "and") and value == 0:
            return ir.ConstInt(i.lhs.type, 0)
    if isinstance(lhs, ir.ConstInt):
        value = lhs.value
        if i.op in ("add", "or", "xor") and value == 0:
            return rhs
        if i.op == "mul" and value == 1:
            return rhs
        if i.op in ("mul", "and") and value == 0:
            return ir.ConstInt(i.lhs.type, 0)
    return None


def _fold_icmp(i: inst.ICmp):
    if not (isinstance(i.lhs, ir.ConstInt)
            and isinstance(i.rhs, ir.ConstInt)):
        if isinstance(i.lhs, ir.ConstNull) and isinstance(i.rhs,
                                                          ir.ConstNull):
            result = i.predicate in ("eq", "ule", "uge", "sle", "sge")
            return ir.ConstInt(irt.I1, 1 if result else 0)
        return None
    bits = i.lhs.type.bits
    a, b = i.lhs.value, i.rhs.value
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    table = {
        "eq": a == b, "ne": a != b,
        "ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b,
        "slt": sa < sb, "sle": sa <= sb, "sgt": sa > sb, "sge": sa >= sb,
    }
    return ir.ConstInt(irt.I1, 1 if table[i.predicate] else 0)


def _fold_fcmp(i: inst.FCmp):
    pair = _floats(i)
    if pair is None:
        return None
    a, b = pair
    unordered = a != a or b != b
    if i.predicate == "une":
        result = unordered or a != b
    elif unordered:
        result = False
    else:
        result = {"oeq": a == b, "one": a != b, "olt": a < b,
                  "ole": a <= b, "ogt": a > b, "oge": a >= b}[i.predicate]
    return ir.ConstInt(irt.I1, 1 if result else 0)


def _fold_cast(i: inst.Cast):
    value = i.value
    dst = i.result.type
    if isinstance(value, ir.ConstInt):
        bits = value.type.bits
        if i.kind == "trunc":
            return ir.ConstInt(dst, value.value)
        if i.kind == "zext":
            return ir.ConstInt(dst, value.value)
        if i.kind == "sext":
            return ir.ConstInt(dst, to_signed(value.value, bits))
        if i.kind in ("sitofp", "uitofp"):
            raw = to_signed(value.value, bits) if i.kind == "sitofp" \
                else value.value
            return ir.ConstFloat(dst, float(raw))
        if i.kind == "inttoptr" and value.value == 0:
            return ir.ConstNull(dst)
    if isinstance(value, ir.ConstFloat):
        if i.kind in ("fptosi", "fptoui"):
            try:
                return ir.ConstInt(dst, int(value.value))
            except (OverflowError, ValueError):
                return None
        if i.kind in ("fpext", "fptrunc"):
            return ir.ConstFloat(dst, value.value)
    if isinstance(value, ir.ConstNull):
        if i.kind == "bitcast":
            return ir.ConstNull(dst)
        if i.kind == "ptrtoint":
            return ir.ConstInt(dst, 0)
    if i.kind == "bitcast" and isinstance(value, (ir.GlobalVariable,)):
        return None  # keep typed global references intact
    return None
