"""The UB-exploiting optimizer used by the native baselines (P2)."""

from . import (backendfold, constfold, dce, deadstore, elide, loadwiden,
               loopdelete, mem2reg, nullcheck, pipeline, simplifycfg)

__all__ = ["backendfold", "constfold", "dce", "deadstore", "elide",
           "loadwiden", "loopdelete", "mem2reg", "nullcheck", "pipeline",
           "simplifycfg"]
