"""Dead code elimination.

Removes instructions whose results are unused and that have no side
effects.  Note that *loads are side-effect-free here*: this is exactly the
undefined-behaviour exploitation of P2 — a dead out-of-bounds load is
removed, and with it the bug that existed at the source level.
"""

from __future__ import annotations

from .. import ir
from ..ir import instructions as inst

_SIDE_EFFECT_FREE = (inst.BinOp, inst.ICmp, inst.FCmp, inst.Cast,
                     inst.Select, inst.Gep, inst.Load, inst.Phi,
                     inst.Alloca)


def run(function: ir.Function) -> bool:
    changed = False
    while True:
        used: set[int] = set()
        for instruction in function.instructions():
            for operand in instruction.operands():
                if isinstance(operand, ir.VirtualRegister):
                    used.add(id(operand))
        removed = False
        for block in function.blocks:
            kept = []
            for instruction in block.instructions:
                if isinstance(instruction, _SIDE_EFFECT_FREE) \
                        and instruction.result is not None \
                        and id(instruction.result) not in used:
                    removed = True
                    changed = True
                    continue
                kept.append(instruction)
            block.instructions = kept
        if not removed:
            return changed
