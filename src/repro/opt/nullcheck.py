"""Redundant NULL-check elimination.

Compilers remove ``p != NULL`` checks when ``p`` provably cannot be NULL —
including when the "proof" is that ``p`` was already dereferenced (UB if
NULL), which is how real compilers delete programmers' too-late sanity
checks (§2.3, P2).  We implement both justifications:

* pointers produced by ``alloca`` or referring to globals are never NULL;
* a pointer that was loaded from or stored through earlier in the same
  block is assumed non-NULL afterwards.
"""

from __future__ import annotations

from .. import ir
from ..ir import instructions as inst
from ..ir import types as irt


def run(function: ir.Function) -> bool:
    changed = False
    never_null: set[int] = set()
    for instruction in function.instructions():
        if isinstance(instruction, inst.Alloca):
            never_null.add(id(instruction.result))
        elif isinstance(instruction, inst.Gep):
            base = instruction.base
            if isinstance(base, (ir.GlobalVariable, ir.ConstGEP)) \
                    or id(base) in never_null:
                never_null.add(id(instruction.result))
        elif isinstance(instruction, inst.Cast) \
                and instruction.kind == "bitcast" \
                and id(instruction.value) in never_null:
            never_null.add(id(instruction.result))

    for block in function.blocks:
        dereferenced: set[int] = set()
        for instruction in list(block.instructions):
            if isinstance(instruction, inst.Load):
                dereferenced.add(id(instruction.pointer))
            elif isinstance(instruction, inst.Store):
                dereferenced.add(id(instruction.pointer))
            elif isinstance(instruction, inst.ICmp) \
                    and isinstance(instruction.lhs.type, irt.PointerType) \
                    and instruction.predicate in ("eq", "ne"):
                folded = _fold_check(instruction, never_null, dereferenced)
                if folded is not None:
                    _replace_uses(function, instruction.result, folded)
                    block.instructions.remove(instruction)
                    changed = True
    return changed


def _fold_check(instruction: inst.ICmp, never_null: set[int],
                dereferenced: set[int]):
    lhs, rhs = instruction.lhs, instruction.rhs
    pointer = None
    if isinstance(rhs, ir.ConstNull):
        pointer = lhs
    elif isinstance(lhs, ir.ConstNull):
        pointer = rhs
    if pointer is None:
        return None
    known_nonnull = (
        id(pointer) in never_null
        or id(pointer) in dereferenced
        or isinstance(pointer, (ir.GlobalVariable, ir.ConstGEP,
                                ir.Function))
    )
    if not known_nonnull:
        return None
    result = instruction.predicate == "ne"
    return ir.ConstInt(irt.I1, 1 if result else 0)


def _replace_uses(function, old, new) -> None:
    for instruction in function.instructions():
        instruction.replace_operand(old, new)
