"""Optimization pipelines.

``run_o3`` is the UB-exploiting optimizer the baselines compile with;
``run_backend_folds`` models the folds Clang's backend performs even at
-O0 (Figure 13).  Safe Sulong historically executed only the front
end's unoptimized IR (§3.1); ``run_safe_o2`` is the managed-semantics
optimizer level the speculative tier runs — every pass in it preserves
check behavior exactly (see the gvn/licm module docstrings).
"""

from __future__ import annotations

from .. import ir
from ..ir import instructions as inst
from ..ir import types as irt
from . import (backendfold, constfold, dce, deadstore, gvn, licm, loadwiden,
               loopdelete, mem2reg, nullcheck, simplifycfg)

# Participates in safe-tier cache keys indirectly: the optimized clone's
# printed IR is what gets hashed, but bump this to force re-optimization
# when pass *behavior* changes without changing pass output on trivial
# functions.
SAFE_O2_VERSION = 1


def run_o3(module: ir.Module, max_iterations: int = 8,
           load_widening: bool = False) -> None:
    """The -O2/-O3-style pipeline, iterated to fixpoint.

    ``load_widening`` is off by default — mirroring the real-world state
    after the Firefox false positive forced ASan builds to disable it
    (§2.3); the ablation benchmark switches it on.
    """
    for function in module.functions.values():
        if not function.is_definition:
            continue
        mem2reg.run(function)
        for _ in range(max_iterations):
            changed = False
            changed |= constfold.run(function)
            changed |= nullcheck.run(function)
            changed |= dce.run(function)
            changed |= deadstore.run(function)
            changed |= simplifycfg.run(function)
            changed |= loopdelete.run(function)
            if not changed:
                break
        if load_widening:
            while loadwiden.run(function):
                pass
        ir.validate_function(function)
    backendfold.run_module(module)


def run_safe_o2_function(function: ir.Function) -> None:
    """Safe-tier -O2 over one function, IN PLACE: mem2reg, branch
    condition simplification, then GVN (with block-local redundant-load
    forwarding), then LICM, then a GVN cleanup over whatever LICM
    exposed, then a detection-preserving DCE sweep.  Callers own
    ``function`` — engine code passes a private clone
    (:func:`optimized_clone`), never a function belonging to the shared
    libc module."""
    mem2reg.run(function)
    _simplify_branch_conditions(function)
    gvn.run(function)
    licm.run(function)
    gvn.run(function)
    _prune_dead_pure(function)
    ir.validate_function(function)


def _simplify_branch_conditions(function: ir.Function) -> bool:
    """Rewrite ``br (icmp ne (zext i1 %c), 0)`` chains to ``br %c``.

    The front end materializes every C condition through int (bool →
    zext → compare-against-zero); branching on the original i1 register
    is value-identical and exposes the compare to cmp+br fusion and to
    the loop speculation analysis.  Only chains ending in an i1 value
    are rewritten — i1 registers hold 0/1, so truthiness is unchanged."""
    defs: dict[int, inst.Instruction] = {}
    for block in function.blocks:
        for instruction in block.instructions:
            if instruction.result is not None:
                defs[id(instruction.result)] = instruction
    changed = False
    for block in function.blocks:
        term = block.instructions[-1] if block.instructions else None
        if not isinstance(term, inst.CondBr):
            continue
        cond = term.condition
        for _ in range(8):
            definition = defs.get(id(cond)) \
                if isinstance(cond, ir.VirtualRegister) else None
            if isinstance(definition, inst.ICmp) \
                    and definition.predicate == "ne" \
                    and isinstance(definition.rhs, ir.ConstInt) \
                    and definition.rhs.value == 0 \
                    and isinstance(definition.lhs.type, irt.IntType):
                cond = definition.lhs
            elif isinstance(definition, inst.Cast) \
                    and definition.kind == "zext":
                cond = definition.value
            else:
                break
        if cond is not term.condition \
                and isinstance(cond.type, irt.IntType) \
                and cond.type.bits == 1:
            term.replace_operand(term.condition, cond)
            changed = True
    return changed


def _prune_dead_pure(function: ir.Function) -> bool:
    """Remove unused pure, non-trapping instructions (LICM's hoistable
    class: arithmetic minus division, non-pointer compares, selects,
    arithmetic casts).  Loads, stores, GEPs, calls, and division stay
    even when dead — executing them is how bugs and crashes get
    detected, and the safe tier must never lose a detection."""
    changed = False
    while True:
        uses: dict[int, int] = {}
        for block in function.blocks:
            for instruction in block.instructions:
                for operand in instruction.operands():
                    if isinstance(operand, ir.VirtualRegister):
                        uses[id(operand)] = uses.get(id(operand), 0) + 1
        removed = False
        for block in function.blocks:
            kept = []
            for instruction in block.instructions:
                result = instruction.result
                if result is not None and not uses.get(id(result)) \
                        and licm._hoistable(instruction):
                    removed = True
                    continue
                kept.append(instruction)
            if len(kept) != len(block.instructions):
                block.instructions = kept
        if not removed:
            return changed
        changed = True


def run_safe_o2(module: ir.Module) -> None:
    """Safe-tier -O2 over every defined function of a module the caller
    owns outright (tests, studies).  Shared modules must go through
    :func:`optimized_clone` instead."""
    for function in module.functions.values():
        if function.is_definition:
            run_safe_o2_function(function)


def optimized_clone(function: ir.Function) -> ir.Function:
    """The safe-O2-optimized private copy of ``function``, memoized on
    the original (originals are immutable once the front end is done,
    so one clone serves every runtime in the process).  If any pass
    fails, the original is returned — slower, never wrong — and the
    failure is recorded on the function for tests to inspect."""
    cached = getattr(function, "_safe_o2_clone", None)
    if cached is not None:
        return cached
    if not function.is_definition:
        return function
    clone = ir.clone_function(function)
    try:
        run_safe_o2_function(clone)
    except Exception as error:  # degrade, never break the run
        try:
            function._safe_o2_error = repr(error)
        except AttributeError:
            pass
        clone = function
    try:
        function._safe_o2_clone = clone
    except AttributeError:
        pass
    return clone


def run_o0_cleanup(module: ir.Module) -> None:
    """What even -O0 does: nothing at the IR level."""


def run_backend_folds(module: ir.Module) -> None:
    """Backend folds applied regardless of the optimization level (the
    mechanism behind the paper's 'Clang -O0 optimizes away bugs')."""
    changed = backendfold.run_module(module)
    if changed:
        for function in module.functions.values():
            if function.is_definition:
                ir.validate_function(function)
