"""Optimization pipelines.

``run_o3`` is the UB-exploiting optimizer the baselines compile with;
``run_backend_folds`` models the folds Clang's backend performs even at
-O0 (Figure 13).  Safe Sulong never runs either — it executes the front
end's unoptimized IR (§3.1).
"""

from __future__ import annotations

from .. import ir
from . import (backendfold, constfold, dce, deadstore, loadwiden,
               loopdelete, mem2reg, nullcheck, simplifycfg)


def run_o3(module: ir.Module, max_iterations: int = 8,
           load_widening: bool = False) -> None:
    """The -O2/-O3-style pipeline, iterated to fixpoint.

    ``load_widening`` is off by default — mirroring the real-world state
    after the Firefox false positive forced ASan builds to disable it
    (§2.3); the ablation benchmark switches it on.
    """
    for function in module.functions.values():
        if not function.is_definition:
            continue
        mem2reg.run(function)
        for _ in range(max_iterations):
            changed = False
            changed |= constfold.run(function)
            changed |= nullcheck.run(function)
            changed |= dce.run(function)
            changed |= deadstore.run(function)
            changed |= simplifycfg.run(function)
            changed |= loopdelete.run(function)
            if not changed:
                break
        if load_widening:
            while loadwiden.run(function):
                pass
        ir.validate_function(function)
    backendfold.run_module(module)


def run_o0_cleanup(module: ir.Module) -> None:
    """What even -O0 does: nothing at the IR level."""


def run_backend_folds(module: ir.Module) -> None:
    """Backend folds applied regardless of the optimization level (the
    mechanism behind the paper's 'Clang -O0 optimizes away bugs')."""
    changed = backendfold.run_module(module)
    if changed:
        for function in module.functions.values():
            if function.is_definition:
                ir.validate_function(function)
