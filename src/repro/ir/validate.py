"""IR verifier.

Run after IR generation and after every optimizer pass in the test suite;
catches malformed IR early instead of letting an executor fail obscurely.
"""

from __future__ import annotations

from . import instructions as inst
from . import types as ty
from .module import Function, Module
from .values import Value, VirtualRegister


class ValidationError(Exception):
    pass


def validate_module(module: Module) -> None:
    for func in module.functions.values():
        if func.is_definition:
            validate_function(func)


def validate_function(func: Function) -> None:
    defined: set[int] = {id(p) for p in func.params}
    results_seen: set[int] = set()

    if not func.blocks:
        raise ValidationError(f"@{func.name}: definition has no blocks")

    block_set = set(func.blocks)

    # First pass: collect definitions and structural checks.
    for block in func.blocks:
        if not block.instructions:
            raise ValidationError(
                f"@{func.name}:{block.label}: empty block")
        terminator = block.instructions[-1]
        if not terminator.is_terminator:
            raise ValidationError(
                f"@{func.name}:{block.label}: missing terminator")
        for position, instruction in enumerate(block.instructions):
            if instruction.is_terminator and position != len(block.instructions) - 1:
                raise ValidationError(
                    f"@{func.name}:{block.label}: terminator in the middle")
            if isinstance(instruction, inst.Phi):
                if position and not isinstance(
                        block.instructions[position - 1], inst.Phi):
                    raise ValidationError(
                        f"@{func.name}:{block.label}: phi not at block head")
            result = instruction.result
            if result is not None:
                if id(result) in results_seen:
                    raise ValidationError(
                        f"@{func.name}: register %{result.name} "
                        f"defined twice")
                results_seen.add(id(result))
                defined.add(id(result))
        for successor in block.successors():
            if successor not in block_set:
                raise ValidationError(
                    f"@{func.name}:{block.label}: branch to foreign block "
                    f"{successor.label}")

    # Second pass: uses and per-instruction typing rules.
    predecessors = func.compute_predecessors()
    for block in func.blocks:
        preds = set(predecessors.get(block, ()))
        for instruction in block.instructions:
            for operand in instruction.operands():
                _check_operand(func, defined, operand)
            _check_types(func, instruction)
            if isinstance(instruction, inst.Phi):
                # The dataflow layer evaluates phis edge-wise; an
                # incoming entry whose label is not a real CFG
                # predecessor has no edge to carry its value.
                for pred, _ in instruction.incoming:
                    if pred not in preds:
                        raise ValidationError(
                            f"@{func.name}:{block.label}: phi incoming "
                            f"block {pred.label} is not a predecessor")

    ret_type = func.ftype.ret
    for block in func.blocks:
        terminator = block.terminator
        if isinstance(terminator, inst.Ret):
            if isinstance(ret_type, ty.VoidType):
                if terminator.value is not None:
                    raise ValidationError(
                        f"@{func.name}: ret with value in void function")
            elif terminator.value is None:
                raise ValidationError(
                    f"@{func.name}: ret without value")


def _check_operand(func: Function, defined: set[int], operand: Value) -> None:
    if operand is None:
        raise ValidationError(f"@{func.name}: None operand")
    if isinstance(operand, VirtualRegister) and id(operand) not in defined:
        raise ValidationError(
            f"@{func.name}: use of undefined register %{operand.name}")


def _check_types(func: Function, i: inst.Instruction) -> None:
    name = f"@{func.name}"
    if isinstance(i, inst.Load):
        if not isinstance(i.pointer.type, ty.PointerType):
            raise ValidationError(f"{name}: load from non-pointer")
        if i.pointer.type.pointee != i.result.type:
            raise ValidationError(
                f"{name}: load type mismatch "
                f"({i.pointer.type.pointee} vs {i.result.type})")
    elif isinstance(i, inst.Store):
        if not isinstance(i.pointer.type, ty.PointerType):
            raise ValidationError(f"{name}: store to non-pointer")
        if i.pointer.type.pointee != i.value.type:
            raise ValidationError(
                f"{name}: store type mismatch "
                f"({i.value.type} into {i.pointer.type})")
    elif isinstance(i, inst.BinOp):
        if i.lhs.type != i.rhs.type:
            raise ValidationError(
                f"{name}: binop operand mismatch "
                f"({i.lhs.type} vs {i.rhs.type})")
        if i.op in inst.FLOAT_BINOPS and not ty.is_float(i.lhs.type):
            raise ValidationError(f"{name}: float op on {i.lhs.type}")
        if i.op in inst.INT_BINOPS and not ty.is_int(i.lhs.type):
            raise ValidationError(f"{name}: int op on {i.lhs.type}")
    elif isinstance(i, inst.ICmp):
        if i.lhs.type != i.rhs.type:
            raise ValidationError(f"{name}: icmp operand mismatch")
        if i.result.type != ty.I1:
            raise ValidationError(f"{name}: icmp result must be i1")
    elif isinstance(i, inst.FCmp):
        if i.lhs.type != i.rhs.type:
            raise ValidationError(f"{name}: fcmp operand mismatch")
    elif isinstance(i, inst.Gep):
        if not isinstance(i.base.type, ty.PointerType):
            raise ValidationError(f"{name}: gep base is not a pointer")
        for index in i.indices:
            if not ty.is_int(index.type):
                raise ValidationError(
                    f"{name}: gep index of non-integer type {index.type}")
    elif isinstance(i, inst.Call):
        signature = i.signature
        if signature.is_varargs:
            if len(i.args) < len(signature.params):
                raise ValidationError(
                    f"{name}: too few arguments in varargs call")
        elif len(i.args) != len(signature.params):
            raise ValidationError(
                f"{name}: call arity mismatch calling {i.callee.short()} "
                f"({len(i.args)} vs {len(signature.params)})")
    elif isinstance(i, inst.CondBr):
        if i.condition.type != ty.I1:
            raise ValidationError(f"{name}: branch condition must be i1")
    elif isinstance(i, inst.Phi):
        for _, value in i.incoming:
            if value.type != i.result.type:
                raise ValidationError(f"{name}: phi operand type mismatch")
