"""Type system for the intermediate representation.

The IR mirrors LLVM IR closely enough that a reader of the paper can map
concepts one-to-one: integers are signless (signedness lives in the
operations), pointers are typed, and aggregate layout follows the AMD64
System V ABI conventions (natural alignment, padded structs) that the paper
assumes when it says "an LLVM IR I32 object corresponds to a C int on AMD64".
"""

from __future__ import annotations

from functools import lru_cache


POINTER_SIZE = 8
POINTER_ALIGN = 8


class IRType:
    """Base class for all IR types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"

    @property
    def size(self) -> int:
        """Size of the type in bytes."""
        raise NotImplementedError(str(type(self)))

    @property
    def align(self) -> int:
        """Natural alignment of the type in bytes."""
        return self.size

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()


class VoidType(IRType):
    def __str__(self) -> str:
        return "void"

    @property
    def size(self) -> int:
        raise TypeError("void has no size")

    @property
    def align(self) -> int:
        raise TypeError("void has no alignment")


class IntType(IRType):
    """A signless integer with an arbitrary bit width (i1, i8, ..., i48)."""

    __slots__ = ("bits",)

    def __init__(self, bits: int):
        if bits <= 0:
            raise ValueError(f"invalid integer width: {bits}")
        self.bits = bits

    def _key(self):
        return (self.bits,)

    def __str__(self) -> str:
        return f"i{self.bits}"

    @property
    def size(self) -> int:
        return max(1, (self.bits + 7) // 8)

    @property
    def align(self) -> int:
        size = self.size
        if size in (1, 2, 4, 8):
            return size
        # Uncommon widths (i48 etc.) get the alignment of the next power of 2
        # capped at 8, like LLVM's data layout for AMD64.
        align = 1
        while align < size and align < 8:
            align *= 2
        return align

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    @property
    def signed_min(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def signed_max(self) -> int:
        return (1 << (self.bits - 1)) - 1


class FloatType(IRType):
    """An IEEE-754 floating point type (float or double)."""

    __slots__ = ("bits",)

    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        self.bits = bits

    def _key(self):
        return (self.bits,)

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"

    @property
    def size(self) -> int:
        return self.bits // 8


class PointerType(IRType):
    """A typed pointer (``i32*``, ``%struct.foo*``, ``i8**``)."""

    __slots__ = ("pointee",)

    def __init__(self, pointee: IRType):
        self.pointee = pointee

    def _key(self):
        return (self.pointee,)

    def __str__(self) -> str:
        return f"{self.pointee}*"

    @property
    def size(self) -> int:
        return POINTER_SIZE

    @property
    def align(self) -> int:
        return POINTER_ALIGN


class ArrayType(IRType):
    """A fixed-size array ``[count x elem]``."""

    __slots__ = ("elem", "count")

    def __init__(self, elem: IRType, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.elem = elem
        self.count = count

    def _key(self):
        return (self.elem, self.count)

    def __str__(self) -> str:
        return f"[{self.count} x {self.elem}]"

    @property
    def size(self) -> int:
        return self.elem.size * self.count

    @property
    def align(self) -> int:
        return self.elem.align


class StructField:
    """A named struct member with a computed byte offset."""

    __slots__ = ("name", "type", "offset")

    def __init__(self, name: str, type: IRType, offset: int = 0):
        self.name = name
        self.type = type
        self.offset = offset

    def __repr__(self) -> str:
        return f"StructField({self.name!r}, {self.type}, offset={self.offset})"


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


class StructType(IRType):
    """A struct or union with ABI-compliant layout.

    Structs may be declared opaque first and have their body set later,
    which supports self-referential types (linked lists, trees).
    """

    def __init__(self, name: str, fields: list[StructField] | None = None,
                 is_union: bool = False):
        self.name = name
        self.is_union = is_union
        self._fields: list[StructField] | None = None
        self._size = 0
        self._align = 1
        if fields is not None:
            self.set_fields(fields)

    def _key(self):
        # Structs use nominal typing: two structs are the same type only if
        # they are the same object (or share a name within a module).
        return (id(self),)

    @property
    def is_opaque(self) -> bool:
        return self._fields is None

    @property
    def fields(self) -> list[StructField]:
        if self._fields is None:
            raise TypeError(f"struct {self.name} is opaque")
        return self._fields

    def set_fields(self, fields: list[StructField]) -> None:
        if self._fields is not None:
            raise TypeError(f"struct {self.name} already has a body")
        offset = 0
        align = 1
        for field in fields:
            field_align = field.type.align
            align = max(align, field_align)
            if self.is_union:
                field.offset = 0
                offset = max(offset, field.type.size)
            else:
                offset = _round_up(offset, field_align)
                field.offset = offset
                offset += field.type.size
        self._fields = fields
        self._align = align
        self._size = _round_up(offset, align) if fields else 0

    def field_named(self, name: str) -> StructField:
        for field in self.fields:
            if field.name == name:
                return field
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def field_index(self, name: str) -> int:
        for i, field in enumerate(self.fields):
            if field.name == name:
                return i
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def __str__(self) -> str:
        return f"%{self.name}"

    @property
    def size(self) -> int:
        if self._fields is None:
            raise TypeError(f"struct {self.name} is opaque")
        return self._size

    @property
    def align(self) -> int:
        return self._align


class FunctionType(IRType):
    """A function signature, possibly variadic."""

    __slots__ = ("ret", "params", "is_varargs")

    def __init__(self, ret: IRType, params: list[IRType],
                 is_varargs: bool = False):
        self.ret = ret
        self.params = list(params)
        self.is_varargs = is_varargs

    def _key(self):
        return (self.ret, tuple(self.params), self.is_varargs)

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.is_varargs:
            parts.append("...")
        return f"{self.ret} ({', '.join(parts)})"

    @property
    def size(self) -> int:
        raise TypeError("function types have no size")


# Commonly used singletons.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


@lru_cache(maxsize=None)
def int_type(bits: int) -> IntType:
    return IntType(bits)


def ptr(pointee: IRType) -> PointerType:
    return PointerType(pointee)


I8PTR = ptr(I8)


def is_int(t: IRType) -> bool:
    return isinstance(t, IntType)


def is_float(t: IRType) -> bool:
    return isinstance(t, FloatType)


def is_pointer(t: IRType) -> bool:
    return isinstance(t, PointerType)


def is_aggregate(t: IRType) -> bool:
    return isinstance(t, (ArrayType, StructType))
