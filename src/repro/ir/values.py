"""IR values: virtual registers, constants, and global objects.

Every operand of an instruction is a :class:`Value`.  Functions and global
variables are themselves values of pointer type, exactly as in LLVM IR.
"""

from __future__ import annotations

import struct

from . import types as ty


class Value:
    """Base class of everything that can appear as an instruction operand."""

    type: ty.IRType

    def short(self) -> str:
        """A compact printable form used inside instruction operands."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short()}>"


class VirtualRegister(Value):
    """An SSA-style virtual register (``%3``, ``%argc.addr``)."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: ty.IRType):
        self.name = name
        self.type = type

    def short(self) -> str:
        return f"%{self.name}"


class Constant(Value):
    """Base class for compile-time constants."""

    def py_value(self):
        """The Python-level value used by the managed interpreter."""
        raise NotImplementedError


class ConstInt(Constant):
    __slots__ = ("type", "value")

    def __init__(self, type: ty.IntType, value: int):
        self.type = type
        # Store the canonical unsigned representation like LLVM does; the
        # operations decide how to interpret the bits.
        self.value = value & type.mask

    def py_value(self) -> int:
        return self.value

    @property
    def signed_value(self) -> int:
        value = self.value
        if value > self.type.signed_max:
            value -= 1 << self.type.bits
        return value

    def short(self) -> str:
        return str(self.signed_value)


class ConstFloat(Constant):
    __slots__ = ("type", "value")

    def __init__(self, type: ty.FloatType, value: float):
        self.type = type
        if type.bits == 32:
            # Round-trip through single precision so that f32 constants have
            # f32 semantics in both executors.
            value = struct.unpack("<f", struct.pack("<f", value))[0]
        self.value = value

    def py_value(self) -> float:
        return self.value

    def short(self) -> str:
        return repr(self.value)


class ConstNull(Constant):
    __slots__ = ("type",)

    def __init__(self, type: ty.PointerType):
        self.type = type

    def py_value(self):
        return None

    def short(self) -> str:
        return "null"


class ConstUndef(Constant):
    """An undefined value (uninitialized scalar)."""

    __slots__ = ("type",)

    def __init__(self, type: ty.IRType):
        self.type = type

    def py_value(self):
        return 0 if isinstance(self.type, ty.IntType) else 0.0

    def short(self) -> str:
        return "undef"


class ConstZero(Constant):
    """A zero initializer for any type (LLVM's ``zeroinitializer``)."""

    __slots__ = ("type",)

    def __init__(self, type: ty.IRType):
        self.type = type

    def py_value(self):
        return 0

    def short(self) -> str:
        return "zeroinitializer"


class ConstArray(Constant):
    __slots__ = ("type", "elements")

    def __init__(self, type: ty.ArrayType, elements: list[Constant]):
        if len(elements) != type.count:
            raise ValueError(
                f"array initializer has {len(elements)} elements, "
                f"expected {type.count}")
        self.type = type
        self.elements = elements

    def short(self) -> str:
        inner = ", ".join(f"{e.type} {e.short()}" for e in self.elements)
        return f"[{inner}]"


class ConstString(Constant):
    """A NUL-terminated byte-string constant (``c"hi\\00"``)."""

    __slots__ = ("type", "data")

    def __init__(self, data: bytes):
        self.data = data
        self.type = ty.ArrayType(ty.I8, len(data))

    def short(self) -> str:
        printable = "".join(
            chr(b) if 32 <= b < 127 and b not in (34, 92) else f"\\{b:02x}"
            for b in self.data)
        return f'c"{printable}"'


class ConstStruct(Constant):
    __slots__ = ("type", "elements")

    def __init__(self, type: ty.StructType, elements: list[Constant]):
        if len(elements) != len(type.fields):
            raise ValueError("struct initializer arity mismatch")
        self.type = type
        self.elements = elements

    def short(self) -> str:
        inner = ", ".join(f"{e.type} {e.short()}" for e in self.elements)
        return f"{{{inner}}}"


class GlobalValue(Value):
    """Base of module-level values (globals and functions)."""

    name: str

    def short(self) -> str:
        return f"@{self.name}"


class GlobalVariable(GlobalValue):
    """A global (static-storage) variable.

    ``zero_initialized`` distinguishes tentative definitions (``int x;``,
    "common" symbols) from explicit initializers; AddressSanitizer's
    ``-fno-common`` behaviour depends on this distinction (paper §4.1).
    """

    __slots__ = ("name", "value_type", "type", "initializer",
                 "zero_initialized", "is_constant", "is_external", "loc")

    def __init__(self, name: str, value_type: ty.IRType,
                 initializer: Constant | None = None,
                 zero_initialized: bool = False,
                 is_constant: bool = False, is_external: bool = False,
                 loc=None):
        self.name = name
        self.value_type = value_type
        self.type = ty.PointerType(value_type)
        self.initializer = initializer
        self.zero_initialized = zero_initialized
        self.is_constant = is_constant
        self.is_external = is_external
        self.loc = loc


class ConstGEP(Constant):
    """A constant pointer offset from a global (``&arr[3]``, ``&s.field``)."""

    __slots__ = ("type", "base", "byte_offset")

    def __init__(self, type: ty.PointerType, base: GlobalValue,
                 byte_offset: int):
        self.type = type
        self.base = base
        self.byte_offset = byte_offset

    def short(self) -> str:
        return f"gep(@{self.base.name}, {self.byte_offset})"
