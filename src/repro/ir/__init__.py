"""The intermediate representation shared by all executors.

The C front end produces this IR the way clang -O0 does (paper §3.1); the
Safe Sulong managed engine, the native machine, and the sanitizers all
consume it.
"""

from . import types
from .builder import IRBuilder
from .clone import clone_function
from .instructions import (Alloca, BinOp, Br, Call, Cast, CondBr, FCmp, Gep,
                           ICmp, Instruction, Load, Phi, Ret, Select, Store,
                           Switch, Unreachable, gep_offset)
from .module import Block, Function, LinkError, Module
from .printer import print_function, print_module
from .validate import ValidationError, validate_function, validate_module
from .values import (ConstArray, ConstFloat, ConstGEP, ConstInt, ConstNull,
                     ConstString, ConstStruct, ConstUndef, ConstZero,
                     Constant, GlobalValue, GlobalVariable, Value,
                     VirtualRegister)

__all__ = [
    "types", "IRBuilder", "clone_function",
    "Alloca", "BinOp", "Br", "Call", "Cast", "CondBr", "FCmp", "Gep", "ICmp",
    "Instruction", "Load", "Phi", "Ret", "Select", "Store", "Switch",
    "Unreachable", "gep_offset",
    "Block", "Function", "LinkError", "Module",
    "print_function", "print_module",
    "ValidationError", "validate_function", "validate_module",
    "ConstArray", "ConstFloat", "ConstGEP", "ConstInt", "ConstNull",
    "ConstString", "ConstStruct", "ConstUndef", "ConstZero", "Constant",
    "GlobalValue", "GlobalVariable", "Value", "VirtualRegister",
]
