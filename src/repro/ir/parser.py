"""Textual IR parser: round-trips with :mod:`repro.ir.printer`.

Useful for writing IR-level tests by hand, for golden-file tests of the
front end, and for persisting compiled modules.  Supports exactly the
dialect the printer emits.
"""

from __future__ import annotations

import re

from .. import source
from . import instructions as inst
from . import types as ty
from .module import Block, Function, Module
from .values import (ConstArray, ConstFloat, ConstGEP, ConstInt, ConstNull,
                     ConstString, ConstStruct, ConstUndef, ConstZero,
                     GlobalVariable, VirtualRegister)


class IRParseError(Exception):
    pass


_TOKEN = re.compile(r"""
      c"(?:[^"\\]|\\[0-9a-fA-F]{2})*"   # string constant
    | %[A-Za-z0-9._$-]+                 # register / struct name
    | @[A-Za-z0-9._$-]+                 # global name
    | -?\d+\.\d+(?:e[+-]?\d+)?          # float
    | -?\d+e[+-]?\d+                    # float, exponent only
    | -?(?:inf|nan)                     # special floats
    | -?\d+                             # int
    | \.\.\.                            # varargs ellipsis
    | [A-Za-z_][A-Za-z0-9_.]*           # word
    | [\[\]{}()*,=:]                    # punctuation
""", re.VERBOSE)


def _split_comment(line: str) -> tuple[str, str]:
    """Split a line into (code, comment) at the first ';' outside a
    c"..." constant.  Lines without string constants — the vast
    majority — take the ``str.partition`` fast path; only lines that
    contain a '"' pay for the character scan."""
    if '"' not in line:
        code, _, comment = line.partition(";")
        return code.strip(), comment.strip()
    in_string = False
    for i, c in enumerate(line):
        if in_string:
            if c == '"':
                in_string = False
        elif c == '"':
            in_string = True
        elif c == ";":
            return line[:i].strip(), line[i + 1:].strip()
    return line.strip(), ""


def _parse_loc(text: str, cache: dict):
    """Decode the ``file:line[:col]`` comment the printer appends to
    instructions back into a SourceLocation (interned per spelling)."""
    if not text:
        return source.UNKNOWN
    loc = cache.get(text)
    if loc is not None:
        return loc
    parts = text.rsplit(":", 2)
    if len(parts) == 3 and parts[1].isdigit() and parts[2].isdigit():
        loc = source.SourceLocation(parts[0], int(parts[1]),
                                    int(parts[2]))
    elif len(parts) >= 2 and parts[-1].isdigit():
        loc = source.SourceLocation(":".join(parts[:-1]),
                                    int(parts[-1]))
    else:
        loc = source.UNKNOWN
    cache[text] = loc
    return loc


class _Tokens:
    def __init__(self, text: str, line_no: int):
        self.items = _TOKEN.findall(text)
        self.pos = 0
        self.line_no = line_no

    def peek(self) -> str | None:
        if self.pos < len(self.items):
            return self.items[self.pos]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise IRParseError(f"line {self.line_no}: unexpected end")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise IRParseError(
                f"line {self.line_no}: expected {token!r}, got {got!r}")

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.items)


class ModuleParser:
    def __init__(self, text: str):
        # Lines are split into (code, comment) exactly once; both the
        # forward-declaration pre-pass and the main pass walk this list.
        self.stripped = [_split_comment(raw) for raw in text.splitlines()]
        self.index = 0
        self.comment = ""  # comment tail of the last _next_line()
        self.module = Module("parsed")
        self.structs: dict[str, ty.StructType] = {}
        self.registers: dict[str, VirtualRegister] = {}
        self.blocks: dict[str, Block] = {}
        self.pending: list = []  # (fixup closures run at function end)
        self._locs: dict[str, source.SourceLocation] = {}
        # The printer opens with a "; module NAME" comment; restore the
        # name so a round-tripped module is not renamed to "parsed".
        for code, comment in self.stripped:
            if code:
                break
            if comment.startswith("module "):
                self.module.name = comment[len("module "):].strip()
                break

    # -- line plumbing ------------------------------------------------------

    def _next_line(self) -> str | None:
        stripped = self.stripped
        while self.index < len(stripped):
            code, comment = stripped[self.index]
            self.index += 1
            if code:
                self.comment = comment
                return code
        return None

    def _peek_line(self) -> str | None:
        save = self.index
        line = self._next_line()
        self.index = save
        return line

    # -- types ----------------------------------------------------------------

    def parse_type(self, tokens: _Tokens) -> ty.IRType:
        token = tokens.next()
        base: ty.IRType
        if token == "void":
            base = ty.VOID
        elif token == "float":
            base = ty.F32
        elif token == "double":
            base = ty.F64
        elif token.startswith("i") and token[1:].isdigit():
            base = ty.int_type(int(token[1:]))
        elif token == "[":
            count = int(tokens.next())
            tokens.expect("x")
            elem = self.parse_type(tokens)
            tokens.expect("]")
            base = ty.ArrayType(elem, count)
        elif token.startswith("%"):
            name = token[1:]
            struct = self.structs.get(name)
            if struct is None:
                struct = ty.StructType(name)
                self.structs[name] = struct
                self.module.structs[name] = struct
            base = struct
        else:
            raise IRParseError(
                f"line {tokens.line_no}: not a type: {token!r}")
        # Function types: `i32 (i32, i8*)`.
        if tokens.accept("("):
            params: list[ty.IRType] = []
            is_varargs = False
            while not tokens.accept(")"):
                if tokens.accept("..."):
                    is_varargs = True
                    tokens.expect(")")
                    break
                params.append(self.parse_type(tokens))
                tokens.accept(",")
            base = ty.FunctionType(base, params, is_varargs)
        while tokens.accept("*"):
            base = ty.PointerType(base)
        return base

    # -- values ----------------------------------------------------------------

    def parse_value(self, value_type: ty.IRType, tokens: _Tokens):
        token = tokens.next()
        if token.startswith("%"):
            name = token[1:]
            register = self.registers.get(name)
            if register is None:
                register = VirtualRegister(name, value_type)
                self.registers[name] = register
            return register
        if token.startswith("@"):
            return self._global_ref(token[1:])
        if token == "null":
            return ConstNull(value_type)
        if token == "undef":
            return ConstUndef(value_type)
        if token == "zeroinitializer":
            return ConstZero(value_type)
        if token.startswith('c"'):
            return ConstString(_decode_ir_string(token))
        if token == "gep":
            tokens.expect("(")
            base_token = tokens.next()
            base = self._global_ref(base_token[1:])
            tokens.expect(",")
            offset = int(tokens.next())
            tokens.expect(")")
            return ConstGEP(value_type, base, offset)
        if token == "[":
            elements = []
            while not tokens.accept("]"):
                elem_type = self.parse_type(tokens)
                elements.append(self.parse_value(elem_type, tokens))
                tokens.accept(",")
            return ConstArray(value_type, elements)
        if token == "{":
            elements = []
            while not tokens.accept("}"):
                elem_type = self.parse_type(tokens)
                elements.append(self.parse_value(elem_type, tokens))
                tokens.accept(",")
            return ConstStruct(value_type, elements)
        if isinstance(value_type, ty.FloatType):
            return ConstFloat(value_type, float(token))
        if isinstance(value_type, ty.IntType):
            return ConstInt(value_type, int(token))
        if isinstance(value_type, ty.PointerType) and token == "0":
            return ConstNull(value_type)
        raise IRParseError(
            f"line {tokens.line_no}: cannot parse value {token!r} of "
            f"type {value_type}")

    def _global_ref(self, name: str):
        if name in self.module.functions:
            return self.module.functions[name]
        if name in self.module.globals:
            return self.module.globals[name]
        raise IRParseError(f"unknown global @{name}")

    def parse_typed_value(self, tokens: _Tokens):
        value_type = self.parse_type(tokens)
        return value_type, self.parse_value(value_type, tokens)

    # -- top level ------------------------------------------------------------

    def parse(self) -> Module:
        # Pre-pass: create shells for every function so forward
        # references (calls, function-pointer tables) resolve.
        save = self.index
        while True:
            line = self._next_line()
            if line is None:
                break
            if line.startswith("%") and "= type" not in line \
                    and "= union" not in line:
                continue  # body line
            if line.startswith(("define", "declare")):
                self._declare_header(line)
        self.index = save

        while True:
            line = self._next_line()
            if line is None:
                break
            if line.startswith("%"):
                self._parse_struct(line)
            elif line.startswith("@"):
                self._parse_global(line)
            elif line.startswith("define"):
                self._parse_function(line, is_definition=True)
            elif line.startswith("declare"):
                pass  # shell created in the pre-pass
            else:
                raise IRParseError(f"unexpected line: {line!r}")
        return self.module

    def _parse_struct(self, line: str) -> None:
        tokens = _Tokens(line, self.index)
        name = tokens.next()[1:]
        tokens.expect("=")
        keyword = tokens.next()  # "type" or "union"
        is_union = keyword == "union"
        struct = self.structs.get(name)
        if struct is None:
            struct = ty.StructType(name, is_union=is_union)
            self.structs[name] = struct
            self.module.structs[name] = struct
        struct.is_union = is_union
        if tokens.accept("opaque"):
            return
        # Field names ride in the printer's "; fields a b c" comment
        # (they reach allocation labels and therefore bug messages).
        field_names: list[str] = []
        if self.comment.startswith("fields "):
            field_names = self.comment[len("fields "):].split()
        tokens.expect("{")
        fields = []
        index = 0
        while not tokens.accept("}"):
            field_type = self.parse_type(tokens)
            field_name = field_names[index] if index < len(field_names) \
                else f"f{index}"
            fields.append(ty.StructField(field_name, field_type))
            index += 1
            tokens.accept(",")
        if struct.is_opaque:
            struct.set_fields(fields)

    def _parse_global(self, line: str) -> None:
        tokens = _Tokens(line, self.index)
        name = tokens.next()[1:]
        tokens.expect("=")
        kind = tokens.next()  # [external] global | constant
        is_external = kind == "external"
        if is_external:
            kind = tokens.next()
        value_type = self.parse_type(tokens)
        zero_initialized = False
        initializer = None
        if tokens.accept("zeroinitializer"):
            zero_initialized = True
        elif tokens.accept("undef"):
            pass
        else:
            initializer = self.parse_value(value_type, tokens)
        comment = self.comment
        if comment.startswith("common"):
            comment = comment[len("common"):].strip()
        loc = _parse_loc(comment, self._locs) if comment else None
        if loc is source.UNKNOWN:
            loc = None
        self.module.add_global(GlobalVariable(
            name, value_type, initializer,
            zero_initialized=zero_initialized,
            is_constant=(kind == "constant"),
            is_external=is_external, loc=loc))

    # -- functions ---------------------------------------------------------------

    def _parse_header(self, header: str):
        tokens = _Tokens(header, self.index)
        tokens.next()  # define/declare
        ret_type = self.parse_type(tokens)
        name = tokens.next()[1:]
        tokens.expect("(")
        params: list[tuple[ty.IRType, str]] = []
        is_varargs = False
        while not tokens.accept(")"):
            if tokens.accept("..."):
                is_varargs = True
                tokens.expect(")")
                break
            param_type = self.parse_type(tokens)
            token = tokens.peek()
            if token is not None and token.startswith("%"):
                param_name = tokens.next()[1:]
            else:
                param_name = f"arg{len(params)}"
            params.append((param_type, param_name))
            tokens.accept(",")
        ftype = ty.FunctionType(ret_type, [p[0] for p in params],
                                is_varargs)
        return name, ftype, [p[1] for p in params]

    def _declare_header(self, header: str) -> None:
        name, ftype, param_names = self._parse_header(header)
        if name not in self.module.functions:
            self.module.add_function(Function(name, ftype, param_names))

    def _parse_function(self, header: str, is_definition: bool) -> None:
        name, _ftype, _params = self._parse_header(header)
        function = self.module.functions[name]
        if not is_definition:
            return

        self.registers = {p.name: p for p in function.params}
        self.blocks = {}
        # (label, [(code, comment)]) — the comment tail carries the
        # instruction's source location (and alloca var names).
        body: list[tuple[str, list[tuple[str, str]]]] = []
        current_label = None
        current_lines: list[tuple[str, str]] = []
        while True:
            line = self._next_line()
            if line is None:
                raise IRParseError(f"@{name}: missing closing brace")
            if line == "}":
                break
            if line.endswith(":") and " " not in line:
                if current_label is not None:
                    body.append((current_label, current_lines))
                current_label = line[:-1]
                current_lines = []
            else:
                current_lines.append((line, self.comment))
        if current_label is not None:
            body.append((current_label, current_lines))

        for label, _ in body:
            block = function.add_block(label)
            self.blocks[label] = block
        self.pending = []
        for label, lines in body:
            block = self.blocks[label]
            for text, comment in lines:
                block.instructions.append(
                    self._parse_instruction(text, comment))
        for fixup in self.pending:
            fixup()

    def _block_ref(self, label: str) -> Block:
        block = self.blocks.get(label)
        if block is None:
            raise IRParseError(f"unknown block label %{label}")
        return block

    def _result_register(self, name: str,
                         value_type: ty.IRType) -> VirtualRegister:
        register = self.registers.get(name)
        if register is None:
            register = VirtualRegister(name, value_type)
            self.registers[name] = register
        else:
            register.type = value_type
        return register

    def _parse_instruction(self, text: str,
                           comment: str = "") -> inst.Instruction:
        tokens = _Tokens(text, self.index)
        # The comment tail is "var NAME" (alloca), "file:line[:col]", or
        # "var NAME  ; file:line[:col]" — printer dialect, round-tripped.
        var_name = ""
        if comment.startswith("var "):
            var_part, _, comment = comment[len("var "):].partition(";")
            var_name = var_part.strip()
            comment = comment.strip()
        loc = _parse_loc(comment, self._locs)
        first = tokens.next()
        if first.startswith("%"):
            result_name = first[1:]
            tokens.expect("=")
            op = tokens.next()
            return self._parse_op(op, result_name, tokens, loc, var_name)
        return self._parse_op(first, None, tokens, loc, var_name)

    def _parse_op(self, op: str, result_name: str | None, tokens: _Tokens,
                  loc, var_name: str = "") -> inst.Instruction:
        if op == "alloca":
            allocated = self.parse_type(tokens)
            result = self._result_register(result_name,
                                           ty.PointerType(allocated))
            return inst.Alloca(result, allocated, var_name=var_name,
                               loc=loc)
        if op == "load":
            value_type = self.parse_type(tokens)
            tokens.expect(",")
            _ptr_type, pointer = self.parse_typed_value(tokens)
            result = self._result_register(result_name, value_type)
            return inst.Load(result, pointer, loc=loc)
        if op == "store":
            _value_type, value = self.parse_typed_value(tokens)
            tokens.expect(",")
            _ptr_type, pointer = self.parse_typed_value(tokens)
            return inst.Store(value, pointer, loc=loc)
        if op == "getelementptr":
            pointee = self.parse_type(tokens)
            tokens.expect(",")
            _base_type, base = self.parse_typed_value(tokens)
            indices = []
            index_values = []
            while tokens.accept(","):
                index_type = self.parse_type(tokens)
                index = self.parse_value(index_type, tokens)
                indices.append(index)
                index_values.append(index.value
                                    if isinstance(index, ConstInt) else 0)
            _offset, final = inst.gep_offset(pointee, index_values)
            result = self._result_register(result_name,
                                           ty.PointerType(final))
            return inst.Gep(result, base, indices, loc=loc)
        if op in inst.INT_BINOPS or op in inst.FLOAT_BINOPS:
            value_type = self.parse_type(tokens)
            lhs = self.parse_value(value_type, tokens)
            tokens.expect(",")
            rhs = self.parse_value(value_type, tokens)
            result = self._result_register(result_name, value_type)
            return inst.BinOp(result, op, lhs, rhs, loc=loc)
        if op in ("icmp", "fcmp"):
            predicate = tokens.next()
            value_type = self.parse_type(tokens)
            lhs = self.parse_value(value_type, tokens)
            tokens.expect(",")
            rhs = self.parse_value(value_type, tokens)
            result = self._result_register(result_name, ty.I1)
            cls = inst.ICmp if op == "icmp" else inst.FCmp
            return cls(result, predicate, lhs, rhs, loc=loc)
        if op in inst.CAST_KINDS:
            _src_type, value = self.parse_typed_value(tokens)
            tokens.expect("to")
            target = self.parse_type(tokens)
            result = self._result_register(result_name, target)
            return inst.Cast(result, op, value, loc=loc)
        if op == "select":
            _cond_type, condition = self.parse_typed_value(tokens)
            tokens.expect(",")
            true_type, if_true = self.parse_typed_value(tokens)
            tokens.expect(",")
            _false_type, if_false = self.parse_typed_value(tokens)
            result = self._result_register(result_name, true_type)
            return inst.Select(result, condition, if_true, if_false,
                               loc=loc)
        if op == "call":
            ret_type = self.parse_type(tokens)
            callee_token = tokens.next()
            tokens.expect("(")
            args = []
            arg_types = []
            while not tokens.accept(")"):
                arg_type, arg = self.parse_typed_value(tokens)
                args.append(arg)
                arg_types.append(arg_type)
                tokens.accept(",")
            if callee_token.startswith("@"):
                callee = self._global_ref(callee_token[1:])
                signature = callee.ftype
            else:
                callee = self.parse_value(
                    ty.PointerType(ty.FunctionType(ret_type, arg_types)),
                    _Tokens(callee_token, tokens.line_no))
                signature = ty.FunctionType(ret_type, arg_types)
            result = None
            if result_name is not None:
                result = self._result_register(result_name, ret_type)
            return inst.Call(result, callee, args, signature, loc=loc)
        if op == "phi":
            value_type = self.parse_type(tokens)
            incoming: list[tuple[Block, object]] = []
            result = self._result_register(result_name, value_type)
            phi = inst.Phi(result, [], loc=loc)
            pairs: list[tuple[str, object]] = []
            while tokens.accept("["):
                value = self.parse_value(value_type, tokens)
                tokens.expect(",")
                label = tokens.next()[1:]
                tokens.expect("]")
                pairs.append((label, value))
                tokens.accept(",")

            def fixup(phi=phi, pairs=pairs):
                phi.incoming = [(self._block_ref(label), value)
                                for label, value in pairs]
            self.pending.append(fixup)
            return phi
        if op == "br":
            if tokens.accept("label"):
                target = self._block_ref(tokens.next()[1:])
                return inst.Br(target, loc=loc)
            _cond_type, condition = self.parse_typed_value(tokens)
            tokens.expect(",")
            tokens.expect("label")
            if_true = self._block_ref(tokens.next()[1:])
            tokens.expect(",")
            tokens.expect("label")
            if_false = self._block_ref(tokens.next()[1:])
            return inst.CondBr(condition, if_true, if_false, loc=loc)
        if op == "switch":
            _value_type, value = self.parse_typed_value(tokens)
            tokens.expect(",")
            tokens.expect("label")
            default = self._block_ref(tokens.next()[1:])
            tokens.expect("[")
            cases = []
            while not tokens.accept("]"):
                self.parse_type(tokens)
                case_value = int(tokens.next())
                tokens.expect(",")
                tokens.expect("label")
                cases.append((case_value,
                              self._block_ref(tokens.next()[1:])))
            return inst.Switch(value, default, cases, loc=loc)
        if op == "ret":
            if tokens.accept("void"):
                return inst.Ret(None, loc=loc)
            _value_type, value = self.parse_typed_value(tokens)
            return inst.Ret(value, loc=loc)
        if op == "unreachable":
            return inst.Unreachable(loc=loc)
        raise IRParseError(f"unknown instruction {op!r}")


def _decode_ir_string(token: str) -> bytes:
    body = token[2:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        if body[i] == "\\":
            out.append(int(body[i + 1:i + 3], 16))
            i += 3
        else:
            out.append(ord(body[i]))
            i += 1
    return bytes(out)


def parse_module(text: str) -> Module:
    """Parse printer-dialect IR text into a Module."""
    return ModuleParser(text).parse()
