"""Textual IR printer (LLVM-assembly flavoured).

Round-trips with :mod:`repro.ir.parser`, which the test suite uses to check
that no information is lost between the front end and the executors.
"""

from __future__ import annotations

from . import instructions as inst
from . import types as ty
from .module import Function, Module
from .values import Value


def format_value(value: Value | None) -> str:
    if value is None:
        return "void"
    return value.short()


def format_typed(value: Value) -> str:
    return f"{value.type} {value.short()}"


def format_instruction(instruction: inst.Instruction) -> str:
    head = ""
    if instruction.result is not None:
        head = f"%{instruction.result.name} = "
    body = _body(instruction)
    return head + body


def _body(i: inst.Instruction) -> str:
    if isinstance(i, inst.Alloca):
        return f"alloca {i.allocated_type} ; var {i.var_name}"
    if isinstance(i, inst.Load):
        return f"load {i.result.type}, {format_typed(i.pointer)}"
    if isinstance(i, inst.Store):
        return f"store {format_typed(i.value)}, {format_typed(i.pointer)}"
    if isinstance(i, inst.Gep):
        parts = ", ".join(format_typed(x) for x in i.indices)
        return (f"getelementptr {i.base.type.pointee}, "
                f"{format_typed(i.base)}, {parts}")
    if isinstance(i, inst.BinOp):
        return f"{i.op} {format_typed(i.lhs)}, {i.rhs.short()}"
    if isinstance(i, inst.ICmp):
        return f"icmp {i.predicate} {format_typed(i.lhs)}, {i.rhs.short()}"
    if isinstance(i, inst.FCmp):
        return f"fcmp {i.predicate} {format_typed(i.lhs)}, {i.rhs.short()}"
    if isinstance(i, inst.Cast):
        return f"{i.kind} {format_typed(i.value)} to {i.result.type}"
    if isinstance(i, inst.Select):
        return (f"select {format_typed(i.condition)}, "
                f"{format_typed(i.if_true)}, {format_typed(i.if_false)}")
    if isinstance(i, inst.Call):
        args = ", ".join(format_typed(a) for a in i.args)
        ret = i.signature.ret
        return f"call {ret} {i.callee.short()}({args})"
    if isinstance(i, inst.Phi):
        pairs = ", ".join(
            f"[ {value.short()}, %{block.label} ]"
            for block, value in i.incoming)
        return f"phi {i.result.type} {pairs}"
    if isinstance(i, inst.Br):
        return f"br label %{i.target.label}"
    if isinstance(i, inst.CondBr):
        return (f"br {format_typed(i.condition)}, "
                f"label %{i.if_true.label}, label %{i.if_false.label}")
    if isinstance(i, inst.Switch):
        cases = " ".join(
            f"i64 {value}, label %{block.label}" for value, block in i.cases)
        return (f"switch {format_typed(i.value)}, "
                f"label %{i.default.label} [ {cases} ]")
    if isinstance(i, inst.Ret):
        if i.value is None:
            return "ret void"
        return f"ret {format_typed(i.value)}"
    if isinstance(i, inst.Unreachable):
        return "unreachable"
    raise TypeError(f"cannot print {type(i).__name__}")


def print_function(func: Function) -> str:
    params = ", ".join(
        f"{p.type} %{p.name}" for p in func.params)
    if func.ftype.is_varargs:
        params = f"{params}, ..." if params else "..."
    header = f"define {func.ftype.ret} @{func.name}({params})"
    if not func.is_definition:
        return f"declare {func.ftype.ret} @{func.name}({params})"
    lines = [header + " {"]
    for block in func.blocks:
        lines.append(f"{block.label}:")
        for instruction in block.instructions:
            loc = ""
            if instruction.loc.line:
                loc = f"  ; {instruction.loc}"
            lines.append(f"  {format_instruction(instruction)}{loc}")
    lines.append("}")
    return "\n".join(lines)


def print_global(gvar) -> str:
    kind = "constant" if gvar.is_constant else "global"
    if gvar.is_external:
        kind = "external " + kind
    if gvar.initializer is not None:
        init = gvar.initializer.short()
    elif gvar.zero_initialized:
        init = "zeroinitializer"
    else:
        init = "undef"
    notes = []
    if gvar.zero_initialized:
        notes.append("common")
    if gvar.loc is not None and getattr(gvar.loc, "line", 0):
        notes.append(str(gvar.loc))
    comment = f" ; {' '.join(notes)}" if notes else ""
    return f"@{gvar.name} = {kind} {gvar.value_type} {init}{comment}"


def print_struct(struct: ty.StructType) -> str:
    if struct.is_opaque:
        return f"%{struct.name} = type opaque"
    keyword = "union" if struct.is_union else "type"
    fields = ", ".join(str(field.type) for field in struct.fields)
    # Field names reach allocation labels (objects.StructObject) and
    # therefore bug messages; carry them so the parser can restore them.
    names = " ".join(field.name for field in struct.fields)
    tail = f" ; fields {names}" if names else ""
    return f"%{struct.name} = {keyword} {{ {fields} }}{tail}"


def print_module(module: Module) -> str:
    chunks = [f"; module {module.name}"]
    for struct in module.structs.values():
        chunks.append(print_struct(struct))
    for gvar in module.globals.values():
        chunks.append(print_global(gvar))
    for func in module.functions.values():
        chunks.append(print_function(func))
    return "\n\n".join(chunks) + "\n"
