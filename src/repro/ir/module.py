"""IR containers: basic blocks, functions, and modules.

A :class:`Module` is the unit of execution.  Running a C program means
linking its module with the libc module (`Module.link`) and handing the
result to an executor — the managed Safe Sulong engine, or the native
machine with or without sanitizer instrumentation.
"""

from __future__ import annotations

from . import types as ty
from .instructions import Instruction, Phi
from .values import GlobalValue, GlobalVariable, VirtualRegister


class Block:
    """A basic block: a label plus a list of instructions ending in a
    terminator."""

    __slots__ = ("label", "instructions", "function")

    def __init__(self, label: str):
        self.label = label
        self.instructions: list[Instruction] = []
        self.function: Function | None = None

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> list["Block"]:
        terminator = self.terminator
        return terminator.successors() if terminator else []

    def phis(self) -> list[Phi]:
        result = []
        for inst in self.instructions:
            if isinstance(inst, Phi):
                result.append(inst)
            else:
                break
        return result

    def __repr__(self) -> str:
        return f"<Block {self.label}: {len(self.instructions)} insts>"


class Function(GlobalValue):
    """A function definition or declaration.

    Declarations (``is_definition == False``) must be resolved at link time
    or provided as intrinsics by the runtime.
    """

    def __init__(self, name: str, ftype: ty.FunctionType,
                 param_names: list[str] | None = None, loc=None):
        self.name = name
        self.ftype = ftype
        self.type = ty.PointerType(ftype)
        self.loc = loc
        self.blocks: list[Block] = []
        names = param_names or [f"arg{i}" for i in range(len(ftype.params))]
        self.params = [
            VirtualRegister(pname, ptype)
            for pname, ptype in zip(names, ftype.params)
        ]

    @property
    def is_definition(self) -> bool:
        return bool(self.blocks)

    @property
    def entry(self) -> Block:
        return self.blocks[0]

    def add_block(self, label: str) -> Block:
        block = Block(self._unique_label(label))
        block.function = self
        self.blocks.append(block)
        return block

    def _unique_label(self, label: str) -> str:
        existing = {b.label for b in self.blocks}
        if label not in existing:
            return label
        index = 1
        while f"{label}.{index}" in existing:
            index += 1
        return f"{label}.{index}"

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def compute_predecessors(self) -> dict[Block, list[Block]]:
        preds: dict[Block, list[Block]] = {block: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def remove_block(self, block: Block) -> None:
        self.blocks.remove(block)

    def __repr__(self) -> str:
        kind = "define" if self.is_definition else "declare"
        return f"<{kind} {self.ftype.ret} @{self.name}>"


class LinkError(Exception):
    """Raised when modules cannot be combined (duplicate or missing
    definitions)."""


class Module:
    """A translation unit (or the result of linking several of them)."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.globals: dict[str, GlobalVariable] = {}
        self.functions: dict[str, Function] = {}
        self.structs: dict[str, ty.StructType] = {}

    def add_global(self, gvar: GlobalVariable) -> GlobalVariable:
        if gvar.name in self.globals:
            raise LinkError(f"duplicate global @{gvar.name}")
        self.globals[gvar.name] = gvar
        return gvar

    def add_function(self, func: Function) -> Function:
        existing = self.functions.get(func.name)
        if existing is not None and existing.is_definition and func.is_definition:
            raise LinkError(f"duplicate definition of @{func.name}")
        if existing is None or func.is_definition:
            self.functions[func.name] = func
        return self.functions[func.name]

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise LinkError(f"undefined function @{name}") from None

    def link(self, other: "Module", name: str | None = None) -> "Module":
        """Combine two modules into a new one, resolving declarations
        against definitions (a minimal static linker)."""
        linked = Module(name or f"{self.name}+{other.name}")
        for module in (self, other):
            for gvar in module.globals.values():
                existing = linked.globals.get(gvar.name)
                if existing is None:
                    linked.globals[gvar.name] = gvar
                elif existing.is_external:
                    linked.globals[gvar.name] = gvar
                elif not gvar.is_external:
                    raise LinkError(f"duplicate global @{gvar.name}")
            for struct_name, struct in module.structs.items():
                linked.structs.setdefault(struct_name, struct)
        # Definitions win over declarations; two definitions collide.
        for module in (self, other):
            for func in module.functions.values():
                existing = linked.functions.get(func.name)
                if existing is None:
                    linked.functions[func.name] = func
                elif func.is_definition:
                    if existing.is_definition:
                        raise LinkError(
                            f"duplicate definition of @{func.name}")
                    linked.functions[func.name] = func
        # Re-point calls that referenced declarations at the definitions.
        _resolve_references(linked)
        return linked

    def undefined_functions(self) -> list[str]:
        return sorted(
            name for name, func in self.functions.items()
            if not func.is_definition)

    def __repr__(self) -> str:
        return (f"<Module {self.name}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")


def _resolve_references(module: Module) -> None:
    """After linking, rewrite operands that point at stale Function
    declaration objects so they reference the canonical entry in
    ``module.functions``."""
    canonical = module.functions
    for func in module.functions.values():
        for inst in func.instructions():
            for op in list(inst.operands()):
                if isinstance(op, Function):
                    current = canonical.get(op.name)
                    if current is not None and current is not op:
                        inst.replace_operand(op, current)
