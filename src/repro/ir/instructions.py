"""IR instructions.

The instruction set is a faithful subset of LLVM IR: memory is accessed only
through ``load``/``store``, address arithmetic is explicit via ``gep``, and a
clang ``-O0``-style front end keeps every C local in an ``alloca``.  ``phi``
nodes appear only after the ``mem2reg`` optimization pass runs.
"""

from __future__ import annotations

from .. import source
from . import types as ty
from .values import Value, VirtualRegister


# Integer binary opcodes (signedness is in the opcode, as in LLVM).
INT_BINOPS = frozenset({
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
})
FLOAT_BINOPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "frem"})
ICMP_PREDICATES = frozenset({
    "eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge",
})
FCMP_PREDICATES = frozenset({"oeq", "one", "olt", "ole", "ogt", "oge", "une"})
CAST_KINDS = frozenset({
    "trunc", "zext", "sext", "fptrunc", "fpext", "fptosi", "fptoui",
    "sitofp", "uitofp", "ptrtoint", "inttoptr", "bitcast",
})


class Instruction:
    """Base class for all instructions.

    ``result`` is the virtual register the instruction defines (or ``None``
    for void instructions such as ``store`` and terminators).  ``loc`` is the
    C source location the instruction was generated from.
    """

    __slots__ = ("result", "loc")

    is_terminator = False

    def __init__(self, result: VirtualRegister | None = None,
                 loc: source.SourceLocation = source.UNKNOWN):
        self.result = result
        self.loc = loc

    def operands(self) -> list[Value]:
        """All value operands, for generic traversal by passes."""
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        """Substitute ``old`` with ``new`` everywhere it appears."""
        raise NotImplementedError(type(self).__name__)

    def __repr__(self) -> str:
        from .printer import format_instruction
        return format_instruction(self)


class Alloca(Instruction):
    """Allocate automatic storage for one object of ``allocated_type``."""

    __slots__ = ("allocated_type", "var_name")

    def __init__(self, result: VirtualRegister, allocated_type: ty.IRType,
                 var_name: str = "", loc=source.UNKNOWN):
        super().__init__(result, loc)
        self.allocated_type = allocated_type
        self.var_name = var_name or result.name

    def replace_operand(self, old, new):
        pass


class Load(Instruction):
    """``elide`` is set by the static check-elision pass
    (``opt/elide.py``): 0 = full dynamic checking, 1 = the pointer is
    proven non-null (skip the null check), 2 = additionally proven
    in-bounds of a non-freeable object (skip all access checks).  The
    interpreter and JIT honor it only when the runtime opts in."""

    __slots__ = ("pointer", "elide")

    def __init__(self, result: VirtualRegister, pointer: Value,
                 loc=source.UNKNOWN):
        super().__init__(result, loc)
        self.pointer = pointer
        self.elide = 0

    def operands(self):
        return [self.pointer]

    def replace_operand(self, old, new):
        if self.pointer is old:
            self.pointer = new


class Store(Instruction):
    """``elide`` mirrors :class:`Load`'s static-proof levels."""

    __slots__ = ("value", "pointer", "elide")

    def __init__(self, value: Value, pointer: Value, loc=source.UNKNOWN):
        super().__init__(None, loc)
        self.value = value
        self.pointer = pointer
        self.elide = 0

    def operands(self):
        return [self.value, self.pointer]

    def replace_operand(self, old, new):
        if self.value is old:
            self.value = new
        if self.pointer is old:
            self.pointer = new


class Gep(Instruction):
    """``getelementptr``: typed address arithmetic.

    The first index scales by the size of the pointee; subsequent indices
    step into arrays and structs.  Struct indices must be constants.
    """

    __slots__ = ("base", "indices", "proven_nonnull")

    def __init__(self, result: VirtualRegister, base: Value,
                 indices: list[Value], loc=source.UNKNOWN):
        super().__init__(result, loc)
        self.base = base
        self.indices = list(indices)
        # Set by opt/elide.py: the base is statically proven to be a
        # real object address, so the interpreter/JIT may skip the
        # null/function-pointer dispatch when the runtime opts in.
        self.proven_nonnull = False

    def operands(self):
        return [self.base, *self.indices]

    def replace_operand(self, old, new):
        if self.base is old:
            self.base = new
        self.indices = [new if op is old else op for op in self.indices]


class BinOp(Instruction):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, result: VirtualRegister, op: str, lhs: Value,
                 rhs: Value, loc=source.UNKNOWN):
        if op not in INT_BINOPS and op not in FLOAT_BINOPS:
            raise ValueError(f"unknown binary opcode: {op}")
        super().__init__(result, loc)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def operands(self):
        return [self.lhs, self.rhs]

    def replace_operand(self, old, new):
        if self.lhs is old:
            self.lhs = new
        if self.rhs is old:
            self.rhs = new


class ICmp(Instruction):
    __slots__ = ("predicate", "lhs", "rhs")

    def __init__(self, result: VirtualRegister, predicate: str, lhs: Value,
                 rhs: Value, loc=source.UNKNOWN):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate: {predicate}")
        super().__init__(result, loc)
        self.predicate = predicate
        self.lhs = lhs
        self.rhs = rhs

    def operands(self):
        return [self.lhs, self.rhs]

    def replace_operand(self, old, new):
        if self.lhs is old:
            self.lhs = new
        if self.rhs is old:
            self.rhs = new


class FCmp(Instruction):
    __slots__ = ("predicate", "lhs", "rhs")

    def __init__(self, result: VirtualRegister, predicate: str, lhs: Value,
                 rhs: Value, loc=source.UNKNOWN):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate: {predicate}")
        super().__init__(result, loc)
        self.predicate = predicate
        self.lhs = lhs
        self.rhs = rhs

    def operands(self):
        return [self.lhs, self.rhs]

    def replace_operand(self, old, new):
        if self.lhs is old:
            self.lhs = new
        if self.rhs is old:
            self.rhs = new


class Cast(Instruction):
    __slots__ = ("kind", "value")

    def __init__(self, result: VirtualRegister, kind: str, value: Value,
                 loc=source.UNKNOWN):
        if kind not in CAST_KINDS:
            raise ValueError(f"unknown cast kind: {kind}")
        super().__init__(result, loc)
        self.kind = kind
        self.value = value

    def operands(self):
        return [self.value]

    def replace_operand(self, old, new):
        if self.value is old:
            self.value = new


class Select(Instruction):
    __slots__ = ("condition", "if_true", "if_false")

    def __init__(self, result: VirtualRegister, condition: Value,
                 if_true: Value, if_false: Value, loc=source.UNKNOWN):
        super().__init__(result, loc)
        self.condition = condition
        self.if_true = if_true
        self.if_false = if_false

    def operands(self):
        return [self.condition, self.if_true, self.if_false]

    def replace_operand(self, old, new):
        if self.condition is old:
            self.condition = new
        if self.if_true is old:
            self.if_true = new
        if self.if_false is old:
            self.if_false = new


class Call(Instruction):
    """Direct or indirect call.  ``callee`` is a Function, a GlobalValue
    naming a declared-but-external function, or a register holding a
    function pointer."""

    __slots__ = ("callee", "args", "signature")

    def __init__(self, result: VirtualRegister | None, callee: Value,
                 args: list[Value], signature: ty.FunctionType,
                 loc=source.UNKNOWN):
        super().__init__(result, loc)
        self.callee = callee
        self.args = list(args)
        self.signature = signature

    def operands(self):
        return [self.callee, *self.args]

    def replace_operand(self, old, new):
        if self.callee is old:
            self.callee = new
        self.args = [new if op is old else op for op in self.args]


class Phi(Instruction):
    """SSA phi node; present only in optimized (post-mem2reg) IR."""

    __slots__ = ("incoming",)

    def __init__(self, result: VirtualRegister,
                 incoming: list[tuple["Block", Value]], loc=source.UNKNOWN):
        super().__init__(result, loc)
        self.incoming = list(incoming)

    def operands(self):
        return [value for _, value in self.incoming]

    def replace_operand(self, old, new):
        self.incoming = [
            (block, new if value is old else value)
            for block, value in self.incoming
        ]


class Br(Instruction):
    __slots__ = ("target",)
    is_terminator = True

    def __init__(self, target: "Block", loc=source.UNKNOWN):
        super().__init__(None, loc)
        self.target = target

    def successors(self):
        return [self.target]

    def replace_operand(self, old, new):
        pass


class CondBr(Instruction):
    __slots__ = ("condition", "if_true", "if_false")
    is_terminator = True

    def __init__(self, condition: Value, if_true: "Block", if_false: "Block",
                 loc=source.UNKNOWN):
        super().__init__(None, loc)
        self.condition = condition
        self.if_true = if_true
        self.if_false = if_false

    def operands(self):
        return [self.condition]

    def successors(self):
        return [self.if_true, self.if_false]

    def replace_operand(self, old, new):
        if self.condition is old:
            self.condition = new


class Switch(Instruction):
    __slots__ = ("value", "default", "cases")
    is_terminator = True

    def __init__(self, value: Value, default: "Block",
                 cases: list[tuple[int, "Block"]], loc=source.UNKNOWN):
        super().__init__(None, loc)
        self.value = value
        self.default = default
        self.cases = list(cases)

    def operands(self):
        return [self.value]

    def successors(self):
        return [self.default, *[block for _, block in self.cases]]

    def replace_operand(self, old, new):
        if self.value is old:
            self.value = new


class Ret(Instruction):
    __slots__ = ("value",)
    is_terminator = True

    def __init__(self, value: Value | None = None, loc=source.UNKNOWN):
        super().__init__(None, loc)
        self.value = value

    def operands(self):
        return [self.value] if self.value is not None else []

    def successors(self):
        return []

    def replace_operand(self, old, new):
        if self.value is old:
            self.value = new


class Unreachable(Instruction):
    is_terminator = True

    def __init__(self, loc=source.UNKNOWN):
        super().__init__(None, loc)

    def successors(self):
        return []

    def replace_operand(self, old, new):
        pass


def gep_offset(pointee: ty.IRType, index_values: list[int]) -> tuple[int, ty.IRType]:
    """Compute the byte offset and the final element type of a GEP.

    ``index_values`` are the evaluated (integer) indices.  The first index
    scales by the size of ``pointee``; the rest navigate aggregates.  Both
    executors (managed and native) share this single definition so their
    address arithmetic cannot diverge.
    """
    offset = index_values[0] * pointee.size
    current = pointee
    for index in index_values[1:]:
        if isinstance(current, ty.ArrayType):
            offset += index * current.elem.size
            current = current.elem
        elif isinstance(current, ty.StructType):
            field = current.fields[index]
            offset += field.offset
            current = field.type
        else:
            raise TypeError(f"cannot GEP into {current}")
    return offset, current
