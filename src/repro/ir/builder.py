"""A convenience builder for constructing IR, used by the C front end,
the optimizer (when it materializes new code), and tests."""

from __future__ import annotations

from .. import source
from . import instructions as inst
from . import types as ty
from .module import Block, Function
from .values import (ConstFloat, ConstInt, ConstNull, Value, VirtualRegister)


class IRBuilder:
    def __init__(self, function: Function):
        self.function = function
        self.block: Block | None = None
        self.loc: source.SourceLocation = source.UNKNOWN
        self._counter = 0
        self._names: set[str] = {p.name for p in function.params}
        self._alloca_count = 0

    # -- positioning -------------------------------------------------------

    def set_block(self, block: Block) -> None:
        self.block = block

    def set_loc(self, loc: source.SourceLocation | None) -> None:
        if loc is not None:
            self.loc = loc

    def new_block(self, label: str) -> Block:
        return self.function.add_block(label)

    @property
    def terminated(self) -> bool:
        return self.block is not None and self.block.terminator is not None

    # -- registers ---------------------------------------------------------

    def fresh(self, type: ty.IRType, hint: str = "t") -> VirtualRegister:
        name = hint
        while name in self._names:
            self._counter += 1
            name = f"{hint}{self._counter}"
        self._names.add(name)
        return VirtualRegister(name, type)

    def emit(self, instruction: inst.Instruction) -> Value | None:
        if self.block is None:
            raise RuntimeError("builder has no current block")
        if self.block.terminator is not None:
            # Dead code after a return/branch: drop it, as clang does.
            return instruction.result
        self.block.instructions.append(instruction)
        return instruction.result

    # -- memory ------------------------------------------------------------

    def alloca(self, allocated: ty.IRType, name: str = "local") -> Value:
        """Allocate a local.  Allocas are hoisted to the top of the entry
        block (as clang -O0 does), so locals declared inside loops occupy
        one stack slot instead of growing the frame per iteration."""
        reg = self.fresh(ty.PointerType(allocated), f"{name}.addr")
        instruction = inst.Alloca(reg, allocated, var_name=name,
                                  loc=self.loc)
        entry = self.function.blocks[0]
        entry.instructions.insert(self._alloca_count, instruction)
        self._alloca_count += 1
        return reg

    def load(self, pointer: Value) -> Value:
        pointee = pointer.type.pointee
        reg = self.fresh(pointee)
        self.emit(inst.Load(reg, pointer, loc=self.loc))
        return reg

    def store(self, value: Value, pointer: Value) -> None:
        self.emit(inst.Store(value, pointer, loc=self.loc))

    def gep(self, base: Value, indices: list[Value],
            result_type: ty.IRType | None = None) -> Value:
        if result_type is None:
            index_values = []
            for index in indices:
                index_values.append(
                    index.value if isinstance(index, ConstInt) else 0)
            _, final = inst.gep_offset(base.type.pointee, index_values)
            result_type = ty.PointerType(final)
        reg = self.fresh(result_type)
        self.emit(inst.Gep(reg, base, indices, loc=self.loc))
        return reg

    # -- arithmetic --------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value) -> Value:
        reg = self.fresh(lhs.type)
        self.emit(inst.BinOp(reg, op, lhs, rhs, loc=self.loc))
        return reg

    def icmp(self, predicate: str, lhs: Value, rhs: Value) -> Value:
        reg = self.fresh(ty.I1)
        self.emit(inst.ICmp(reg, predicate, lhs, rhs, loc=self.loc))
        return reg

    def fcmp(self, predicate: str, lhs: Value, rhs: Value) -> Value:
        reg = self.fresh(ty.I1)
        self.emit(inst.FCmp(reg, predicate, lhs, rhs, loc=self.loc))
        return reg

    def cast(self, kind: str, value: Value, to: ty.IRType) -> Value:
        reg = self.fresh(to)
        self.emit(inst.Cast(reg, kind, value, loc=self.loc))
        return reg

    def select(self, cond: Value, if_true: Value, if_false: Value) -> Value:
        reg = self.fresh(if_true.type)
        self.emit(inst.Select(reg, cond, if_true, if_false, loc=self.loc))
        return reg

    # -- control flow ------------------------------------------------------

    def call(self, callee: Value, args: list[Value],
             signature: ty.FunctionType | None = None) -> Value | None:
        if signature is None:
            callee_type = callee.type
            signature = callee_type.pointee  # type: ignore[union-attr]
        result = None
        if not isinstance(signature.ret, ty.VoidType):
            result = self.fresh(signature.ret)
        self.emit(inst.Call(result, callee, args, signature, loc=self.loc))
        return result

    def br(self, target: Block) -> None:
        self.emit(inst.Br(target, loc=self.loc))

    def cond_br(self, condition: Value, if_true: Block,
                if_false: Block) -> None:
        self.emit(inst.CondBr(condition, if_true, if_false, loc=self.loc))

    def switch(self, value: Value, default: Block,
               cases: list[tuple[int, Block]]) -> None:
        self.emit(inst.Switch(value, default, cases, loc=self.loc))

    def ret(self, value: Value | None = None) -> None:
        self.emit(inst.Ret(value, loc=self.loc))

    def unreachable(self) -> None:
        self.emit(inst.Unreachable(loc=self.loc))

    # -- constants ---------------------------------------------------------

    def const_int(self, type: ty.IntType, value: int) -> ConstInt:
        return ConstInt(type, value)

    def const_float(self, type: ty.FloatType, value: float) -> ConstFloat:
        return ConstFloat(type, value)

    def null(self, pointer_type: ty.PointerType) -> ConstNull:
        return ConstNull(pointer_type)
