"""Deep-copy one function's IR.

``Module.link`` shares :class:`Function` objects between the linked
result and its source modules — notably the process-wide libc module —
so any pass that *rewrites* IR (the safe-tier optimizer, unlike the
annotation-only elision pass) must work on a private copy.  The clone
shares everything immutable (types, constants, global/function
references, source locations) and copies everything mutable: blocks,
instructions, and virtual registers.  Check-elision annotations
(``elide`` / ``proven_nonnull``) ride along.
"""

from __future__ import annotations

from . import instructions as inst
from .module import Block, Function
from .values import VirtualRegister


def clone_function(function: Function) -> Function:
    clone = Function(function.name, function.ftype,
                     [param.name for param in function.params],
                     loc=getattr(function, "loc", None))
    reg_map: dict[int, VirtualRegister] = {
        id(old): new for old, new in zip(function.params, clone.params)}
    block_map: dict[Block, Block] = {}
    for block in function.blocks:
        new_block = Block(block.label)
        new_block.function = clone
        clone.blocks.append(new_block)
        block_map[block] = new_block

    def value(operand):
        if isinstance(operand, VirtualRegister):
            mapped = reg_map.get(id(operand))
            if mapped is None:
                mapped = VirtualRegister(operand.name, operand.type)
                reg_map[id(operand)] = mapped
            return mapped
        return operand  # constants / globals / functions are shared

    for block in function.blocks:
        target = block_map[block]
        for instruction in block.instructions:
            target.instructions.append(
                _clone_instruction(instruction, value, block_map))
    return clone


def _clone_instruction(instruction, value, block_map):
    loc = instruction.loc
    if isinstance(instruction, inst.Load):
        copy = inst.Load(value(instruction.result),
                         value(instruction.pointer), loc)
        copy.elide = instruction.elide
        return copy
    if isinstance(instruction, inst.Store):
        copy = inst.Store(value(instruction.value),
                          value(instruction.pointer), loc)
        copy.elide = instruction.elide
        return copy
    if isinstance(instruction, inst.Gep):
        copy = inst.Gep(value(instruction.result), value(instruction.base),
                        [value(index) for index in instruction.indices], loc)
        copy.proven_nonnull = instruction.proven_nonnull
        return copy
    if isinstance(instruction, inst.Alloca):
        return inst.Alloca(value(instruction.result),
                           instruction.allocated_type,
                           instruction.var_name, loc)
    if isinstance(instruction, inst.BinOp):
        return inst.BinOp(value(instruction.result), instruction.op,
                          value(instruction.lhs), value(instruction.rhs),
                          loc)
    if isinstance(instruction, inst.ICmp):
        return inst.ICmp(value(instruction.result), instruction.predicate,
                         value(instruction.lhs), value(instruction.rhs),
                         loc)
    if isinstance(instruction, inst.FCmp):
        return inst.FCmp(value(instruction.result), instruction.predicate,
                         value(instruction.lhs), value(instruction.rhs),
                         loc)
    if isinstance(instruction, inst.Cast):
        return inst.Cast(value(instruction.result), instruction.kind,
                         value(instruction.value), loc)
    if isinstance(instruction, inst.Select):
        return inst.Select(value(instruction.result),
                           value(instruction.condition),
                           value(instruction.if_true),
                           value(instruction.if_false), loc)
    if isinstance(instruction, inst.Call):
        return inst.Call(
            value(instruction.result)
            if instruction.result is not None else None,
            value(instruction.callee),
            [value(arg) for arg in instruction.args],
            instruction.signature, loc)
    if isinstance(instruction, inst.Phi):
        return inst.Phi(value(instruction.result),
                        [(block_map[block], value(incoming))
                         for block, incoming in instruction.incoming], loc)
    if isinstance(instruction, inst.Br):
        return inst.Br(block_map[instruction.target], loc)
    if isinstance(instruction, inst.CondBr):
        return inst.CondBr(value(instruction.condition),
                           block_map[instruction.if_true],
                           block_map[instruction.if_false], loc)
    if isinstance(instruction, inst.Switch):
        return inst.Switch(value(instruction.value),
                           block_map[instruction.default],
                           [(case, block_map[block])
                            for case, block in instruction.cases], loc)
    if isinstance(instruction, inst.Ret):
        return inst.Ret(value(instruction.value)
                        if instruction.value is not None else None, loc)
    if isinstance(instruction, inst.Unreachable):
        return inst.Unreachable(loc)
    raise TypeError(f"cannot clone {type(instruction).__name__}")
