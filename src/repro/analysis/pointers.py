"""Null-pointer and points-to-region analysis.

Tracks, per pointer-typed register, a :class:`PointerFact`:

* nullness — ``NULL`` (definitely null), ``NONNULL`` (definitely not
  null), or ``MAYBE``;
* region — the single allocation the pointer provably points into
  (an alloca site, a global, or a malloc/calloc/realloc call site),
  when known, with the allocation's byte size when that is constant;
* offset — a signed byte-offset :class:`Interval` into the region.

Facts propagate through ``alloca``/``gep``/``phi``/``select``/casts and
are refined along ``p == NULL`` / ``p != NULL`` branch edges.  The lint
driver consumes the facts for definite-NULL-dereference and constant
out-of-bounds reports; the elision pass consumes them as *proofs* that
a dynamic check cannot fire.
"""

from __future__ import annotations

from ..ir import instructions as inst
from ..ir import types as irt
from ..ir import values as irv
from ..ir.module import Block, Function
from .cfg import ControlFlowGraph
from .dataflow import (DataflowAnalysis, resolve_branch_compare,
                       scalar_slots, solve)
from .intervals import Interval, IntervalAnalysis

NULL = "null"
NONNULL = "nonnull"
MAYBE = "maybe"

# Heap-allocating libc entry points the analysis understands.
ALLOCATORS = {"malloc", "calloc", "realloc", "aligned_alloc"}


class Region:
    """One allocation, identified by its site (nominal identity)."""

    __slots__ = ("kind", "site", "size", "label")

    def __init__(self, kind: str, site: object, size: int | None,
                 label: str):
        self.kind = kind  # "stack" | "global" | "heap" | "param"
        self.site = site  # Alloca | GlobalVariable | Call | param reg
        self.size = size  # byte size when statically known
        self.label = label

    def __eq__(self, other) -> bool:
        return isinstance(other, Region) and self.site is other.site

    def __hash__(self) -> int:
        return hash(id(self.site))

    def __repr__(self) -> str:
        size = "?" if self.size is None else str(self.size)
        return f"<Region {self.kind} {self.label} size={size}>"

    @property
    def freeable(self) -> bool:
        return self.kind == "heap"


class PointerFact:
    """Abstract value of one pointer-typed register."""

    __slots__ = ("nullness", "region", "offset")

    def __init__(self, nullness: str, region: Region | None = None,
                 offset: Interval | None = None):
        self.nullness = nullness
        self.region = region
        self.offset = offset if region is not None else None

    def __eq__(self, other) -> bool:
        return isinstance(other, PointerFact) and \
            self.nullness == other.nullness and \
            self.region == other.region and self.offset == other.offset

    def __hash__(self) -> int:
        return hash((self.nullness, self.region, self.offset))

    def __repr__(self) -> str:
        parts = [self.nullness]
        if self.region is not None:
            parts.append(repr(self.region))
            parts.append(f"+{self.offset}")
        return f"<PointerFact {' '.join(parts)}>"

    def join(self, other: "PointerFact") -> "PointerFact":
        nullness = self.nullness if self.nullness == other.nullness \
            else MAYBE
        if self.region is not None and self.region == other.region:
            offset = self.offset.join(other.offset) \
                if self.offset is not None and other.offset is not None \
                else None
            return PointerFact(nullness, self.region, offset)
        return PointerFact(nullness)

    def shifted(self, delta: Interval) -> "PointerFact":
        offset = self.offset.add(delta) if self.offset is not None else None
        return PointerFact(self.nullness, self.region, offset)


TOP_FACT = PointerFact(MAYBE)
NULL_FACT = PointerFact(NULL)


class PointerAnalysis(DataflowAnalysis):
    """Forward analysis; state maps ``id(register) -> PointerFact``.
    Missing key = top (MAYBE, unknown region) — so a register whose
    definition does not dominate a use washes out to top on the paths
    that bypass the definition, which keeps every stored fact a proof.
    """

    def __init__(self, function: Function,
                 intervals: IntervalAnalysis | None = None,
                 cfg: ControlFlowGraph | None = None,
                 summaries: dict | None = None,
                 param_regions: bool = False):
        super().__init__()
        self.function = function
        self.cfg = cfg or ControlFlowGraph(function)
        self.intervals = intervals or \
            IntervalAnalysis(function, self.cfg).run()
        # name -> FunctionSummary (interprocedural mode): callee return
        # facts (fresh-heap wrappers, never-null / always-null returns)
        # become pointer facts at call sites.
        self.summaries = summaries or {}
        # Seed one "param" pseudo-region per pointer parameter, so the
        # summary computation can follow a parameter through copies and
        # -O0 slot reloads.  Param regions are *identities*, not safety
        # proofs: their base address may be null or garbage, so the
        # elision pass never accepts them (see opt/elide.py).
        self.param_regions = param_regions
        self.result = None
        # Final fact per register definition (regions are flow-invariant
        # in SSA, so these are exact for region queries).
        self.at_def: dict[int, PointerFact] = {}
        # Non-escaping pointer-typed stack slots (-O0 IR reloads every
        # local at each use); contents are tracked through the state
        # under ("mem", id(slot register)) keys, as a PointerFact or as
        # ("alias", register) — see IntervalAnalysis.slots.
        self.slots = scalar_slots(
            function, lambda t: isinstance(t, irt.PointerType))
        # Block currently being transferred/replayed; used to look up
        # the matching interval state for gep index refinement.
        self._current_block: Block | None = None

    def run(self) -> "PointerAnalysis":
        self.result = solve(self, self.function, self.cfg)
        # Parameters are not instruction results, so the at_def replay
        # below never records them; flow-insensitive queries
        # (region_of, summary collection) still need their seed facts.
        for key, fact in self.boundary_state(self.function).items():
            self.at_def.setdefault(key, fact)
        for block, state in self.result.input.items():
            self._current_block = block
            state = dict(state)
            for instruction in block.instructions:
                self._transfer_instruction(instruction, state)
                result = instruction.result
                if result is not None and id(result) in state:
                    existing = self.at_def.get(id(result))
                    fact = state[id(result)]
                    self.at_def[id(result)] = fact if existing is None \
                        else existing.join(fact)
        return self

    # -- queries ------------------------------------------------------------

    def fact_for(self, value: irv.Value,
                 state: dict | None = None) -> PointerFact:
        if isinstance(value, irv.VirtualRegister):
            if state is not None and id(value) in state:
                return state[id(value)]
            return self.at_def.get(id(value), TOP_FACT)
        return self._constant_fact(value)

    def region_of(self, value: irv.Value) -> Region | None:
        return self.fact_for(value).region

    def visit(self, callback) -> None:
        """Replay the fixpoint over every reachable instruction, calling
        ``callback(block, instruction, state_before)``."""
        if self.result is None:
            self.run()
        for block in self.cfg.reverse_postorder:
            if block not in self.result.input:
                continue
            self._current_block = block
            state = dict(self.result.input[block])
            for instruction in block.instructions:
                callback(block, instruction, state)
                self._transfer_instruction(instruction, state)

    # -- constants ----------------------------------------------------------

    def _constant_fact(self, value: irv.Value) -> PointerFact:
        if isinstance(value, irv.ConstNull):
            return NULL_FACT
        if isinstance(value, irv.GlobalVariable):
            return PointerFact(NONNULL, self._global_region(value),
                               Interval.const(0))
        if isinstance(value, irv.ConstGEP):
            base = self._constant_fact(value.base)
            return base.shifted(Interval.const(value.byte_offset))
        if isinstance(value, Function):
            return PointerFact(NONNULL)
        if isinstance(value, irv.ConstZero):
            return NULL_FACT
        return TOP_FACT

    def _global_region(self, gvar: irv.GlobalVariable) -> Region:
        try:
            size = gvar.value_type.size
        except TypeError:
            size = None
        return Region("global", gvar, size, f"@{gvar.name}")

    # -- lattice hooks ------------------------------------------------------

    def boundary_state(self, function: Function):
        if not self.param_regions:
            return {}
        state = {}
        for param in function.params:
            if isinstance(param.type, irt.PointerType):
                region = Region("param", param, None, f"%{param.name}")
                state[id(param)] = PointerFact(MAYBE, region,
                                               Interval.const(0))
        return state

    def join(self, states):
        if not states:
            return {}
        if len(states) == 1:
            return dict(states[0])
        merged = {}
        for key in states[0]:
            if not all(key in state for state in states[1:]):
                continue
            if isinstance(key, tuple):
                values = [state[key] for state in states]
                if all(value == values[0] for value in values[1:]):
                    merged[key] = values[0]  # e.g. the same alias
                    continue
                fact = None
                for state in states:
                    resolved = self._slot_fact(state[key], state)
                    fact = resolved if fact is None else fact.join(resolved)
                if fact != TOP_FACT:
                    merged[key] = fact
                continue
            fact = states[0][key]
            for state in states[1:]:
                fact = fact.join(state[key])
            if fact != TOP_FACT:
                merged[key] = fact
        return merged

    def merge(self, block: Block, incoming):
        merged = self.join([state for _, state in incoming])
        by_pred = dict(incoming)
        for phi in block.phis():
            if not isinstance(phi.result.type, irt.PointerType):
                continue
            fact = None
            for pred, value in phi.incoming:
                if pred not in by_pred:
                    continue
                arm = self.fact_for(value, by_pred[pred])
                fact = arm if fact is None else fact.join(arm)
            if fact is not None and fact != TOP_FACT:
                merged[id(phi.result)] = fact
            else:
                merged.pop(id(phi.result), None)
        return merged

    def widen(self, block: Block, old, new):
        # The region/nullness components have finite height; only the
        # offset intervals can grow forever.
        widened = {}
        for key, fact in new.items():
            if key not in old:
                continue
            previous = old[key]
            if isinstance(key, tuple):
                if previous == fact:
                    widened[key] = fact
                    continue
                previous = self._slot_fact(previous, old)
                fact = self._slot_fact(fact, new)
            if previous.region is not None and \
                    previous.region == fact.region and \
                    previous.offset is not None and fact.offset is not None:
                fact = PointerFact(fact.nullness, fact.region,
                                   previous.offset.widen(fact.offset))
            fact = previous.join(fact) if fact != previous else fact
            if fact != TOP_FACT:
                widened[key] = fact
        return widened

    def transfer(self, block: Block, state):
        self._current_block = block
        state = dict(state)
        for instruction in block.instructions:
            self._transfer_instruction(instruction, state)
        return state

    def _transfer_instruction(self, instruction, state) -> None:
        result = instruction.result
        if isinstance(instruction, inst.Alloca):
            try:
                size = instruction.allocated_type.size
            except TypeError:
                size = None
            region = Region("stack", instruction, size,
                            f"%{instruction.var_name}")
            state[id(result)] = PointerFact(NONNULL, region,
                                            Interval.const(0))
            return
        if isinstance(instruction, inst.Gep):
            self._transfer_gep(instruction, state)
            return
        if isinstance(instruction, inst.Cast):
            self._transfer_cast(instruction, state)
            return
        if isinstance(instruction, inst.Select) and \
                isinstance(result.type, irt.PointerType):
            fact = self.fact_for(instruction.if_true, state).join(
                self.fact_for(instruction.if_false, state))
            self._set(state, result, fact)
            return
        if isinstance(instruction, inst.Call):
            self._transfer_call(instruction, state)
            return
        if isinstance(instruction, (inst.Load, inst.Store)):
            # A completed access proves the pointer was non-null; later
            # instructions on this path may rely on it.
            pointer = instruction.pointer
            if isinstance(pointer, irv.VirtualRegister):
                fact = state.get(id(pointer), TOP_FACT)
                if fact.nullness == MAYBE:
                    state[id(pointer)] = PointerFact(
                        NONNULL, fact.region, fact.offset)
            if isinstance(instruction, inst.Store):
                key = self._slot_key(pointer)
                if key is not None:
                    value = instruction.value
                    if isinstance(value, irv.VirtualRegister):
                        state[key] = ("alias", value)
                    else:
                        fact = self._constant_fact(value)
                        if fact == TOP_FACT:
                            state.pop(key, None)
                        else:
                            state[key] = fact
                return
            if isinstance(result.type, irt.PointerType):
                key = self._slot_key(pointer)
                if key is not None:
                    fact = self._slot_fact(state.get(key), state)
                    self._set(state, result, fact)
                    # Re-alias so later refinements of this loaded copy
                    # reach subsequent reloads of the same slot.
                    state[key] = ("alias", result)
                else:
                    state.pop(id(result), None)  # memory is untracked
            return
        if isinstance(instruction, inst.Phi):
            return  # handled edge-wise in merge()
        if result is not None and isinstance(result.type, irt.PointerType):
            state.pop(id(result), None)

    def _transfer_gep(self, instruction: inst.Gep, state) -> None:
        base = self.fact_for(instruction.base, state)
        delta = self._gep_delta(instruction, state)
        fact = base.shifted(delta) if delta is not None \
            else PointerFact(base.nullness, base.region, None)
        # gep never turns a null pointer into a valid one, nor a valid
        # region pointer into null; nullness carries over unchanged.
        self._set(state, instruction.result, fact)

    def _gep_delta(self, instruction: inst.Gep, state) -> Interval | None:
        """Byte-offset interval a gep adds to its base, mirroring the
        interpreter's decomposition; ``None`` when unbounded."""
        pointee = instruction.base.type.pointee
        total = Interval.const(0)
        current = pointee
        for position, index in enumerate(instruction.indices):
            if position == 0:
                stride = current.size
            elif isinstance(current, irt.ArrayType):
                stride = current.elem.size
                current = current.elem
            elif isinstance(current, irt.StructType):
                field = current.fields[index.value
                                       if isinstance(index, irv.ConstInt)
                                       else 0]
                total = total.add(Interval.const(field.offset))
                current = field.type
                continue
            else:
                return None
            term = self.intervals.value_interval(
                index, self._interval_state()) \
                if not isinstance(index, irv.ConstInt) \
                else Interval.const(index.signed_value)
            total = total.add(term.scaled(stride))
            if total.is_top:
                return None
        return total

    def _transfer_cast(self, instruction: inst.Cast, state) -> None:
        result = instruction.result
        if not isinstance(result.type, irt.PointerType):
            return
        if instruction.kind == "bitcast":
            # Byte-level region and offset survive a pointer bitcast.
            self._set(state, result,
                      self.fact_for(instruction.value, state))
            return
        if instruction.kind == "inttoptr":
            fact = self.intervals.value_interval(instruction.value, None)
            if fact.is_constant and fact.lo == 0:
                state[id(result)] = NULL_FACT
            else:
                state.pop(id(result), None)
            return
        state.pop(id(result), None)

    def _transfer_call(self, instruction: inst.Call, state) -> None:
        result = instruction.result
        callee = instruction.callee
        name = callee.name if isinstance(callee, Function) else None
        if result is None or not isinstance(result.type, irt.PointerType):
            return
        if name in ALLOCATORS:
            size = self._allocation_size(name, instruction.args)
            region = Region("heap", instruction, size, f"{name}()")
            # The managed allocator never returns NULL (allocation
            # failure aborts the interpreter, §3.2), so the result
            # is provably non-null.
            state[id(result)] = PointerFact(NONNULL, region,
                                            Interval.const(0))
            return
        summary = self.summaries.get(name) if name is not None else None
        if summary is not None:
            # The callee's summarized return facts become pointer facts
            # here: a malloc wrapper yields a fresh heap region at this
            # call site, and never/always-null returns carry over.
            if summary.returns_null == "always":
                state[id(result)] = NULL_FACT
                return
            nullness = NONNULL if summary.returns_null == "never" \
                else MAYBE
            if summary.returns_new_heap:
                region = Region("heap", instruction, summary.ret_size,
                                f"{name}()")
                state[id(result)] = PointerFact(nullness, region,
                                                Interval.const(0))
                return
            if nullness == NONNULL:
                state[id(result)] = PointerFact(NONNULL)
                return
        state.pop(id(result), None)

    def _allocation_size(self, name: str, args) -> int | None:
        if name == "malloc" and args:
            fact = self.intervals.value_interval(args[0], None)
            return fact.lo if fact.is_constant and fact.lo >= 0 else None
        if name == "calloc" and len(args) >= 2:
            count = self.intervals.value_interval(args[0], None)
            size = self.intervals.value_interval(args[1], None)
            if count.is_constant and size.is_constant and \
                    count.lo >= 0 and size.lo >= 0:
                return count.lo * size.lo
        if name == "realloc" and len(args) >= 2:
            fact = self.intervals.value_interval(args[1], None)
            return fact.lo if fact.is_constant and fact.lo >= 0 else None
        if name == "aligned_alloc" and len(args) >= 2:
            fact = self.intervals.value_interval(args[1], None)
            return fact.lo if fact.is_constant and fact.lo >= 0 else None
        return None

    @staticmethod
    def _set(state, register, fact: PointerFact) -> None:
        if fact == TOP_FACT:
            state.pop(id(register), None)
        else:
            state[id(register)] = fact

    # -- tracked stack slots ------------------------------------------------

    def _slot_key(self, pointer) -> tuple | None:
        if isinstance(pointer, irv.VirtualRegister) and \
                id(pointer) in self.slots:
            return ("mem", id(pointer))
        return None

    def _slot_fact(self, entry, state) -> PointerFact:
        if entry is None:
            return TOP_FACT
        if isinstance(entry, tuple):  # ("alias", register)
            return self.fact_for(entry[1], state)
        return entry

    def _interval_state(self) -> dict | None:
        """Interval state at the entry of the block being transferred,
        so gep indices see branch-refined (e.g. loop-bounded) ranges."""
        result = self.intervals.result
        if result is None or self._current_block is None:
            return None
        return result.input.get(self._current_block)

    # -- branch refinement --------------------------------------------------

    def refine_edge(self, pred: Block, succ: Block, state):
        state = super().refine_edge(pred, succ, state)
        if state is None:
            return None
        terminator = pred.terminator
        if not isinstance(terminator, inst.CondBr) or \
                terminator.if_true is terminator.if_false:
            return state
        condition = terminator.condition
        branch = succ is terminator.if_true
        resolved = resolve_branch_compare(condition, branch,
                                          self.definitions)
        if resolved is None:
            return state
        definition, branch = resolved
        if definition.predicate not in ("eq", "ne") or \
                not isinstance(definition.lhs.type, irt.PointerType):
            return state
        equal_edge = branch == (definition.predicate == "eq")
        lhs_fact = self.fact_for(definition.lhs, state)
        rhs_fact = self.fact_for(definition.rhs, state)
        for value, own, other in ((definition.lhs, lhs_fact, rhs_fact),
                                  (definition.rhs, rhs_fact, lhs_fact)):
            if other.nullness != NULL:
                continue
            # Comparison against a definite NULL: the equal edge makes
            # ``value`` NULL, the unequal edge makes it NONNULL.
            implied = NULL if equal_edge else NONNULL
            if own.nullness != MAYBE and own.nullness != implied:
                return None  # contradiction: edge infeasible
            if own.nullness == implied:
                continue
            state = dict(state)
            if implied == NULL:
                state[id(value)] = NULL_FACT
            else:
                state[id(value)] = PointerFact(NONNULL, own.region,
                                               own.offset)
        return state
