"""Generic forward/backward worklist dataflow solver.

An analysis subclasses :class:`DataflowAnalysis` and provides lattice
operations; :func:`solve` runs the worklist to a fixpoint over one
function's CFG.  Conventions shared by every client:

* a block-level state of ``None`` means *unreachable / bottom*;
* ``merge`` receives the per-edge states (so phi nodes can be evaluated
  per incoming edge);
* ``refine_edge`` may sharpen the state along one CFG edge — or return
  ``None`` to declare the edge infeasible (constant branch conditions
  are pruned here, so dead code produces neither facts nor diagnostics);
* loop headers are widening points: ``widen`` is applied there to
  guarantee termination on infinite-height lattices (intervals).
"""

from __future__ import annotations

from typing import Any

from ..ir import instructions as inst
from ..ir import values as irv
from ..ir.module import Block, Function
from .cfg import ControlFlowGraph

State = Any


def definition_map(function: Function) -> dict[int, inst.Instruction]:
    """``id(register) -> defining instruction`` for every register def.

    Registers are keyed by identity (``VirtualRegister`` has no value
    equality and slots forbid attaching attributes)."""
    defs: dict[int, inst.Instruction] = {}
    for block in function.blocks:
        for instruction in block.instructions:
            if instruction.result is not None:
                defs[id(instruction.result)] = instruction
    return defs


def scalar_slots(function: Function, pointee_ok) -> dict[int, "inst.Alloca"]:
    """``id(alloca register) -> alloca`` for every stack slot whose
    address never escapes — every use of the register is a direct load
    or store *through* it — and whose pointee satisfies ``pointee_ok``.

    Unoptimized (-O0 style) IR keeps every local in such a slot and
    reloads it at each use, so a flow-sensitive analysis that ignores
    memory learns nothing across statements.  Non-escaping slots have no
    aliases and cannot be touched by callees, which makes tracking
    their contents through the analysis state sound.
    """
    slots: dict[int, inst.Alloca] = {}
    for block in function.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, inst.Alloca):
                pointee = getattr(instruction.result.type, "pointee", None)
                if pointee is not None and pointee_ok(pointee):
                    slots[id(instruction.result)] = instruction
    if not slots:
        return slots
    for block in function.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, inst.Load):
                continue  # the pointer operand is a direct use
            if isinstance(instruction, inst.Store):
                # Storing *to* the slot is direct; storing the slot's
                # address somewhere publishes it.
                value = instruction.value
                if isinstance(value, irv.VirtualRegister):
                    slots.pop(id(value), None)
                continue
            for operand in instruction.operands():
                if isinstance(operand, irv.VirtualRegister):
                    slots.pop(id(operand), None)
    return slots


def _constant_condition(condition, defs) -> bool | None:
    """Evaluate a branch condition that is statically constant.

    Handles a literal ``i1`` constant and an ``icmp`` whose operands are
    both integer constants (the front end lowers ``if (0)`` to the
    latter).  Returns ``None`` when the condition is not constant.
    """
    if isinstance(condition, irv.ConstInt):
        return condition.value != 0
    if isinstance(condition, irv.VirtualRegister):
        definition = defs.get(id(condition))
        if isinstance(definition, inst.ICmp) and \
                isinstance(definition.lhs, irv.ConstInt) and \
                isinstance(definition.rhs, irv.ConstInt):
            return evaluate_icmp(definition.predicate,
                                 definition.lhs, definition.rhs)
    return None


def _is_compare_chain(value, defs) -> bool:
    """Is ``value`` an i1 compare result, possibly widened through
    zext/sext (zero iff the compare was false)?"""
    while isinstance(value, irv.VirtualRegister):
        definition = defs.get(id(value))
        if isinstance(definition, inst.ICmp):
            return True
        if isinstance(definition, inst.Cast) and \
                definition.kind in ("zext", "sext") and \
                getattr(definition.value.type, "bits", 0) == 1:
            value = definition.value
            continue
        negated = _peel_i1_not(definition)
        if negated is not None:
            value = negated
            continue
        return False
    return False


def _peel_i1_not(definition):
    """The operand a boolean-not computes from, or None.  The front end
    lowers ``!b`` to ``xor i1 b, true``; refinement clients must see
    through it to reach the compare that decides the branch."""
    if not isinstance(definition, inst.BinOp) or definition.op != "xor":
        return None
    if getattr(definition.result.type, "bits", 0) != 1:
        return None
    for operand, other in ((definition.lhs, definition.rhs),
                           (definition.rhs, definition.lhs)):
        if isinstance(other, irv.ConstInt) and other.value != 0:
            return operand
    return None


def resolve_branch_compare(condition, branch: bool, defs,
                           depth: int = 8):
    """Walk a CondBr condition back to the compare that decides it.

    The front end lowers ``if (a < b)`` to ``icmp`` → ``zext`` →
    ``icmp ne …, 0`` → ``br``; a client refining only the syntactic
    condition would constrain the 0/1 temporary and never see ``a``.
    Returns ``(icmp, truth)`` — taking the edge implies the compare
    evaluates to ``truth`` — or ``None``.
    """
    while depth > 0:
        depth -= 1
        if not isinstance(condition, irv.VirtualRegister):
            return None
        definition = defs.get(id(condition))
        if isinstance(definition, inst.Cast) and \
                definition.kind in ("zext", "sext", "trunc") and \
                getattr(definition.value.type, "bits", 0) == 1:
            # i1 truth survives widening (sext maps true to -1, which
            # is still nonzero) and an i1-to-i1 trunc.
            condition = definition.value
            continue
        negated = _peel_i1_not(definition)
        if negated is not None:
            branch = not branch
            condition = negated
            continue
        if not isinstance(definition, inst.ICmp):
            return None
        if definition.predicate in ("ne", "eq"):
            peeled = False
            for operand, other in ((definition.lhs, definition.rhs),
                                   (definition.rhs, definition.lhs)):
                if isinstance(other, irv.ConstInt) and \
                        other.value == 0 and \
                        _is_compare_chain(operand, defs):
                    # `b != 0` is `b`; `b == 0` is `!b`.
                    branch = branch if definition.predicate == "ne" \
                        else not branch
                    condition = operand
                    peeled = True
                    break
            if peeled:
                continue
        return definition, branch
    return None


def evaluate_icmp(predicate: str, lhs: irv.ConstInt,
                  rhs: irv.ConstInt) -> bool:
    a_s, b_s = lhs.signed_value, rhs.signed_value
    a_u, b_u = lhs.value, rhs.value
    return {
        "eq": a_u == b_u, "ne": a_u != b_u,
        "slt": a_s < b_s, "sle": a_s <= b_s,
        "sgt": a_s > b_s, "sge": a_s >= b_s,
        "ult": a_u < b_u, "ule": a_u <= b_u,
        "ugt": a_u > b_u, "uge": a_u >= b_u,
    }[predicate]


class DataflowAnalysis:
    """Base class for dataflow clients.  Subclasses override the lattice
    hooks; the solver drives them to a fixpoint."""

    direction = "forward"  # or "backward"

    def __init__(self):
        # Populated by solve(): id(register) -> defining instruction.
        self.definitions: dict[int, inst.Instruction] = {}

    def boundary_state(self, function: Function) -> State:
        """State at the entry (forward) or at every exit (backward)."""
        return {}

    def join(self, states: list[State]) -> State:
        raise NotImplementedError

    def merge(self, block: Block,
              incoming: list[tuple[Block, State]]) -> State:
        """Forward only: combine per-edge states at a join point.  The
        default ignores which edge each state arrived on; phi-aware
        analyses override this."""
        return self.join([state for _, state in incoming])

    def transfer(self, block: Block, state: State) -> State:
        raise NotImplementedError

    def refine_edge(self, pred: Block, succ: Block,
                    state: State) -> State | None:
        """Sharpen ``state`` along the edge ``pred -> succ``; ``None``
        declares the edge infeasible.  The default prunes edges whose
        branch condition is a constant."""
        terminator = pred.terminator
        if isinstance(terminator, inst.CondBr):
            taken = _constant_condition(terminator.condition,
                                        self.definitions)
            if taken is True and succ is terminator.if_false \
                    and succ is not terminator.if_true:
                return None
            if taken is False and succ is terminator.if_true \
                    and succ is not terminator.if_false:
                return None
        return state

    def widen(self, block: Block, old: State, new: State) -> State:
        """Applied at loop headers once both states are defined; must
        guarantee an ascending chain of finite height."""
        return new

    def equal(self, a: State, b: State) -> bool:
        return a == b


class DataflowResult:
    """Fixpoint states: ``input[block]`` is the state before the block's
    first instruction, ``output[block]`` after its terminator (swapped
    for backward analyses).  Unreachable blocks are absent."""

    def __init__(self, analysis: DataflowAnalysis, cfg: ControlFlowGraph,
                 input: dict[Block, State], output: dict[Block, State]):
        self.analysis = analysis
        self.cfg = cfg
        self.input = input
        self.output = output

    def reached(self, block: Block) -> bool:
        return block in self.input


def solve(analysis: DataflowAnalysis, function: Function,
          cfg: ControlFlowGraph | None = None,
          max_iterations: int = 100_000) -> DataflowResult:
    cfg = cfg or ControlFlowGraph(function)
    analysis.definitions = definition_map(function)
    if analysis.direction == "forward":
        return _solve_forward(analysis, function, cfg, max_iterations)
    return _solve_backward(analysis, function, cfg, max_iterations)


def _solve_forward(analysis, function, cfg, max_iterations):
    input_states: dict[Block, State] = {}
    output_states: dict[Block, State] = {}
    boundary = analysis.boundary_state(function)

    order = cfg.rpo_index
    pending: set[Block] = {cfg.entry}
    iterations = 0
    while pending:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"dataflow did not converge in {function.name} "
                f"(widening missing?)")
        block = min(pending, key=order.__getitem__)
        pending.discard(block)

        incoming: list[tuple[Block, State]] = []
        for pred in cfg.predecessors[block]:
            if pred not in output_states:
                continue
            edge_state = analysis.refine_edge(pred, block,
                                              output_states[pred])
            if edge_state is not None:
                incoming.append((pred, edge_state))
        if block is cfg.entry:
            new_input = analysis.join([boundary] + [
                analysis.merge(block, incoming)]) if incoming else boundary
        else:
            if not incoming:
                continue  # not (yet) reachable
            new_input = analysis.merge(block, incoming)

        if block in input_states and block in cfg.widen_points:
            new_input = analysis.widen(block, input_states[block], new_input)
        if block in input_states and \
                analysis.equal(input_states[block], new_input):
            continue
        input_states[block] = new_input
        output_states[block] = analysis.transfer(block, new_input)
        for succ in cfg.successors[block]:
            pending.add(succ)
    return DataflowResult(analysis, cfg, input_states, output_states)


def _solve_backward(analysis, function, cfg, max_iterations):
    # For a backward analysis, "input" is the state at the block's *exit*
    # and "output" the state at its entry (i.e. after the transfer runs
    # the block in reverse).
    input_states: dict[Block, State] = {}
    output_states: dict[Block, State] = {}
    boundary = analysis.boundary_state(function)
    exits = [block for block in cfg.postorder if not cfg.successors[block]]

    order = {block: i for i, block in enumerate(cfg.postorder)}
    pending: set[Block] = set(exits) or set(cfg.postorder)
    iterations = 0
    while pending:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"dataflow did not converge in {function.name}")
        block = min(pending, key=lambda b: order.get(b, 0))
        pending.discard(block)

        states = [output_states[succ] for succ in cfg.successors[block]
                  if succ in output_states]
        if block in exits:
            states.append(boundary)
        if not states:
            continue
        new_input = analysis.join(states)
        if block in input_states and \
                analysis.equal(input_states[block], new_input):
            continue
        input_states[block] = new_input
        output_states[block] = analysis.transfer(block, new_input)
        for pred in cfg.predecessors[block]:
            pending.add(pred)
    return DataflowResult(analysis, cfg, input_states, output_states)
