"""Allocation-state abstract interpretation and uninitialized-load
analysis.

:class:`HeapStateAnalysis` runs the unallocated -> allocated -> freed
lattice over ``malloc``/``calloc``/``realloc`` call sites: each site is
``LIVE`` after it executes, ``FREED`` after a provably-matching
``free``, and ``TOP`` once the two merge or the pointer escapes (stored
to memory, passed to a function that might free it).  Reports are
must-information only: a use-after-free or double-free is emitted only
when *every* path to the instruction has the site in ``FREED``.

:class:`UninitAnalysis` runs *before* mem2reg (which would replace
uninitialized loads with ``undef`` and destroy the signal) and reports
loads of promotable allocas that no path has stored to.
"""

from __future__ import annotations

from ..ir import instructions as inst
from ..ir import types as irt
from ..ir import values as irv
from ..ir.module import Block, Function
from .cfg import ControlFlowGraph
from .dataflow import DataflowAnalysis, solve
from .pointers import NONNULL, NULL, PointerAnalysis

LIVE = "live"
FREED = "freed"
TOP = "top"

# libc functions that provably never free or retain their pointer
# arguments; passing a heap pointer to anything else makes the site TOP.
_NON_FREEING = frozenset({
    "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vsnprintf",
    "puts", "putchar", "putc", "fputc", "fputs", "fwrite", "fread",
    "scanf", "sscanf", "fscanf", "gets", "fgets", "getchar", "getc",
    "strlen", "strcmp", "strncmp", "strchr", "strrchr", "strstr",
    "strcpy", "strncpy", "strcat", "strncat", "strspn", "strcspn",
    "memcmp", "memchr", "memset",
    "atoi", "atol", "atof", "strtol", "strtoul", "strtod",
    "abs", "labs", "exit", "abort", "assert",
    "isalpha", "isdigit", "isspace", "isupper", "islower", "toupper",
    "tolower",
})

# memcpy/memmove read and write through their arguments but never free
# or stash them either.
_NON_FREEING_COPIERS = frozenset({"memcpy", "memmove", "strdup"})


class Finding:
    """A raw analysis result; the lint driver wraps these into
    source-located diagnostics."""

    __slots__ = ("kind", "message", "loc", "function")

    def __init__(self, kind: str, message: str, loc, function: str):
        self.kind = kind
        self.message = message
        self.loc = loc
        self.function = function

    def __repr__(self) -> str:
        return f"<Finding {self.kind} at {self.loc}: {self.message}>"


class HeapStateAnalysis(DataflowAnalysis):
    """State maps ``id(allocation Call) -> LIVE | FREED | TOP``.  A
    missing key means the site has not executed on any path reaching
    this point (bottom) — SSA dominance guarantees the key is present
    wherever the site's pointer is usable."""

    def __init__(self, function: Function, pointers: PointerAnalysis,
                 cfg: ControlFlowGraph | None = None):
        super().__init__()
        self.function = function
        self.pointers = pointers
        self.cfg = cfg or pointers.cfg
        self.result = None

    def run(self) -> "HeapStateAnalysis":
        self.result = solve(self, self.function, self.cfg)
        return self

    # -- lattice hooks ------------------------------------------------------

    def boundary_state(self, function: Function):
        return {}

    def join(self, states):
        if not states:
            return {}
        merged = dict(states[0])
        for state in states[1:]:
            for key, value in state.items():
                if key in merged and merged[key] != value:
                    merged[key] = TOP
                else:
                    merged.setdefault(key, value)
        return merged

    def transfer(self, block: Block, state):
        state = dict(state)
        for instruction in block.instructions:
            self._transfer_instruction(instruction, state)
        return state

    def _transfer_instruction(self, instruction, state) -> None:
        if isinstance(instruction, inst.Call):
            self._transfer_call(instruction, state)
        elif isinstance(instruction, inst.Store):
            # Storing a heap pointer to memory lets any later code free
            # it behind the analysis's back.
            self._escape(instruction.value, state)

    def _transfer_call(self, instruction: inst.Call, state) -> None:
        callee = instruction.callee
        name = callee.name if isinstance(callee, Function) else None
        if name in ("malloc", "calloc", "aligned_alloc"):
            state[id(instruction)] = LIVE
            return
        if name == "free" and instruction.args:
            self._transfer_free(instruction.args[0], state)
            return
        if name == "realloc" and instruction.args:
            self._transfer_free(instruction.args[0], state)
            state[id(instruction)] = LIVE
            return
        if name in _NON_FREEING or name in _NON_FREEING_COPIERS:
            return
        # Unknown or user-defined callee: every heap pointer passed in
        # may be freed or retained by it.
        for arg in instruction.args:
            self._escape(arg, state)

    def _transfer_free(self, pointer, state) -> None:
        region = self.pointers.region_of(pointer)
        if region is not None and region.kind == "heap":
            state[id(region.site)] = FREED

    def _escape(self, value, state) -> None:
        if not isinstance(value.type, irt.PointerType):
            return
        region = self.pointers.region_of(value)
        if region is not None and region.kind == "heap" and \
                id(region.site) in state:
            state[id(region.site)] = TOP

    # -- reporting ----------------------------------------------------------

    def findings(self) -> list[Finding]:
        if self.result is None:
            self.run()
        findings: list[Finding] = []
        for block in self.cfg.reverse_postorder:
            if block not in self.result.input:
                continue
            state = dict(self.result.input[block])
            for instruction in block.instructions:
                self._check_instruction(instruction, state, findings)
                self._transfer_instruction(instruction, state)
        return findings

    def _check_instruction(self, instruction, state, findings) -> None:
        if isinstance(instruction, (inst.Load, inst.Store)):
            fact = self.pointers.fact_for(instruction.pointer)
            region = fact.region
            if region is not None and region.kind == "heap" and \
                    state.get(id(region.site)) == FREED and \
                    fact.nullness == NONNULL:
                findings.append(Finding(
                    "use-after-free",
                    f"use of {region.label} memory after it was freed",
                    instruction.loc, self.function.name))
        elif isinstance(instruction, inst.Call):
            callee = instruction.callee
            name = callee.name if isinstance(callee, Function) else None
            if name not in ("free", "realloc") or not instruction.args:
                return
            pointer = instruction.args[0]
            fact = self.pointers.fact_for(pointer)
            region = fact.region
            if region is None or fact.nullness != NONNULL:
                return  # free(NULL) is a no-op; unknown targets pass
            if region.kind != "heap":
                findings.append(Finding(
                    "invalid-free",
                    f"{name} of non-heap pointer to {region.label}",
                    instruction.loc, self.function.name))
            elif state.get(id(region.site)) == FREED:
                verb = "realloc" if name == "realloc" else "free"
                findings.append(Finding(
                    "double-free",
                    f"{verb} of {region.label} memory that is already "
                    f"freed on every path here",
                    instruction.loc, self.function.name))


class UninitAnalysis(DataflowAnalysis):
    """Must-uninitialized analysis over promotable allocas, run on the
    front end's unoptimized IR.  State maps ``id(alloca) -> "uninit" |
    "init"``; a load of a variable that is ``uninit`` on *all* paths is
    a definite read of garbage."""

    UNINIT = "uninit"
    INIT = "init"

    def __init__(self, function: Function,
                 cfg: ControlFlowGraph | None = None):
        super().__init__()
        self.function = function
        self.cfg = cfg or ControlFlowGraph(function)
        self.candidates = self._promotable_allocas(function)
        self.result = None

    @staticmethod
    def _promotable_allocas(function: Function) -> set[int]:
        """Allocas whose address never escapes: every use is a direct
        load or a store *to* it (mirrors mem2reg's promotability)."""
        allocas: dict[int, inst.Alloca] = {}
        for instruction in function.instructions():
            if isinstance(instruction, inst.Alloca) and \
                    not isinstance(instruction.allocated_type,
                                   (irt.ArrayType, irt.StructType)):
                allocas[id(instruction.result)] = instruction
        disqualified: set[int] = set()
        for instruction in function.instructions():
            if isinstance(instruction, inst.Load):
                continue
            if isinstance(instruction, inst.Store):
                if id(instruction.value) in allocas:
                    disqualified.add(id(instruction.value))
                continue
            for operand in instruction.operands():
                if id(operand) in allocas:
                    disqualified.add(id(operand))
        return set(allocas) - disqualified

    def run(self) -> "UninitAnalysis":
        self.result = solve(self, self.function, self.cfg)
        return self

    def boundary_state(self, function: Function):
        return {}

    def join(self, states):
        if not states:
            return {}
        merged = dict(states[0])
        for state in states[1:]:
            for key in list(merged):
                if state.get(key, self.INIT) != self.UNINIT:
                    merged[key] = self.INIT
        return merged

    def transfer(self, block: Block, state):
        state = dict(state)
        for instruction in block.instructions:
            self._transfer_instruction(instruction, state)
        return state

    def _transfer_instruction(self, instruction, state) -> None:
        if isinstance(instruction, inst.Alloca) and \
                id(instruction.result) in self.candidates:
            state[id(instruction.result)] = self.UNINIT
        elif isinstance(instruction, inst.Store) and \
                isinstance(instruction.pointer, irv.VirtualRegister):
            if id(instruction.pointer) in self.candidates:
                state[id(instruction.pointer)] = self.INIT

    def findings(self) -> list[Finding]:
        if self.result is None:
            self.run()
        var_names = {
            id(instruction.result): instruction.var_name
            for instruction in self.function.instructions()
            if isinstance(instruction, inst.Alloca)}
        findings: list[Finding] = []
        reported: set[int] = set()
        for block in self.cfg.reverse_postorder:
            if block not in self.result.input:
                continue
            state = dict(self.result.input[block])
            for instruction in block.instructions:
                if isinstance(instruction, inst.Load) and \
                        isinstance(instruction.pointer,
                                   irv.VirtualRegister):
                    key = id(instruction.pointer)
                    if key in self.candidates and \
                            state.get(key) == self.UNINIT and \
                            key not in reported:
                        reported.add(key)
                        name = var_names.get(key, "?")
                        findings.append(Finding(
                            "uninitialized-load",
                            f"variable '{name}' is read but never "
                            f"written on any path here",
                            instruction.loc, self.function.name))
                self._transfer_instruction(instruction, state)
        return findings
