"""Allocation-state abstract interpretation and uninitialized-load
analysis.

:class:`HeapStateAnalysis` runs the unallocated -> allocated -> freed
lattice over ``malloc``/``calloc``/``realloc`` call sites: each site is
``LIVE`` after it executes, ``FREED`` after a provably-matching
``free``, and ``TOP`` once the two merge or the pointer escapes (stored
to memory, passed to a function that might free it).  Reports are
must-information only: a use-after-free or double-free is emitted only
when *every* path to the instruction has the site in ``FREED``.

:class:`UninitAnalysis` runs *before* mem2reg (which would replace
uninitialized loads with ``undef`` and destroy the signal) and reports
loads of promotable allocas that no path has stored to.
"""

from __future__ import annotations

from ..ir import instructions as inst
from ..ir import types as irt
from ..ir import values as irv
from ..ir.module import Block, Function
from .cfg import ControlFlowGraph
from .dataflow import DataflowAnalysis, resolve_branch_compare, solve
from .pointers import NONNULL, NULL, PointerAnalysis

LIVE = "live"
FREED = "freed"
TOP = "top"

# libc functions that provably never free or retain their pointer
# arguments; passing a heap pointer to anything else makes the site TOP.
_NON_FREEING = frozenset({
    "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vsnprintf",
    "puts", "putchar", "putc", "fputc", "fputs", "fwrite", "fread",
    "scanf", "sscanf", "fscanf", "gets", "fgets", "getchar", "getc",
    "strlen", "strcmp", "strncmp", "strchr", "strrchr", "strstr",
    "strcpy", "strncpy", "strcat", "strncat", "strspn", "strcspn",
    "memcmp", "memchr", "memset",
    "atoi", "atol", "atof", "strtol", "strtoul", "strtod",
    "abs", "labs", "exit", "abort", "assert",
    "isalpha", "isdigit", "isspace", "isupper", "islower", "toupper",
    "tolower",
})

# memcpy/memmove read and write through their arguments but never free
# or stash them either.
_NON_FREEING_COPIERS = frozenset({"memcpy", "memmove", "strdup"})


class Finding:
    """A raw analysis result; the lint driver wraps these into
    source-located diagnostics."""

    __slots__ = ("kind", "message", "loc", "function")

    def __init__(self, kind: str, message: str, loc, function: str):
        self.kind = kind
        self.message = message
        self.loc = loc
        self.function = function

    def __repr__(self) -> str:
        return f"<Finding {self.kind} at {self.loc}: {self.message}>"


class HeapStateAnalysis(DataflowAnalysis):
    """State maps ``id(allocation Call) -> LIVE | FREED | TOP``.  A
    missing key means the site has not executed on any path reaching
    this point (bottom) — SSA dominance guarantees the key is present
    wherever the site's pointer is usable."""

    def __init__(self, function: Function, pointers: PointerAnalysis,
                 cfg: ControlFlowGraph | None = None,
                 summaries: dict | None = None,
                 track_params: bool = False):
        super().__init__()
        self.function = function
        self.pointers = pointers
        self.cfg = cfg or pointers.cfg
        # name -> FunctionSummary: with summaries, a call to a known
        # function applies its per-parameter effects (must-free, safe,
        # escape) instead of conservatively escaping every argument,
        # and a fresh-heap wrapper's result becomes a LIVE site.
        self.summaries = summaries or {}
        # Track "param" pseudo-regions too (LIVE at entry), so the
        # summary computation can ask whether every path freed them.
        self.track_params = track_params
        self.result = None

    def run(self) -> "HeapStateAnalysis":
        self.result = solve(self, self.function, self.cfg)
        return self

    # -- lattice hooks ------------------------------------------------------

    def boundary_state(self, function: Function):
        if not self.track_params:
            return {}
        return {id(param): LIVE for param in function.params
                if isinstance(param.type, irt.PointerType)}

    def join(self, states):
        if not states:
            return {}
        merged = dict(states[0])
        for state in states[1:]:
            for key, value in state.items():
                if key in merged and merged[key] != value:
                    merged[key] = TOP
                else:
                    merged.setdefault(key, value)
        return merged

    def transfer(self, block: Block, state):
        state = dict(state)
        for instruction in block.instructions:
            self._transfer_instruction(instruction, state)
        return state

    def refine_edge(self, pred: Block, succ: Block, state):
        state = super().refine_edge(pred, succ, state)
        if state is None:
            return None
        # `if (!p) ...` after an allocation: on the edge where the
        # result is NULL the allocation *failed* — there is no live
        # object behind this site on that path.  Washing the site to
        # TOP keeps the leak client from reporting the early-return
        # path of the standard malloc/null-check idiom.
        terminator = pred.terminator
        if not isinstance(terminator, inst.CondBr) or \
                terminator.if_true is terminator.if_false:
            return state
        resolved = resolve_branch_compare(
            terminator.condition, succ is terminator.if_true,
            self.definitions)
        if resolved is None:
            return state
        definition, branch = resolved
        if definition.predicate not in ("eq", "ne") or \
                not isinstance(definition.lhs.type, irt.PointerType):
            return state
        if branch != (definition.predicate == "eq"):
            return state  # the non-null edge changes nothing
        for value, other in ((definition.lhs, definition.rhs),
                             (definition.rhs, definition.lhs)):
            if self.pointers.fact_for(other).nullness != NULL:
                continue
            region = self.pointers.region_of(value)
            if region is not None and region.kind == "heap" and \
                    id(region.site) in state:
                state = dict(state)
                state[id(region.site)] = TOP
        return state

    def _transfer_instruction(self, instruction, state) -> None:
        if isinstance(instruction, inst.Call):
            self._transfer_call(instruction, state)
        elif isinstance(instruction, inst.Store):
            # Storing a heap pointer to memory lets any later code free
            # it behind the analysis's back.
            self._escape(instruction.value, state)

    def _transfer_call(self, instruction: inst.Call, state) -> None:
        callee = instruction.callee
        name = callee.name if isinstance(callee, Function) else None
        if name in ("malloc", "calloc", "aligned_alloc"):
            state[id(instruction)] = LIVE
            return
        if name == "free" and instruction.args:
            self._transfer_free(instruction.args[0], state)
            return
        if name == "realloc" and instruction.args:
            self._transfer_free(instruction.args[0], state)
            state[id(instruction)] = LIVE
            return
        if name in _NON_FREEING or name in _NON_FREEING_COPIERS:
            return
        summary = self.summaries.get(name) if name is not None else None
        if summary is not None:
            for position, arg in enumerate(instruction.args):
                effect = summary.param(position)
                region = self._tracked_region(arg)
                if region is None or id(region.site) not in state:
                    continue
                if effect.escapes:
                    state[id(region.site)] = TOP
                elif effect.must_free:
                    # The callee frees it on every path: the site is as
                    # freed as if `free` were called right here.
                    state[id(region.site)] = FREED
                elif effect.may_free:
                    state[id(region.site)] = TOP
                # else: summarized-safe — the callee neither frees nor
                # retains the pointer; the site's state is preserved.
            if summary.returns_new_heap:
                state[id(instruction)] = LIVE
            return
        # Unknown or unsummarized callee: every heap pointer passed in
        # may be freed or retained by it.
        for arg in instruction.args:
            self._escape(arg, state)

    def _tracked_region(self, value):
        if not isinstance(value.type, irt.PointerType):
            return None
        region = self.pointers.region_of(value)
        if region is not None and region.kind in ("heap", "param"):
            return region
        return None

    def _transfer_free(self, pointer, state) -> None:
        region = self.pointers.region_of(pointer)
        if region is None:
            return
        if region.kind == "heap" or \
                (self.track_params and region.kind == "param"):
            state[id(region.site)] = FREED

    def _escape(self, value, state) -> None:
        region = self._tracked_region(value)
        if region is not None and id(region.site) in state:
            state[id(region.site)] = TOP

    # -- reporting ----------------------------------------------------------

    def findings(self) -> list[Finding]:
        if self.result is None:
            self.run()
        findings: list[Finding] = []
        for block in self.cfg.reverse_postorder:
            if block not in self.result.input:
                continue
            state = dict(self.result.input[block])
            for instruction in block.instructions:
                self._check_instruction(instruction, state, findings)
                self._transfer_instruction(instruction, state)
        return findings

    def _check_instruction(self, instruction, state, findings) -> None:
        if isinstance(instruction, (inst.Load, inst.Store)):
            fact = self.pointers.fact_for(instruction.pointer)
            region = fact.region
            if region is not None and region.kind == "heap" and \
                    state.get(id(region.site)) == FREED and \
                    fact.nullness == NONNULL:
                findings.append(Finding(
                    "use-after-free",
                    f"use of {region.label} memory after it was freed",
                    instruction.loc, self.function.name))
        elif isinstance(instruction, inst.Call):
            callee = instruction.callee
            name = callee.name if isinstance(callee, Function) else None
            if name in ("free", "realloc") and instruction.args:
                pointer = instruction.args[0]
                fact = self.pointers.fact_for(pointer)
                region = fact.region
                if region is None or fact.nullness != NONNULL:
                    return  # free(NULL) is a no-op; unknown targets pass
                if region.kind in ("stack", "global"):
                    findings.append(Finding(
                        "invalid-free",
                        f"{name} of non-heap pointer to {region.label}",
                        instruction.loc, self.function.name))
                elif region.kind == "heap" and \
                        state.get(id(region.site)) == FREED:
                    verb = "realloc" if name == "realloc" else "free"
                    findings.append(Finding(
                        "double-free",
                        f"{verb} of {region.label} memory that is already "
                        f"freed on every path here",
                        instruction.loc, self.function.name))
                return
            self._check_summarized_call(instruction, name, state, findings)

    def _check_summarized_call(self, instruction, name, state,
                               findings) -> None:
        """Cross-function clients: passing a pointer to a callee whose
        summary proves it dereferences or frees it is as definite as
        doing so locally."""
        summary = self.summaries.get(name) if name is not None else None
        if summary is None:
            return
        for position, arg in enumerate(instruction.args):
            effect = summary.param(position)
            fact = self.pointers.fact_for(arg)
            region = fact.region
            if region is None or fact.nullness != NONNULL:
                continue
            if region.kind == "heap" and \
                    state.get(id(region.site)) == FREED:
                if effect.must_free:
                    findings.append(Finding(
                        "double-free",
                        f"@{name} frees its argument, but {region.label} "
                        f"memory is already freed on every path here",
                        instruction.loc, self.function.name))
                elif effect.derefs:
                    findings.append(Finding(
                        "use-after-free",
                        f"@{name} dereferences its argument, but "
                        f"{region.label} memory is freed on every path "
                        f"here", instruction.loc, self.function.name))
            elif region.kind in ("stack", "global") and effect.must_free:
                findings.append(Finding(
                    "invalid-free",
                    f"@{name} frees its argument, which is a non-heap "
                    f"pointer to {region.label}",
                    instruction.loc, self.function.name))

    # -- leak-on-exit -------------------------------------------------------

    def leak_findings(self) -> list[Finding]:
        """Heap sites still LIVE when the function returns: allocated on
        every path that reaches the return, never freed, never escaped.
        Meaningful for ``main`` (program exit); reported at the
        allocation site."""
        if self.result is None:
            self.run()
        sites: dict[int, inst.Call] = {}
        for instruction in self.function.instructions():
            if not isinstance(instruction, inst.Call):
                continue
            callee = instruction.callee
            name = callee.name if isinstance(callee, Function) else None
            summary = self.summaries.get(name) if name is not None \
                else None
            if name in ("malloc", "calloc", "aligned_alloc", "realloc") \
                    or (summary is not None and summary.returns_new_heap):
                sites[id(instruction)] = instruction
        if not sites:
            return []
        findings: list[Finding] = []
        reported: set[int] = set()
        for block in self.cfg.reverse_postorder:
            if block not in self.result.input or \
                    not isinstance(block.terminator, inst.Ret):
                continue
            state = dict(self.result.input[block])
            for instruction in block.instructions:
                self._transfer_instruction(instruction, state)
            for key, value in state.items():
                if value != LIVE or key not in sites or key in reported:
                    continue
                reported.add(key)
                site = sites[key]
                callee = site.callee
                name = callee.name if isinstance(callee, Function) \
                    else "?"
                findings.append(Finding(
                    "memory-leak",
                    f"memory allocated by {name}() here is never freed "
                    f"before @{self.function.name} returns",
                    site.loc, self.function.name))
        return findings


class UninitAnalysis(DataflowAnalysis):
    """Must-uninitialized analysis over promotable allocas, run on the
    front end's unoptimized IR.  State maps ``id(alloca) -> "uninit" |
    "init"``; a load of a variable that is ``uninit`` on *all* paths is
    a definite read of garbage.

    A local whose address is passed to a call stays a candidate: the
    call is treated flow-sensitively — ``memset``/``memcpy`` covering
    the local count as initializing stores, a summarized callee that
    provably reads the pointee before writing it turns the call into a
    definite uninitialized read, and any other call conservatively
    initializes (a callee may write through the pointer, so later loads
    can no longer be claimed uninitialized).

    A ``memset``/``memcpy`` whose constant length covers only a prefix
    of the local moves it to ``("partial", covered)``: bytes past
    ``covered`` are still definitely unwritten, so a load wider than
    the covered prefix is a definite garbage read while a narrow load
    inside it stays silent."""

    UNINIT = "uninit"
    INIT = "init"

    def __init__(self, function: Function,
                 cfg: ControlFlowGraph | None = None,
                 summaries: dict | None = None):
        super().__init__()
        self.function = function
        self.cfg = cfg or ControlFlowGraph(function)
        self.summaries = summaries or {}
        self.candidates, self._addr = self._collect_candidates(function)
        self._sizes = {
            id(instruction.result): instruction.allocated_type.size
            for instruction in function.instructions()
            if isinstance(instruction, inst.Alloca)
            and id(instruction.result) in self.candidates}
        self.result = None

    @staticmethod
    def _collect_candidates(function: Function
                            ) -> tuple[set[int], dict[int, int]]:
        """Scalar allocas every use of which is a direct load, a store
        *to* it, or a call argument (directly or through bitcasts whose
        only uses are themselves such); plus the bitcast-closure map
        ``id(copy) -> id(alloca register)``."""
        allocas: dict[int, inst.Alloca] = {}
        for instruction in function.instructions():
            if isinstance(instruction, inst.Alloca) and \
                    not isinstance(instruction.allocated_type,
                                   (irt.ArrayType, irt.StructType)):
                allocas[id(instruction.result)] = instruction
        # Transitive bitcast copies of the addresses.
        addr: dict[int, int] = {}
        changed = True
        while changed:
            changed = False
            for instruction in function.instructions():
                if isinstance(instruction, inst.Cast) and \
                        instruction.kind == "bitcast":
                    source = id(instruction.value)
                    root = source if source in allocas \
                        else addr.get(source)
                    if root is not None and \
                            id(instruction.result) not in addr:
                        addr[id(instruction.result)] = root
                        changed = True

        def roots(value) -> int | None:
            vid = id(value)
            return vid if vid in allocas else addr.get(vid)

        disqualified: set[int] = set()
        for instruction in function.instructions():
            if isinstance(instruction, inst.Load):
                continue
            if isinstance(instruction, inst.Store):
                root = roots(instruction.value)
                if root is not None:
                    disqualified.add(root)  # address published to memory
                continue
            if isinstance(instruction, inst.Cast) and \
                    instruction.kind == "bitcast" and \
                    roots(instruction.value) is not None:
                continue  # part of the tracked closure
            if isinstance(instruction, inst.Call):
                root = roots(instruction.callee)
                if root is not None:
                    disqualified.add(root)
                continue  # argument uses are handled flow-sensitively
            for operand in instruction.operands():
                root = roots(operand)
                if root is not None:
                    disqualified.add(root)
        candidates = set(allocas) - disqualified
        addr = {copy: root for copy, root in addr.items()
                if root in candidates}
        return candidates, addr

    def _root(self, value) -> int | None:
        vid = id(value)
        if vid in self.candidates:
            return vid
        root = self._addr.get(vid)
        return root if root in self.candidates else None

    def run(self) -> "UninitAnalysis":
        self.result = solve(self, self.function, self.cfg)
        return self

    def boundary_state(self, function: Function):
        return {}

    @classmethod
    def _covered(cls, value):
        """Bytes of the local's initialized prefix the state vouches
        for; ``None`` when there is no definitely-unwritten suffix."""
        if value == cls.UNINIT:
            return 0
        if isinstance(value, tuple) and value[0] == "partial":
            return value[1]
        return None

    @classmethod
    def _from_covered(cls, covered):
        return cls.UNINIT if covered == 0 else ("partial", covered)

    def join(self, states):
        if not states:
            return {}
        merged = dict(states[0])
        for state in states[1:]:
            for key in list(merged):
                ours = self._covered(merged[key])
                theirs = self._covered(state.get(key, self.INIT))
                if ours is None or theirs is None:
                    merged[key] = self.INIT
                else:
                    # Both paths leave a definitely-unwritten suffix;
                    # the joint guarantee starts at the larger prefix.
                    merged[key] = self._from_covered(max(ours, theirs))
        return merged

    def transfer(self, block: Block, state):
        state = dict(state)
        for instruction in block.instructions:
            self._transfer_instruction(instruction, state)
        return state

    def _transfer_instruction(self, instruction, state) -> None:
        if isinstance(instruction, inst.Alloca) and \
                id(instruction.result) in self.candidates:
            state[id(instruction.result)] = self.UNINIT
        elif isinstance(instruction, inst.Store):
            root = self._root(instruction.pointer)
            if root is not None:
                state[root] = self.INIT
        elif isinstance(instruction, inst.Call):
            name = self._callee_name(instruction)
            for position, arg in enumerate(instruction.args):
                root = self._root(arg)
                if root is None:
                    continue
                if name in ("memcpy", "memmove") and position == 1:
                    continue  # source operand: read, never written
                if name in ("memset", "memcpy", "memmove") and \
                        position == 0:
                    length = instruction.args[2] \
                        if len(instruction.args) > 2 else None
                    size = self._sizes.get(root, 0)
                    if isinstance(length, irv.ConstInt) and \
                            0 <= length.signed_value < size:
                        # Prefix fill: the tail past the constant
                        # length stays definitely unwritten.
                        covered = self._covered(state.get(root))
                        if covered is not None:
                            state[root] = self._from_covered(
                                max(covered, length.signed_value))
                        continue
                # memset / memcpy-dst / any other callee may write the
                # local; later loads lose the must-uninit claim.
                state[root] = self.INIT

    @staticmethod
    def _callee_name(instruction: inst.Call) -> str | None:
        callee = instruction.callee
        return callee.name if isinstance(callee, Function) else None

    def findings(self) -> list[Finding]:
        if self.result is None:
            self.run()
        var_names = {
            id(instruction.result): instruction.var_name
            for instruction in self.function.instructions()
            if isinstance(instruction, inst.Alloca)}
        findings: list[Finding] = []
        reported: set[int] = set()

        def report(root, message, loc):
            if root in reported:
                return
            reported.add(root)
            findings.append(Finding("uninitialized-load", message, loc,
                                    self.function.name))

        for block in self.cfg.reverse_postorder:
            if block not in self.result.input:
                continue
            state = dict(self.result.input[block])
            for instruction in block.instructions:
                if isinstance(instruction, inst.Load):
                    root = self._root(instruction.pointer)
                    covered = self._covered(state.get(root)) \
                        if root is not None else None
                    if covered == 0:
                        report(root,
                               f"variable '{var_names.get(root, '?')}' "
                               f"is read but never written on any path "
                               f"here", instruction.loc)
                    elif covered is not None and \
                            getattr(instruction.result.type, "size",
                                    0) > covered:
                        report(root,
                               f"variable "
                               f"'{var_names.get(root, '?')}' is read, "
                               f"but only its first {covered} bytes "
                               f"are ever written on any path here",
                               instruction.loc)
                elif isinstance(instruction, inst.Call):
                    self._check_call(instruction, state, var_names,
                                     report)
                self._transfer_instruction(instruction, state)
        return findings

    def _check_call(self, instruction, state, var_names, report) -> None:
        """Definite uninitialized reads *through* a call: memcpy from an
        unwritten local, or a callee whose summary proves it reads the
        pointee before writing it."""
        name = self._callee_name(instruction)
        summary = self.summaries.get(name) if name is not None else None
        for position, arg in enumerate(instruction.args):
            root = self._root(arg)
            covered = self._covered(state.get(root)) \
                if root is not None else None
            if covered is None:
                continue
            var = var_names.get(root, "?")
            if name in ("memcpy", "memmove") and position == 1:
                length = instruction.args[2] \
                    if len(instruction.args) > 2 else None
                if isinstance(length, irv.ConstInt) and \
                        length.signed_value > covered:
                    report(root,
                           f"{name} reads variable '{var}', which is "
                           f"never written on any path here",
                           instruction.loc)
            elif covered == 0 and summary is not None and \
                    summary.param(position).reads_uninit:
                report(root,
                       f"@{name} reads variable '{var}' before writing "
                       f"it, but it is never written on any path here",
                       instruction.loc)
