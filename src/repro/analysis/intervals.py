"""Interval (value-range) analysis over ``i8``..``i64`` registers.

Tracks the *signed* interpretation of integer registers.  ``None`` for a
bound means unbounded in that direction.  Soundness under wrap-around:
any arithmetic whose mathematical result can leave the type's signed
range collapses to the type's full range, so intervals never claim more
than two's-complement execution delivers.  Branch conditions refine
intervals per edge (``x < 10`` bounds ``x`` on the true edge), and
``widen`` jumps unstable bounds to infinity at loop headers so the
solver terminates.
"""

from __future__ import annotations

from ..ir import instructions as inst
from ..ir import types as irt
from ..ir import values as irv
from ..ir.module import Block, Function
from .cfg import ControlFlowGraph
from .dataflow import (DataflowAnalysis, _is_compare_chain, scalar_slots,
                       solve)

_NEG_PREDICATE = {
    "eq": "ne", "ne": "eq", "slt": "sge", "sle": "sgt",
    "sgt": "sle", "sge": "slt", "ult": "uge", "ule": "ugt",
    "ugt": "ule", "uge": "ult",
}
_SWAPPED_PREDICATE = {
    "eq": "eq", "ne": "ne", "slt": "sgt", "sle": "sge",
    "sgt": "slt", "sge": "sle", "ult": "ugt", "ule": "uge",
    "ugt": "ult", "uge": "ule",
}


class Interval:
    """A closed interval [lo, hi] over mathematical integers; ``None``
    bounds mean -inf / +inf.  Instances are immutable."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int | None, hi: int | None):
        if lo is not None and hi is not None and lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    # -- constructors -------------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        return _TOP

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def of_type(int_type: irt.IntType) -> "Interval":
        return Interval(int_type.signed_min, int_type.signed_max)

    # -- predicates ---------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    @property
    def is_constant(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        return (self.lo is None or self.lo <= value) and \
               (self.hi is None or value <= self.hi)

    def below(self, value: int) -> bool:
        """Entire interval strictly below ``value``."""
        return self.hi is not None and self.hi < value

    def above(self, value: int) -> bool:
        """Entire interval strictly above ``value``."""
        return self.lo is not None and self.lo > value

    def __eq__(self, other) -> bool:
        return isinstance(other, Interval) and \
            self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"

    # -- lattice ------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None \
            else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None \
            else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval | None":
        """Intersection; ``None`` when empty (contradiction)."""
        lo = self.lo if other.lo is None else (
            other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (
            other.hi if self.hi is None else min(self.hi, other.hi))
        if lo is not None and hi is not None and lo > hi:
            return None
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Standard interval widening: any bound that moved goes to
        infinity, giving a finite ascending chain."""
        lo = self.lo if (self.lo is not None and newer.lo is not None
                         and newer.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and newer.hi is not None
                         and newer.hi <= self.hi) else None
        return Interval(lo, hi)

    # -- arithmetic (mathematical; callers clamp for wrap) ------------------

    def add(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None \
            else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None \
            else self.hi + other.hi
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.hi is None \
            else self.lo - other.hi
        hi = None if self.hi is None or other.lo is None \
            else self.hi - other.lo
        return Interval(lo, hi)

    def mul(self, other: "Interval") -> "Interval":
        bounds = [self.lo, self.hi]
        others = [other.lo, other.hi]
        if None in bounds or None in others:
            # Unbounded factor: only the all-known-sign cases stay bounded;
            # keep it simple and go to top.
            return _TOP
        products = [a * b for a in bounds for b in others]
        return Interval(min(products), max(products))

    def scaled(self, factor: int) -> "Interval":
        if factor == 0:
            return Interval.const(0)
        lo, hi = (self.lo, self.hi) if factor > 0 else (self.hi, self.lo)
        return Interval(None if lo is None else lo * factor,
                        None if hi is None else hi * factor)


_TOP = Interval(None, None)


def clamp(interval: Interval, int_type: irt.IntType) -> Interval:
    """Collapse to the type's full signed range unless the mathematical
    result provably fits (two's-complement wrap soundness)."""
    full = Interval.of_type(int_type)
    if interval.lo is None or interval.hi is None:
        return full
    if interval.lo < full.lo or interval.hi > full.hi:
        return full
    return interval


class IntervalAnalysis(DataflowAnalysis):
    """Forward analysis; state maps ``id(register) -> Interval``.  A
    missing key is *top* (any value of the register's type) — only
    facts strictly better than top are stored."""

    def __init__(self, function: Function,
                 cfg: ControlFlowGraph | None = None):
        super().__init__()
        self.function = function
        self.cfg = cfg or ControlFlowGraph(function)
        self.result = None
        # Final interval for each register definition, filled by run().
        self.at_def: dict[int, Interval] = {}
        # Non-escaping integer stack slots: -O0 IR reloads every local
        # at each use, so slot contents are tracked through the state
        # under ("mem", id(slot register)) keys.  Entries are either an
        # Interval or ("alias", register) meaning "holds the same value
        # as that register" — the alias form lets branch refinements of
        # a loaded copy reach later reloads.
        self.slots = scalar_slots(function,
                                  lambda t: isinstance(t, irt.IntType))

    def run(self) -> "IntervalAnalysis":
        self.result = solve(self, self.function, self.cfg)
        for block, state in self.result.input.items():
            state = dict(state)
            for instruction in block.instructions:
                self._transfer_instruction(instruction, state)
                if instruction.result is not None and \
                        id(instruction.result) in state:
                    existing = self.at_def.get(id(instruction.result))
                    fact = state[id(instruction.result)]
                    # A register has one def; joins are defensive.
                    self.at_def[id(instruction.result)] = \
                        fact if existing is None else existing.join(fact)
        return self

    # -- queries ------------------------------------------------------------

    def value_interval(self, value: irv.Value,
                       state: dict | None = None) -> Interval:
        """Best known interval for ``value`` (signed view)."""
        if isinstance(value, irv.ConstInt):
            return Interval.const(value.signed_value)
        if isinstance(value, (irv.ConstUndef, irv.ConstZero)):
            return Interval.const(0) if isinstance(value, irv.ConstZero) \
                else self._type_range(value)
        if isinstance(value, irv.VirtualRegister):
            if state is not None and id(value) in state:
                return state[id(value)]
            fact = self.at_def.get(id(value))
            if fact is not None:
                return fact
            return self._type_range(value)
        return _TOP

    @staticmethod
    def _type_range(value: irv.Value) -> Interval:
        if isinstance(value.type, irt.IntType):
            return Interval.of_type(value.type)
        return _TOP

    # -- lattice hooks ------------------------------------------------------

    def boundary_state(self, function: Function):
        return {}

    def join(self, states):
        if not states:
            return {}
        if len(states) == 1:
            return dict(states[0])
        keys = set(states[0])
        for state in states[1:]:
            keys &= set(state)  # missing key = top in that branch
        merged = {}
        for key in keys:
            first = states[0][key]
            if isinstance(key, tuple):
                if all(state[key] == first for state in states[1:]):
                    merged[key] = first  # same alias on every path
                    continue
                fact = None
                for state in states:
                    arm = self._slot_interval(state[key], state)
                    fact = arm if fact is None else fact.join(arm)
                if not fact.is_top:
                    merged[key] = fact
                continue
            fact = first
            for state in states[1:]:
                fact = fact.join(state[key])
            merged[key] = fact
        return merged

    def merge(self, block: Block, incoming):
        merged = self.join([state for _, state in incoming])
        by_pred = dict(incoming)
        for phi in block.phis():
            fact = None
            for pred, value in phi.incoming:
                if pred not in by_pred:
                    continue  # edge not (yet) reachable
                arm = self.value_interval(value, by_pred[pred])
                fact = arm if fact is None else fact.join(arm)
            if fact is not None and not fact.is_top:
                merged[id(phi.result)] = fact
        return merged

    def widen(self, block: Block, old, new):
        widened = {}
        for key, fact in new.items():
            if key not in old:
                continue
            previous = old[key]
            if isinstance(key, tuple):
                if previous == fact:
                    widened[key] = fact
                else:
                    grown = self._slot_interval(previous, old).widen(
                        self._slot_interval(fact, new))
                    if not grown.is_top:
                        widened[key] = grown
                continue
            widened[key] = previous.widen(fact)
        return widened

    def transfer(self, block: Block, state):
        state = dict(state)
        for instruction in block.instructions:
            self._transfer_instruction(instruction, state)
        return state

    def _slot_key(self, pointer):
        if isinstance(pointer, irv.VirtualRegister) and \
                id(pointer) in self.slots:
            return ("mem", id(pointer))
        return None

    def _slot_interval(self, entry, state) -> Interval:
        if entry is None:
            return _TOP
        if isinstance(entry, tuple):
            return self.value_interval(entry[1], state)
        return entry

    def _transfer_instruction(self, instruction, state) -> None:
        if isinstance(instruction, inst.Store):
            key = self._slot_key(instruction.pointer)
            if key is not None:
                value = instruction.value
                if isinstance(value, irv.VirtualRegister):
                    state[key] = ("alias", value)
                elif isinstance(value, irv.ConstInt):
                    state[key] = Interval.const(value.signed_value)
                else:
                    state.pop(key, None)
            return
        result = instruction.result
        if result is None or not isinstance(result.type, irt.IntType):
            return
        if isinstance(instruction, inst.Load):
            key = self._slot_key(instruction.pointer)
            if key is not None:
                fact = self._slot_interval(state.get(key), state)
                if not fact.is_top:
                    state[id(result)] = fact
                else:
                    state.pop(id(result), None)
                # Re-alias so later refinements of this loaded copy
                # reach subsequent reloads of the same slot.
                state[key] = ("alias", result)
            else:
                state.pop(id(result), None)
            return
        fact = self._evaluate(instruction, state)
        if fact is not None and not fact.is_top:
            state[id(result)] = fact
        else:
            state.pop(id(result), None)

    def _evaluate(self, instruction, state) -> Interval | None:
        if isinstance(instruction, inst.BinOp):
            return self._binop(instruction, state)
        if isinstance(instruction, inst.Cast):
            return self._cast(instruction, state)
        if isinstance(instruction, inst.Select):
            a = self.value_interval(instruction.if_true, state)
            b = self.value_interval(instruction.if_false, state)
            return a.join(b)
        if isinstance(instruction, inst.ICmp):
            lhs = self.value_interval(instruction.lhs, state)
            rhs = self.value_interval(instruction.rhs, state)
            verdict = _compare(instruction.predicate, lhs, rhs)
            if verdict is None:
                return Interval(0, 1)
            return Interval.const(1 if verdict else 0)
        if isinstance(instruction, inst.FCmp):
            return Interval(0, 1)
        if isinstance(instruction, inst.Phi):
            # Evaluated edge-wise in merge(); keep whatever merge stored.
            return state.get(id(instruction.result))
        return None  # loads, calls, ... -> top

    def _binop(self, instruction: inst.BinOp, state) -> Interval | None:
        if instruction.op not in inst.INT_BINOPS:
            return None
        int_type = instruction.result.type
        a = self.value_interval(instruction.lhs, state)
        b = self.value_interval(instruction.rhs, state)
        op = instruction.op
        if op == "add":
            return clamp(a.add(b), int_type)
        if op == "sub":
            return clamp(a.sub(b), int_type)
        if op == "mul":
            return clamp(a.mul(b), int_type)
        if op in ("sdiv", "srem", "udiv", "urem"):
            # Division narrows magnitude but the corner cases (INT_MIN /
            # -1, division by zero trapping at runtime) make a precise
            # transfer subtle; stay conservative.
            return Interval.of_type(int_type)
        if op == "and":
            # x & mask with a non-negative constant bounds the result.
            for mask in (b, a):
                if mask.is_constant and mask.lo >= 0:
                    return Interval(0, mask.lo)
            return None
        if op in ("or", "xor", "shl", "lshr", "ashr"):
            return None
        return None

    def _cast(self, instruction: inst.Cast, state) -> Interval | None:
        kind = instruction.kind
        source = instruction.value
        target = instruction.result.type
        if not isinstance(target, irt.IntType):
            return None
        if kind == "sext":
            return self.value_interval(source, state)
        if kind == "zext":
            fact = self.value_interval(source, state)
            if fact.lo is not None and fact.lo >= 0:
                return fact
            if isinstance(source.type, irt.IntType):
                return Interval(0, source.type.mask)
            return None
        if kind == "trunc":
            fact = self.value_interval(source, state)
            if fact.meet(Interval.of_type(target)) == fact:
                return fact  # value provably fits; low bits preserve it
            return Interval.of_type(target)
        if kind in ("fptosi", "fptoui", "ptrtoint"):
            return Interval.of_type(target)
        if kind == "bitcast":
            return self.value_interval(source, state)
        return None

    # -- branch refinement --------------------------------------------------

    def refine_edge(self, pred: Block, succ: Block, state):
        state = super().refine_edge(pred, succ, state)
        if state is None:
            return None
        terminator = pred.terminator
        if isinstance(terminator, inst.Switch):
            return self._refine_switch(terminator, succ, state)
        if not isinstance(terminator, inst.CondBr):
            return state
        if terminator.if_true is terminator.if_false:
            return state
        condition = terminator.condition
        branch = succ is terminator.if_true
        if isinstance(condition, irv.VirtualRegister):
            fact = state.get(id(condition))
            if fact is not None:
                if branch and fact == Interval.const(0):
                    return None  # true edge, condition provably false
                if not branch and fact == Interval.const(1):
                    return None
            return self._refine_condition(condition, branch, state)
        return state

    def _refine_condition(self, condition, branch: bool, state, depth=8):
        """Push the branch's truth back through the condition's def
        chain.  The front end lowers ``if (a < b)`` to ``icmp slt`` →
        ``zext`` → ``icmp ne …, 0`` → ``br``; refining only the
        outermost compare would constrain the 0/1 temporary and never
        reach ``a`` itself."""
        if depth <= 0 or state is None or \
                not isinstance(condition, irv.VirtualRegister):
            return state
        definition = self.definitions.get(id(condition))
        if isinstance(definition, inst.Cast) and \
                definition.kind in ("zext", "sext", "trunc") and \
                isinstance(definition.value.type, irt.IntType) and \
                definition.value.type.bits == 1:
            # i1 truth survives these casts (sext maps true to -1,
            # which is still nonzero).
            return self._refine_condition(definition.value, branch,
                                          state, depth - 1)
        if not isinstance(definition, inst.ICmp):
            return state
        state = self._refine_icmp(definition, branch, state)
        if state is None:
            return None
        # `b != 0` / `b == 0` where b is itself a (possibly widened)
        # compare result: forward this branch's truth to that compare.
        if definition.predicate in ("ne", "eq"):
            for operand, other in ((definition.lhs, definition.rhs),
                                   (definition.rhs, definition.lhs)):
                if isinstance(other, irv.ConstInt) and \
                        other.signed_value == 0 and \
                        _is_compare_chain(operand, self.definitions):
                    inner = branch if definition.predicate == "ne" \
                        else not branch
                    return self._refine_condition(operand, inner,
                                                  state, depth - 1)
        return state

    def _refine_switch(self, terminator: inst.Switch, succ: Block, state):
        value = terminator.value
        if not isinstance(value, irv.VirtualRegister):
            return state
        targets = [Interval.const(case) for case, block in terminator.cases
                   if block is succ]
        if succ is terminator.default or not targets:
            return state
        constraint = targets[0]
        for extra in targets[1:]:
            constraint = constraint.join(extra)
        current = self.value_interval(value, state)
        met = current.meet(constraint)
        if met is None:
            return None
        state = dict(state)
        state[id(value)] = met
        return state

    def _refine_icmp(self, icmp: inst.ICmp, branch: bool, state):
        predicate = icmp.predicate if branch \
            else _NEG_PREDICATE[icmp.predicate]
        state = self._constrain(icmp.lhs, predicate, icmp.rhs, state)
        if state is None:
            return None
        return self._constrain(icmp.rhs, _SWAPPED_PREDICATE[predicate],
                               icmp.lhs, state)

    def _constrain(self, value, predicate: str, other, state):
        """Meet ``value``'s interval with the constraint ``value
        <predicate> other``; ``None`` signals an infeasible edge."""
        if not isinstance(value, irv.VirtualRegister) or \
                not isinstance(value.type, irt.IntType):
            return state
        bound = self.value_interval(other, state)
        current = self.value_interval(value, state)
        constraint = _predicate_constraint(predicate, bound, current)
        if constraint is None:
            return state
        met = current.meet(constraint)
        if met is None:
            return None
        if met == current:
            return state
        state = dict(state)
        state[id(value)] = met
        return state


def _predicate_constraint(predicate: str, bound: Interval,
                          current: Interval) -> Interval | None:
    """Interval implied for the left operand of ``lhs <predicate> rhs``
    given ``rhs``'s interval.  ``None`` means no constraint."""
    if predicate == "eq":
        return bound
    if predicate == "ne":
        if bound.is_constant:
            if current.lo is not None and current.lo == bound.lo:
                return Interval(current.lo + 1, None)
            if current.hi is not None and current.hi == bound.lo:
                return Interval(None, current.hi - 1)
        return None
    if predicate in ("ult", "ule", "ugt", "uge"):
        # Unsigned compares agree with signed ones only when both sides
        # are provably non-negative.
        if bound.lo is None or bound.lo < 0 or \
                current.lo is None or current.lo < 0:
            return None
        predicate = "s" + predicate[1:]
    if predicate == "slt":
        return None if bound.hi is None else Interval(None, bound.hi - 1)
    if predicate == "sle":
        return None if bound.hi is None else Interval(None, bound.hi)
    if predicate == "sgt":
        return None if bound.lo is None else Interval(bound.lo + 1, None)
    if predicate == "sge":
        return None if bound.lo is None else Interval(bound.lo, None)
    return None


def _compare(predicate: str, lhs: Interval, rhs: Interval) -> bool | None:
    """Decide ``lhs <predicate> rhs`` if the intervals permit."""
    if predicate in ("ult", "ule", "ugt", "uge"):
        if lhs.lo is None or lhs.lo < 0 or rhs.lo is None or rhs.lo < 0:
            return None
        predicate = "s" + predicate[1:]
    if predicate == "eq":
        if lhs.is_constant and rhs.is_constant and lhs.lo == rhs.lo:
            return True
        if lhs.meet(rhs) is None:
            return False
        return None
    if predicate == "ne":
        verdict = _compare("eq", lhs, rhs)
        return None if verdict is None else not verdict
    if predicate == "slt":
        if lhs.hi is not None and rhs.lo is not None and lhs.hi < rhs.lo:
            return True
        if lhs.lo is not None and rhs.hi is not None and lhs.lo >= rhs.hi:
            return False
        return None
    if predicate == "sle":
        verdict = _compare("sgt", lhs, rhs)
        return None if verdict is None else not verdict
    if predicate == "sgt":
        return _compare("slt", rhs, lhs)
    if predicate == "sge":
        verdict = _compare("slt", lhs, rhs)
        return None if verdict is None else not verdict
    return None
