"""Whole-module interprocedural analysis driver.

Orchestration: build the call graph, walk its SCCs bottom-up (callees
before callers), compute per-function effect summaries for each SCC,
then run the lint clients over each member with every callee summary in
hand.  The result is the superset of the intraprocedural lint: the same
local proofs plus cross-function use-after-free/double-free/invalid-free
(a callee that frees its argument), leaks at program exit, null
dereferences through always-NULL-returning callees, uninitialized reads
flowing into callees, and effective-type violations of summarized
callee accesses.

Incrementality rides on the PR-4 content-addressed cache: each SCC's
summaries *and* findings are stored in the ``analysis`` tier under a
key covering the member functions' IR hashes and the digests of every
external callee summary the SCC consumed.  Editing one function dirties
exactly its own SCC and the SCCs on call paths into it; everything else
is a cache hit and is not re-analyzed.

Two pipelines share this driver and must not share cache entries:

* ``transform=True`` (lint): runs :class:`UninitAnalysis` on the front
  end's IR, then promotes allocas (mem2reg) so the SSA clients see
  stored values, then runs all clients.  Mutates the module, but only
  *best-effort*: cache-hit SCCs skip the whole pipeline including the
  transform, so which functions end up promoted depends on cache
  state.  Callers must treat the module's post-lint IR as unspecified
  and re-compile if they need either the unoptimized or a fully
  promoted form.
* ``transform=False`` (check elision): summaries only, computed on the
  unoptimized IR the engine will actually execute.  Never mutates.
"""

from __future__ import annotations

from ... import ir
from ...cache.jitcache import function_ir_hash
from ...ir import instructions as inst
from ...obs.spans import span
from ...opt import mem2reg
from ...source import SourceLocation
from ..heapstate import Finding, UninitAnalysis
from ..pointers import NULL, PointerAnalysis
from .callgraph import CallGraph
from .effective import effective_findings
from .summaries import FunctionSummary, summarize_scc

# Part of every cache key: bump on any change to the summary schema,
# the clients, or the analyses they consume.  Old entries then miss.
ANALYSIS_VERSION = 2


class ModuleAnalysis:
    """Everything the interprocedural pass learned about one module."""

    __slots__ = ("callgraph", "summaries", "findings", "stats")

    def __init__(self, callgraph: CallGraph,
                 summaries: dict[str, FunctionSummary],
                 findings: list[Finding], stats: dict):
        self.callgraph = callgraph
        self.summaries = summaries
        self.findings = findings
        self.stats = stats


def analyze_module(module: ir.Module, cache=None,
                   transform: bool = True) -> ModuleAnalysis:
    """Run the interprocedural analysis over ``module``.

    ``cache`` is a :class:`repro.cache.CompilationCache` (or None); with
    a cache, unchanged SCCs are restored from the ``analysis`` tier
    instead of re-analyzed.  ``transform=False`` computes summaries only
    (for the elision pass) and leaves the module untouched.
    """
    defined = {name: function for name, function in
               module.functions.items() if function.is_definition}
    # IR hashes must be taken before mem2reg rewrites the bodies (the
    # hash is memoized on the function object, so the engine's own use
    # of the same hash later stays consistent).
    hashes = {name: function_ir_hash(function)
              for name, function in defined.items()}
    with span("analysis:callgraph", functions=len(defined)):
        callgraph = CallGraph(module)
    pipeline = "m2r" if transform else "o0"
    summaries: dict[str, FunctionSummary] = {}
    findings: list[Finding] = []
    stats = {"functions": len(defined), "sccs": len(callgraph.sccs),
             "scc_hits": 0, "scc_misses": 0}
    for scc in callgraph.sccs:
        key = _scc_key(callgraph, scc, hashes, summaries, pipeline)
        if cache is not None:
            decoded = _decode(cache.get_analysis(key), scc)
            if decoded is not None:
                scc_summaries, scc_findings = decoded
                summaries.update(scc_summaries)
                findings.extend(scc_findings)
                stats["scc_hits"] += 1
                # Cache-hit members are NOT promoted (mem2reg costs
                # more than the whole warm re-analysis); the module's
                # post-lint IR is therefore unspecified — see the
                # module docstring.
                continue
        stats["scc_misses"] += 1
        scc_findings = _analyze_scc(callgraph, scc, summaries, transform)
        findings.extend(scc_findings)
        if cache is not None:
            cache.put_analysis(key, _encode(scc, summaries, scc_findings))
    return ModuleAnalysis(callgraph, summaries, findings, stats)


def module_summaries(module: ir.Module, cache=None
                     ) -> dict[str, FunctionSummary]:
    """Summaries over the *unoptimized* module, for the elision pass."""
    return analyze_module(module, cache=cache, transform=False).summaries


def _analyze_scc(callgraph: CallGraph, scc: list[str],
                 summaries: dict[str, FunctionSummary],
                 transform: bool) -> list[Finding]:
    members = [callgraph.defined[name] for name in scc]
    scc_findings: list[Finding] = []
    if transform:
        for function in members:
            # Uninitialized-read evidence lives in the front end's IR;
            # mem2reg rewrites those loads into undef, so this client
            # (and the summaries' reads_uninit bit it feeds) run first.
            scc_findings.extend(
                UninitAnalysis(function, summaries=summaries).findings())
            mem2reg.run(function)
    with span("analysis:summaries", scc=",".join(scc)):
        bundles = summarize_scc(members, summaries,
                                callgraph.is_recursive(scc))
    if transform:
        with span("analysis:clients", scc=",".join(scc)):
            for function in members:
                bundle = bundles[function.name]
                scc_findings.extend(
                    access_findings(function, bundle.pointers))
                scc_findings.extend(bundle.heap.findings())
                scc_findings.extend(effective_findings(
                    function, bundle.pointers, summaries))
                if function.name == "main":
                    # Exit leaks are only meaningful where the program
                    # ends; elsewhere a live pointer may still be used.
                    scc_findings.extend(bundle.heap.leak_findings())
    return scc_findings


# -- incremental cache ------------------------------------------------------

def _scc_key(callgraph: CallGraph, scc: list[str], hashes: dict,
             summaries: dict, pipeline: str) -> str:
    """Cache key for one SCC: member IR (pre-mem2reg) plus the digest of
    every external summary the analysis may consult.  Undefined callees
    are keyed by the member IR alone — their names appear in the printed
    call instructions, and the analyses treat them by name."""
    from ...cache.store import hash_key
    member_set = set(scc)
    externals = set()
    for name in scc:
        externals.update(callgraph.callees(name) - member_set)
    external_digests = sorted(
        (callee, summaries[callee].digest() if callee in summaries
         else "") for callee in externals)
    return hash_key("analysis", ANALYSIS_VERSION, pipeline,
                    sorted((name, hashes[name]) for name in scc),
                    external_digests)


def _encode(scc: list[str], summaries: dict,
            findings: list[Finding]) -> dict:
    return {
        "summaries": {name: summaries[name].to_dict() for name in scc
                      if name in summaries},
        "findings": [_finding_dict(finding) for finding in findings],
    }


def _decode(payload, scc: list[str]):
    """(summaries, findings) from a cached payload, or None when the
    payload does not cover this SCC (treated as a miss)."""
    if not isinstance(payload, dict):
        return None
    try:
        encoded = payload["summaries"]
        scc_summaries = {name: FunctionSummary.from_dict(encoded[name])
                         for name in scc}
        scc_findings = [_finding_from_dict(entry)
                        for entry in payload["findings"]]
    except (KeyError, TypeError, ValueError, AttributeError):
        return None
    return scc_summaries, scc_findings


def _finding_dict(finding: Finding) -> dict:
    loc = finding.loc
    return {"kind": finding.kind, "message": finding.message,
            "file": loc.filename if loc else "<unknown>",
            "line": loc.line if loc else 0,
            "column": loc.column if loc else 0,
            "function": finding.function}


def _finding_from_dict(entry: dict) -> Finding:
    loc = SourceLocation(entry["file"], entry["line"], entry["column"])
    return Finding(entry["kind"], entry["message"], loc,
                   entry["function"])


# -- local access clients (shared with the intraprocedural lint) ------------

def access_findings(function: ir.Function,
                    pointers: PointerAnalysis) -> list[Finding]:
    """NULL-dereference and constant out-of-bounds findings from the
    pointer facts."""
    findings: list[Finding] = []
    # An out-of-range address that is then dereferenced is reported at
    # the access (the sharper message, with the access size); keep the
    # arithmetic finding only for addresses no reachable access consumes
    # (e.g. an address that escapes into a call).
    dereferenced: set[int] = set()
    for block in pointers.cfg.reverse_postorder:
        if not pointers.result.reached(block):
            continue
        for instruction in block.instructions:
            if isinstance(instruction, (inst.Load, inst.Store)):
                dereferenced.add(id(instruction.pointer))

    def check(block, instruction, state):
        if isinstance(instruction, (inst.Load, inst.Store)):
            fact = pointers.fact_for(instruction.pointer, state)
            verb = "load" if isinstance(instruction, inst.Load) else "store"
            if fact.nullness == NULL:
                findings.append(Finding(
                    "null-dereference",
                    f"{verb} through a pointer that is NULL on every "
                    f"path here", instruction.loc, function.name))
                return
            access_type = instruction.result.type \
                if isinstance(instruction, inst.Load) \
                else instruction.value.type
            _check_bounds(fact, access_type.size, verb, instruction,
                          findings, function)
        elif isinstance(instruction, inst.Gep):
            if id(instruction.result) in dereferenced:
                return
            # ``state`` precedes the instruction; apply its own transfer
            # to obtain the fact for the address it computes.
            after = dict(state)
            pointers._transfer_instruction(instruction, after)
            fact = after.get(id(instruction.result))
            # The gep itself only computes an address; C allows one-
            # past-the-end pointers, so flag only offsets that no
            # in-bounds or one-past-end pointer could have.
            if fact is None or fact.region is None or \
                    fact.offset is None or fact.region.size is None:
                return
            if fact.offset.above(fact.region.size) or \
                    fact.offset.below(0):
                findings.append(Finding(
                    "out-of-bounds",
                    f"pointer arithmetic yields offset {fact.offset} "
                    f"outside {fact.region.label} "
                    f"({fact.region.size} bytes)",
                    instruction.loc, function.name))

    pointers.visit(check)
    return findings


def _check_bounds(fact, access_size: int, verb: str, instruction,
                  findings, function) -> None:
    region = fact.region
    if region is None or fact.offset is None or region.size is None:
        return
    if region.kind == "param":
        # A param region is an identity, not a bound: the callee does
        # not know the pointee's size.  Summaries carry these accesses
        # to the caller instead.
        return
    offset = fact.offset
    # Definite violation only: every admissible offset must fall outside
    # [0, size - access_size].
    if offset.below(0) or offset.above(region.size - access_size):
        findings.append(Finding(
            "out-of-bounds",
            f"{verb} of {access_size} byte(s) at offset {offset} is "
            f"outside {region.label} ({region.size} bytes)",
            instruction.loc, function.name))


__all__ = ["ModuleAnalysis", "analyze_module", "module_summaries",
           "access_findings", "ANALYSIS_VERSION"]
