"""Whole-module call graph with indirect-call resolution.

Direct edges come straight from ``Call`` instructions whose callee is a
:class:`~repro.ir.module.Function`.  Indirect sites (calls through a
function-pointer register) are resolved by a flow-insensitive
Andersen-style points-to pass over function-address constants: every
place a function's address can flow — register copies (bitcast, phi,
select), non-escaping -O0 stack slots, global variables and their
initializers, argument/return plumbing of direct calls — becomes an
inclusion constraint, and the solver propagates *sets of function
names* to a fixpoint.  A pointer the pass cannot track falls back to
the set of address-taken functions with a compatible signature, so the
resolved target set is always a sound over-approximation: the dynamic
inline cache (PR 4) can only ever observe a subset of it (the
differential test in ``tests/analysis`` pins exactly that).

SCCs of the defined-function subgraph come from Tarjan's algorithm;
``sccs`` lists them callees-first, which is the bottom-up order the
summary computation consumes.
"""

from __future__ import annotations

from ... import ir
from ...ir import instructions as inst
from ...ir import types as irt
from ...ir import values as irv
from ..dataflow import scalar_slots

# Points-to lattice top: "this pointer may hold any address-taken
# function" (resolved per site against the signature-compatible set).
_TOP = object()


class IndirectSite:
    """One indirect call site and its resolved target set."""

    __slots__ = ("call", "caller", "targets", "exact")

    def __init__(self, call: inst.Call, caller: str,
                 targets: frozenset[str], exact: bool):
        self.call = call
        self.caller = caller
        self.targets = targets  # function names (sound over-approx)
        self.exact = exact      # False when the fallback set was used

    def __repr__(self) -> str:
        kind = "exact" if self.exact else "fallback"
        return (f"<IndirectSite in @{self.caller} {kind} "
                f"targets={sorted(self.targets)}>")


class CallGraph:
    """Call graph over one module (typically the linked program)."""

    def __init__(self, module: ir.Module):
        self.module = module
        self.defined = {name: function
                        for name, function in module.functions.items()
                        if function.is_definition}
        # caller name -> set of callee names (incl. declarations).
        self.direct_edges: dict[str, set[str]] = {
            name: set() for name in self.defined}
        # Direct calls whose callee is not a Function value or names no
        # function known to the module (must stay empty on the corpus).
        self.unresolved_direct: list[tuple[str, str]] = []
        self.address_taken: set[str] = set()
        self.indirect_sites: dict[int, IndirectSite] = {}
        self._collect_direct_and_address_taken()
        self._resolve_indirect()
        # Defined-to-defined edges only; SCCs and the bottom-up order
        # are over these.
        self.edges: dict[str, set[str]] = {
            name: {callee for callee in callees if callee in self.defined}
            for name, callees in self.direct_edges.items()}
        for site in self.indirect_sites.values():
            self.edges[site.caller].update(
                name for name in site.targets if name in self.defined)
        self.sccs: list[list[str]] = self._tarjan()

    # -- queries ------------------------------------------------------------

    def callees(self, name: str) -> set[str]:
        """Defined functions ``name`` may call (direct + indirect)."""
        return set(self.edges.get(name, ()))

    def targets_of(self, call: inst.Call) -> frozenset[str] | None:
        """Resolved target names of a call: a singleton for direct
        calls, the points-to set for indirect ones, None if unknown."""
        callee = call.callee
        if isinstance(callee, ir.Function):
            return frozenset((callee.name,))
        if isinstance(callee, irv.GlobalValue) and \
                not isinstance(callee, irv.VirtualRegister):
            return frozenset((callee.name,))
        site = self.indirect_sites.get(id(call))
        return site.targets if site is not None else None

    # -- direct edges & address-taken ---------------------------------------

    def _collect_direct_and_address_taken(self) -> None:
        for gvar in self.module.globals.values():
            self._functions_in_constant(gvar.initializer,
                                        self.address_taken)
        for name, function in self.defined.items():
            for instruction in function.instructions():
                if isinstance(instruction, inst.Call):
                    callee = instruction.callee
                    if isinstance(callee, ir.Function):
                        self.direct_edges[name].add(callee.name)
                    elif isinstance(callee, irv.VirtualRegister):
                        pass  # indirect; resolved below
                    elif isinstance(callee, irv.GlobalValue):
                        if callee.name in self.module.functions:
                            self.direct_edges[name].add(callee.name)
                        else:
                            self.unresolved_direct.append(
                                (name, callee.name))
                    else:
                        self.unresolved_direct.append(
                            (name, repr(callee)))
                    operands = instruction.args
                else:
                    operands = instruction.operands()
                for operand in operands:
                    self._functions_in_constant(operand,
                                                self.address_taken)

    def _functions_in_constant(self, value, into: set[str]) -> None:
        if value is None:
            return
        if isinstance(value, ir.Function):
            into.add(value.name)
        elif isinstance(value, (irv.ConstArray, irv.ConstStruct)):
            for element in value.elements:
                self._functions_in_constant(element, into)
        elif isinstance(value, irv.ConstGEP):
            self._functions_in_constant(value.base, into)

    # -- Andersen-style points-to over function constants -------------------

    def _resolve_indirect(self) -> None:
        pts: dict[object, object] = {}   # var -> set[str] | _TOP
        copies: dict[object, set] = {}   # src var -> {dst vars}

        def add(var, names) -> bool:
            current = pts.get(var)
            if current is _TOP:
                return False
            if names is _TOP:
                pts[var] = _TOP
                return True
            if current is None:
                current = pts[var] = set()
            before = len(current)
            current.update(names)
            return len(current) != before

        def copy_edge(src, dst) -> None:
            copies.setdefault(src, set()).add(dst)

        def value_var(value, slots):
            """The points-to variable for ``value``, a seed set for a
            function constant, or _TOP for anything untracked."""
            if isinstance(value, ir.Function):
                return ("seed", frozenset((value.name,)))
            if isinstance(value, irv.VirtualRegister):
                return ("r", id(value))
            if isinstance(value, irv.ConstNull):
                return ("seed", frozenset())
            if isinstance(value, irv.GlobalVariable):
                return ("seed", frozenset())  # address of data, not code
            return ("seed", _TOP) if _may_hold_function(value) \
                else ("seed", frozenset())

        seeds: list[tuple[object, object]] = []
        for gname, gvar in self.module.globals.items():
            names: set[str] = set()
            self._functions_in_constant(gvar.initializer, names)
            if names:
                seeds.append((("g", gname), names))

        indirect_calls: list[tuple[str, inst.Call]] = []
        for fname, function in self.defined.items():
            slots = scalar_slots(
                function,
                lambda t: isinstance(t, irt.PointerType) and
                isinstance(t.pointee, irt.FunctionType))

            def link(value, dst) -> None:
                var = value_var(value, slots)
                if var[0] == "seed":
                    seeds.append((dst, var[1]))
                else:
                    copy_edge(var, dst)

            for instruction in function.instructions():
                result = instruction.result
                if isinstance(instruction, inst.Cast):
                    if result is not None and \
                            _may_hold_function(result):
                        link(instruction.value, ("r", id(result)))
                elif isinstance(instruction, inst.Phi):
                    if _may_hold_function(result):
                        for _, value in instruction.incoming:
                            link(value, ("r", id(result)))
                elif isinstance(instruction, inst.Select):
                    if _may_hold_function(result):
                        link(instruction.if_true, ("r", id(result)))
                        link(instruction.if_false, ("r", id(result)))
                elif isinstance(instruction, inst.Load):
                    if not _may_hold_function(result):
                        continue
                    pointer = instruction.pointer
                    if isinstance(pointer, irv.VirtualRegister) and \
                            id(pointer) in slots:
                        copy_edge(("m", id(pointer)), ("r", id(result)))
                    elif isinstance(pointer, irv.GlobalVariable):
                        copy_edge(("g", pointer.name), ("r", id(result)))
                    elif isinstance(pointer, irv.ConstGEP) and \
                            isinstance(pointer.base, irv.GlobalVariable):
                        copy_edge(("g", pointer.base.name),
                                  ("r", id(result)))
                    else:
                        seeds.append((("r", id(result)), _TOP))
                elif isinstance(instruction, inst.Store):
                    value = instruction.value
                    if not _may_hold_function(value):
                        continue
                    pointer = instruction.pointer
                    if isinstance(pointer, irv.VirtualRegister) and \
                            id(pointer) in slots:
                        link(value, ("m", id(pointer)))
                    elif isinstance(pointer, irv.GlobalVariable):
                        link(value, ("g", pointer.name))
                    elif isinstance(pointer, irv.ConstGEP) and \
                            isinstance(pointer.base, irv.GlobalVariable):
                        # Mirror of the Load case: an element of a
                        # global aggregate shares the whole global's
                        # points-to variable.
                        link(value, ("g", pointer.base.name))
                    else:
                        # Stored through a pointer the pass does not
                        # model (runtime GEP, heap, ...).  Loads through
                        # such pointers are TOP and tracked slots are
                        # non-escaping, but a ConstGEP load from a
                        # global still resolves from its ("g", name)
                        # variable — so any global the destination could
                        # alias must absorb the value.
                        for gname in self.module.globals:
                            link(value, ("g", gname))
                elif isinstance(instruction, inst.Call):
                    callee = instruction.callee
                    if isinstance(callee, irv.VirtualRegister):
                        indirect_calls.append((fname, instruction))
                    target = callee if isinstance(callee, ir.Function) \
                        else self.module.functions.get(
                            getattr(callee, "name", ""))
                    if target is not None and target.is_definition:
                        for index, arg in enumerate(instruction.args):
                            if index >= len(target.params):
                                break
                            if _may_hold_function(target.params[index]):
                                link(arg, ("p", target.name, index))
                        if result is not None and \
                                _may_hold_function(result):
                            copy_edge(("ret", target.name),
                                      ("r", id(result)))
                    elif result is not None and \
                            _may_hold_function(result):
                        seeds.append((("r", id(result)), _TOP))
                elif isinstance(instruction, inst.Ret):
                    if instruction.value is not None and \
                            _may_hold_function(instruction.value):
                        link(instruction.value, ("ret", fname))
            for index, param in enumerate(function.params):
                if _may_hold_function(param):
                    copy_edge(("p", fname, index), ("r", id(param)))
                    if fname == "main" or fname in self.address_taken:
                        # Params of entry points / address-taken
                        # functions can receive anything.
                        seeds.append((("p", fname, index), _TOP))

        worklist: list[object] = []
        for var, names in seeds:
            if add(var, names):
                worklist.append(var)
        while worklist:
            var = worklist.pop()
            names = pts.get(var)
            for dst in copies.get(var, ()):
                if add(dst, names):
                    worklist.append(dst)

        for caller, call in indirect_calls:
            entry = pts.get(("r", id(call.callee)))
            if entry is _TOP or entry is None or not entry:
                targets = frozenset(
                    name for name in sorted(self.address_taken)
                    if self._signature_compatible(name, call))
                exact = False
            else:
                targets = frozenset(entry)
                exact = True
            self.indirect_sites[id(call)] = IndirectSite(
                call, caller, targets, exact)

    def _signature_compatible(self, name: str, call: inst.Call) -> bool:
        function = self.module.functions.get(name)
        if function is None:
            return True  # unknown shape: keep it (over-approximate)
        ftype = function.ftype
        fixed = len(ftype.params)
        if ftype.is_varargs:
            return len(call.args) >= fixed
        return len(call.args) == fixed

    # -- SCCs (Tarjan, iterative) -------------------------------------------

    def _tarjan(self) -> list[list[str]]:
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(self.edges.get(root, ()))))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(sorted(self.edges.get(succ, ())))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(sorted(component))

        for name in sorted(self.defined):
            if name not in index:
                strongconnect(name)
        # Tarjan emits each SCC only after every SCC it reaches, so the
        # emission order is already callees-first (bottom-up).
        return sccs

    def is_recursive(self, scc: list[str]) -> bool:
        """Does this SCC contain a cycle (mutual or self recursion)?"""
        if len(scc) > 1:
            return True
        (name,) = scc
        return name in self.edges.get(name, ())


def _may_hold_function(value) -> bool:
    """Can this value's type hold a function address?"""
    vtype = getattr(value, "type", None)
    while isinstance(vtype, irt.PointerType):
        vtype = vtype.pointee
        if isinstance(vtype, irt.FunctionType):
            return True
    # i64 round-trips of function pointers (ptrtoint) are rare; the
    # pass treats them as untracked only if they feed an indirect call,
    # which goes TOP through the Cast rule's absence anyway.
    return False
