"""Per-function effect summaries, computed bottom-up over call-graph
SCCs.

A :class:`FunctionSummary` records, for each pointer parameter, whether
the callee *may* or *must* free it, whether it can escape (be retained
so unknown later code could touch it), whether the pointee is fully
written on every path, whether it is definitely read before any write
(an uninitialized-read conduit), and at which offsets/types it is
unconditionally dereferenced (the effective-type constraints).  At the
function level it records the nullness of the returned pointer and
whether the return value is a *fresh* heap allocation — which lets the
caller's analyses treat a malloc wrapper exactly like ``malloc``.

The must/may split follows the lint's proof discipline: a ``must_*``
fact starts from the analyses' join over *all* paths, so a client can
turn it directly into a diagnostic; ``may_*``/``escapes`` facts are
over-approximations used only to *suppress* claims (and to keep the
check-elision proofs sound).

Summaries serialize to plain JSON (``to_dict``/``from_dict``) so the
driver can store them in the content-addressed ``analysis`` cache tier;
``digest()`` is the canonical hash used in downstream cache keys.

Within a recursive SCC the computation iterates from the conservative
bottom (intra-SCC callees unknown): every iteration consumes only sound
summaries and therefore produces sound ones, so the loop may stop at
any round — it runs until stable or a small bound.
"""

from __future__ import annotations

import hashlib
import json

from ...ir import instructions as inst
from ...ir import types as irt
from ...ir import values as irv
from ...ir.module import Block, Function
from ..cfg import ControlFlowGraph
from ..dataflow import DataflowAnalysis, solve
from ..heapstate import (FREED, LIVE, _NON_FREEING, _NON_FREEING_COPIERS,
                         HeapStateAnalysis)
from ..intervals import IntervalAnalysis
from ..pointers import NONNULL, NULL, PointerAnalysis

_MEM_WRITERS = {"memset", "memcpy", "memmove"}


class ParamSummary:
    """Effects of one function parameter (trivial for non-pointers)."""

    __slots__ = ("pointer", "may_free", "must_free", "escapes", "writes",
                 "reads_uninit", "derefs")

    def __init__(self, pointer: bool = False, may_free: bool = False,
                 must_free: bool = False, escapes: bool = False,
                 writes: bool = False, reads_uninit: bool = False,
                 derefs: tuple = ()):
        self.pointer = pointer
        self.may_free = may_free
        self.must_free = must_free
        self.escapes = escapes
        # Pointee is fully written on every path to every return.
        self.writes = writes
        # Pointee is definitely read before any write on every run.
        self.reads_uninit = reads_uninit
        # Unconditional dereferences: ((byte_offset, kind, size), ...)
        # with kind in {"int", "float", "ptr"} — effective-type
        # constraints the caller's argument must satisfy.
        self.derefs = tuple(sorted(tuple(d) for d in derefs))

    @property
    def safe(self) -> bool:
        """Passing a pointer here cannot free or retain it."""
        return self.pointer and not self.may_free and not self.escapes

    def to_dict(self) -> dict:
        if not self.pointer:
            return {"pointer": False}
        return {
            "pointer": True,
            "may_free": self.may_free,
            "must_free": self.must_free,
            "escapes": self.escapes,
            "writes": self.writes,
            "reads_uninit": self.reads_uninit,
            "derefs": [list(d) for d in self.derefs],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ParamSummary":
        if not payload.get("pointer"):
            return cls(pointer=False)
        return cls(pointer=True,
                   may_free=payload["may_free"],
                   must_free=payload["must_free"],
                   escapes=payload["escapes"],
                   writes=payload["writes"],
                   reads_uninit=payload["reads_uninit"],
                   derefs=[tuple(d) for d in payload["derefs"]])

    @classmethod
    def unknown(cls) -> "ParamSummary":
        """The conservative top: may do anything to its argument."""
        return cls(pointer=True, may_free=True, must_free=False,
                   escapes=True, writes=False, reads_uninit=False)

    def __repr__(self) -> str:
        if not self.pointer:
            return "<ParamSummary non-pointer>"
        bits = [name for name, flag in (
            ("may_free", self.may_free), ("must_free", self.must_free),
            ("escapes", self.escapes), ("writes", self.writes),
            ("reads_uninit", self.reads_uninit)) if flag]
        return f"<ParamSummary {' '.join(bits) or 'safe'}>"


class FunctionSummary:
    """Whole-function effect summary."""

    __slots__ = ("name", "params", "returns_null", "returns_new_heap",
                 "ret_size")

    def __init__(self, name: str, params: list[ParamSummary],
                 returns_null: str = "maybe",
                 returns_new_heap: bool = False,
                 ret_size: int | None = None):
        self.name = name
        self.params = params
        self.returns_null = returns_null  # "always" | "never" | "maybe"
        self.returns_new_heap = returns_new_heap
        self.ret_size = ret_size

    def param(self, index: int) -> ParamSummary:
        if 0 <= index < len(self.params):
            return self.params[index]
        return ParamSummary.unknown()  # varargs tail: assume anything

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "params": [p.to_dict() for p in self.params],
            "returns_null": self.returns_null,
            "returns_new_heap": self.returns_new_heap,
            "ret_size": self.ret_size,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionSummary":
        return cls(payload["name"],
                   [ParamSummary.from_dict(p) for p in payload["params"]],
                   payload["returns_null"], payload["returns_new_heap"],
                   payload["ret_size"])

    def digest(self) -> str:
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __eq__(self, other) -> bool:
        return isinstance(other, FunctionSummary) and \
            self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.digest())

    def __repr__(self) -> str:
        return f"<FunctionSummary @{self.name} ret={self.returns_null}>"


# Per-param pointee write coverage: a finite must-lattice ordered
# UNWRITTEN > PARTIAL > FULL for join purposes (join takes the weakest).
_UNWRITTEN = 2
_PARTIAL = 1
_FULL = 0

# The two per-param facts are directional opposites, so each needs its
# own join: ``coverage`` ("fully written on every path", feeds
# ``writes``) joins toward _UNWRITTEN, while ``must_unwritten``
# ("no path has written any of the pointee", feeds ``reads_uninit``)
# joins with AND — after merging a written and an unwritten path the
# pointee is neither provably written nor provably unwritten.
_SEED = (_UNWRITTEN, True)


class ParamAccessAnalysis(DataflowAnalysis):
    """Tracks, per pointer parameter, a ``(coverage, must_unwritten)``
    pair — how much of the pointee has been written on every path
    (UNWRITTEN / PARTIAL / FULL) and whether it is provably unwritten on
    *all* paths — and collects the unconditional dereference set.
    Shares the pointer analysis (which seeds ``param`` regions), so
    accesses through copies, casts, and -O0 stack-slot reloads all
    resolve back to the parameter."""

    def __init__(self, function: Function, pointers: PointerAnalysis,
                 summaries: dict[str, "FunctionSummary"] | None = None):
        super().__init__()
        self.function = function
        self.pointers = pointers
        self.cfg = pointers.cfg
        self.summaries = summaries or {}
        self.param_index = {id(param): index
                            for index, param in enumerate(function.params)}
        self.pointer_params = [
            param for param in function.params
            if isinstance(param.type, irt.PointerType)]
        self.result = None
        # Filled by collect(): per-param-index facts.
        self.reads_uninit: set[int] = set()
        self.derefs: dict[int, set[tuple]] = {}
        self.writes_full: set[int] = set()

    # -- lattice ------------------------------------------------------------

    def boundary_state(self, function: Function):
        return {id(param): _SEED for param in self.pointer_params}

    def join(self, states):
        if not states:
            return {}
        # Keys are seeded at the boundary so every state has them; a
        # missing key (degenerate path) counts as the unwritten seed.
        merged = dict(states[0])
        for state in states[1:]:
            for key in merged:
                coverage, unwritten = merged[key]
                other_cov, other_unw = state.get(key, _SEED)
                merged[key] = (max(coverage, other_cov),
                               unwritten and other_unw)
        return merged

    def transfer(self, block: Block, state):
        state = dict(state)
        for instruction in block.instructions:
            self._transfer_instruction(instruction, state)
        return state

    def _param_of(self, value) -> int | None:
        """Parameter index ``value`` provably points into (at any
        offset), or None."""
        region = self.pointers.region_of(value)
        if region is not None and region.kind == "param":
            return self.param_index.get(id(region.site))
        return None

    def _pointee_size(self, index: int) -> int | None:
        pointee = self.function.params[index].type.pointee
        try:
            return pointee.size
        except TypeError:
            return None

    def _store_coverage(self, instruction: inst.Store, index: int) -> int:
        fact = self.pointers.fact_for(instruction.pointer)
        size = self._pointee_size(index)
        try:
            access = instruction.value.type.size
        except TypeError:
            return _PARTIAL
        if size is not None and access >= size and fact.offset is not None \
                and fact.offset.is_constant and fact.offset.lo == 0:
            return _FULL
        return _PARTIAL

    def _transfer_instruction(self, instruction, state) -> None:
        if isinstance(instruction, inst.Store):
            index = self._param_of(instruction.pointer)
            if index is not None:
                key = id(self.function.params[index])
                coverage, _ = state.get(key, _SEED)
                state[key] = (min(coverage,
                                  self._store_coverage(instruction, index)),
                              False)
        elif isinstance(instruction, inst.Call):
            self._transfer_call(instruction, state)

    def _transfer_call(self, instruction: inst.Call, state) -> None:
        callee = instruction.callee
        name = callee.name if isinstance(callee, Function) else None
        summary = self.summaries.get(name) if name is not None else None
        for position, arg in enumerate(instruction.args):
            index = self._param_of(arg)
            if index is None:
                continue
            key = id(self.function.params[index])
            coverage, _ = state.get(key, _SEED)
            if name in _MEM_WRITERS and position == 0:
                state[key] = (min(coverage,
                                  self._memwrite_coverage(instruction,
                                                          index)),
                              False)
            elif name in _NON_FREEING or \
                    (name in _NON_FREEING_COPIERS and position != 0) or \
                    name in ("free", "realloc"):
                continue  # reads (or frees) but never writes the pointee
            elif summary is not None and summary.param(position).writes \
                    and self._callee_covers_pointee(instruction, position,
                                                    index):
                # The callee fully writes its pointee, the argument is
                # the start of ours, and the callee's pointee is at
                # least as large: ours is fully written too.
                state[key] = (_FULL, False)
            else:
                # Unknown callee, or a summarized one whose full write
                # does not provably cover our pointee: it may write some
                # of it.  Both must-claims degrade.
                state[key] = (min(coverage, _PARTIAL), False)

    def _callee_covers_pointee(self, instruction: inst.Call,
                               position: int, index: int) -> bool:
        """A callee that fully writes its parameter's pointee fully
        writes *ours* only when the argument points at our pointee's
        start and the callee's declared pointee is at least as large —
        ``f(p + 4)`` or a cast to a narrower pointee is a partial
        write."""
        fact = self.pointers.fact_for(instruction.args[position])
        if fact.offset is None or not fact.offset.is_constant or \
                fact.offset.lo != 0:
            return False
        callee = instruction.callee
        if not isinstance(callee, Function) or \
                position >= len(callee.params):
            return False
        ptype = callee.params[position].type
        if not isinstance(ptype, irt.PointerType):
            return False
        try:
            callee_size = ptype.pointee.size
        except TypeError:
            return False
        size = self._pointee_size(index)
        return size is not None and callee_size >= size

    def _memwrite_coverage(self, instruction: inst.Call,
                           index: int) -> int:
        size = self._pointee_size(index)
        length = instruction.args[2] if len(instruction.args) > 2 else None
        if size is not None and isinstance(length, irv.ConstInt) and \
                length.signed_value >= size:
            fact = self.pointers.fact_for(instruction.args[0])
            if fact.offset is not None and fact.offset.is_constant and \
                    fact.offset.lo == 0:
                return _FULL
        return _PARTIAL

    # -- collection ---------------------------------------------------------

    def run(self) -> "ParamAccessAnalysis":
        if not self.pointer_params:
            self.result = None
            return self
        self.result = solve(self, self.function, self.cfg)
        self._collect()
        return self

    def _collect(self) -> None:
        ret_blocks = [block for block in self.cfg.reverse_postorder
                      if block in self.result.input and
                      isinstance(block.terminator, inst.Ret)]

        def dominates_exits(block: Block) -> bool:
            return bool(ret_blocks) and all(
                self.cfg.dominates(block, ret) for ret in ret_blocks)

        exit_states = []
        for block in self.cfg.reverse_postorder:
            if block not in self.result.input:
                continue
            state = dict(self.result.input[block])
            for instruction in block.instructions:
                self._check_instruction(instruction, state,
                                        dominates_exits(block))
                self._transfer_instruction(instruction, state)
            if isinstance(block.terminator, inst.Ret):
                exit_states.append(state)
        for index, param in enumerate(self.function.params):
            if not isinstance(param.type, irt.PointerType):
                continue
            if exit_states and all(
                    state.get(id(param), _SEED)[0] == _FULL
                    for state in exit_states):
                self.writes_full.add(index)

    def _check_instruction(self, instruction, state,
                           unconditional: bool) -> None:
        if isinstance(instruction, (inst.Load, inst.Store)):
            index = self._param_of(instruction.pointer)
            if index is None:
                return
            key = id(self.function.params[index])
            # reads_uninit is a must-fact, so it needs must_unwritten
            # (no path wrote anything), not merely coverage UNWRITTEN
            # (which also holds after joining a written path with an
            # unwritten one).
            if isinstance(instruction, inst.Load) and unconditional and \
                    state.get(key, _SEED)[1]:
                self.reads_uninit.add(index)
            if unconditional:
                leaf = _access_leaf(instruction, self.pointers)
                if leaf is not None:
                    self.derefs.setdefault(index, set()).add(leaf)
        elif isinstance(instruction, inst.Call):
            callee = instruction.callee
            name = callee.name if isinstance(callee, Function) else None
            summary = self.summaries.get(name) if name else None
            for position, arg in enumerate(instruction.args):
                index = self._param_of(arg)
                if index is None:
                    continue
                key = id(self.function.params[index])
                unwritten = state.get(key, _SEED)[1]
                reads = False
                if name in ("memcpy", "memmove") and position == 1:
                    length = instruction.args[2] \
                        if len(instruction.args) > 2 else None
                    reads = isinstance(length, irv.ConstInt) and \
                        length.signed_value > 0
                elif summary is not None:
                    reads = summary.param(position).reads_uninit
                if reads and unwritten and unconditional:
                    self.reads_uninit.add(index)


def _access_leaf(instruction, pointers) -> tuple | None:
    """(byte_offset, kind, size) of a load/store whose offset into its
    region is constant; None when untyped or unbounded."""
    fact = pointers.fact_for(instruction.pointer)
    if fact.offset is None or not fact.offset.is_constant:
        return None
    access_type = instruction.result.type \
        if isinstance(instruction, inst.Load) else instruction.value.type
    kind = _type_kind(access_type)
    if kind is None:
        return None
    try:
        size = access_type.size
    except TypeError:
        return None
    return (fact.offset.lo, kind, size)


def _type_kind(access_type) -> str | None:
    if isinstance(access_type, irt.IntType):
        return "int"
    if isinstance(access_type, irt.FloatType):
        return "float"
    if isinstance(access_type, irt.PointerType):
        return "ptr"
    return None


class FunctionAnalysisBundle:
    """One function's shared analysis pipeline: CFG, intervals, pointer
    facts with ``param`` regions, heap/param allocation states, and the
    parameter-access facts.  Both the summary construction and the
    interprocedural lint clients consume the same bundle, so each
    function is analyzed once per summary round."""

    def __init__(self, function: Function,
                 summaries: dict[str, FunctionSummary]):
        self.function = function
        self.summaries = summaries
        self.cfg = ControlFlowGraph(function)
        self.intervals = IntervalAnalysis(function, self.cfg).run()
        self.pointers = PointerAnalysis(
            function, self.intervals, self.cfg,
            summaries=summaries, param_regions=True).run()
        self.heap = HeapStateAnalysis(
            function, self.pointers, self.cfg,
            summaries=summaries, track_params=True).run()
        self.access = ParamAccessAnalysis(
            function, self.pointers, summaries).run()

    def summary(self) -> FunctionSummary:
        function = self.function
        params = []
        may_free, escapes = self._flow_insensitive_effects()
        exit_heap = self._exit_heap_states()
        for index, param in enumerate(function.params):
            if not isinstance(param.type, irt.PointerType):
                params.append(ParamSummary(pointer=False))
                continue
            must_free = bool(exit_heap) and all(
                state.get(id(param)) == FREED for state in exit_heap)
            params.append(ParamSummary(
                pointer=True,
                may_free=index in may_free,
                must_free=must_free,
                escapes=index in escapes,
                writes=index in self.access.writes_full,
                reads_uninit=index in self.access.reads_uninit,
                derefs=self.access.derefs.get(index, ())))
        returns_null, returns_new_heap, ret_size = self._return_facts()
        return FunctionSummary(function.name, params, returns_null,
                               returns_new_heap, ret_size)

    # -- helpers ------------------------------------------------------------

    def _param_of(self, value) -> int | None:
        region = self.pointers.region_of(value)
        if region is not None and region.kind == "param":
            for index, param in enumerate(self.function.params):
                if param is region.site:
                    return index
        return None

    def _flow_insensitive_effects(self) -> tuple[set[int], set[int]]:
        may_free: set[int] = set()
        escapes: set[int] = set()
        for instruction in self.function.instructions():
            if isinstance(instruction, inst.Call):
                callee = instruction.callee
                name = callee.name if isinstance(callee, Function) \
                    else None
                summary = self.summaries.get(name) if name else None
                for position, arg in enumerate(instruction.args):
                    index = self._param_of(arg)
                    if index is None:
                        continue
                    if name in ("free", "realloc") and position == 0:
                        may_free.add(index)
                    elif name in _NON_FREEING or \
                            name in _NON_FREEING_COPIERS:
                        pass
                    elif summary is not None:
                        effect = summary.param(position)
                        if effect.may_free:
                            may_free.add(index)
                        if effect.escapes:
                            escapes.add(index)
                    else:
                        may_free.add(index)
                        escapes.add(index)
            elif isinstance(instruction, inst.Store):
                index = self._param_of(instruction.value)
                if index is not None and \
                        self.pointers._slot_key(instruction.pointer) is None:
                    escapes.add(index)
            elif isinstance(instruction, inst.Ret):
                if instruction.value is not None:
                    index = self._param_of(instruction.value)
                    if index is not None:
                        escapes.add(index)
        return may_free, escapes

    def _exit_heap_states(self) -> list[dict]:
        states = []
        for block in self.cfg.reverse_postorder:
            if block not in self.heap.result.input or \
                    not isinstance(block.terminator, inst.Ret):
                continue
            state = dict(self.heap.result.input[block])
            for instruction in block.instructions:
                self.heap._transfer_instruction(instruction, state)
            states.append(state)
        return states

    def _return_facts(self) -> tuple[str, bool, int | None]:
        if not isinstance(self.function.ftype.ret, irt.PointerType):
            return "maybe", False, None
        returns_null: str | None = None
        fresh = True
        sizes: set[int | None] = set()
        saw_ret = False
        for block in self.cfg.reverse_postorder:
            if block not in self.pointers.result.input:
                continue
            terminator = block.terminator
            if not isinstance(terminator, inst.Ret) or \
                    terminator.value is None:
                continue
            saw_ret = True
            pstate = dict(self.pointers.result.input[block])
            hstate = dict(self.heap.result.input[block])
            for instruction in block.instructions:
                if instruction is terminator:
                    break
                self.pointers._transfer_instruction(instruction, pstate)
                self.heap._transfer_instruction(instruction, hstate)
            fact = self.pointers.fact_for(terminator.value, pstate)
            verdict = "always" if fact.nullness == NULL else (
                "never" if fact.nullness == NONNULL else "maybe")
            returns_null = verdict if returns_null in (None, verdict) \
                else "maybe"
            region = fact.region
            if region is not None and region.kind == "heap" and \
                    hstate.get(id(region.site)) == LIVE and \
                    fact.offset is not None and fact.offset.is_constant \
                    and fact.offset.lo == 0:
                sizes.add(region.size)
            else:
                fresh = False
        if not saw_ret:
            return "maybe", False, None
        if returns_null == "always":
            fresh = False
        ret_size = sizes.pop() if fresh and len(sizes) == 1 else None
        return returns_null or "maybe", fresh, ret_size


def summarize_scc(functions: list[Function],
                  summaries: dict[str, FunctionSummary],
                  recursive: bool,
                  max_rounds: int = 5
                  ) -> dict[str, FunctionAnalysisBundle]:
    """Compute summaries for one SCC in place (into ``summaries``) and
    return the final analysis bundle per function for client passes.

    Starts from "unknown" for intra-SCC callees (conservative bottom)
    and re-runs while facts improve: each round consumes only summaries
    that are already sound, so the result is sound after any round.
    """
    bundles: dict[str, FunctionAnalysisBundle] = {}
    rounds = max_rounds if recursive else 1
    for _ in range(rounds):
        changed = False
        for function in functions:
            bundle = FunctionAnalysisBundle(function, summaries)
            bundles[function.name] = bundle
            summary = bundle.summary()
            if summaries.get(function.name) != summary:
                summaries[function.name] = summary
                changed = True
        if not changed:
            break
    return bundles
