"""Interprocedural static analysis: call graph, bottom-up effect
summaries over SCCs, and summary-consuming lint clients.

The intraprocedural analyses (:mod:`repro.analysis`) stop at every call
boundary: an unknown callee might free, retain, or scribble over any
pointer it sees, so the caller's facts evaporate.  This package makes
callees known.  :class:`CallGraph` resolves direct calls and — via an
Andersen-style points-to pass over function-address constants —
indirect ones; :func:`analyze_module` then walks the SCC condensation
bottom-up computing one :class:`FunctionSummary` per function (which
parameters are freed / escaped / fully written / read uninitialized /
dereferenced at which typed offsets, and whether the return is NULL or
fresh heap memory), and re-runs the lint clients with those summaries
in hand.  All summary facts keep the must-information discipline: a
recorded effect is proven on the relevant paths, and anything the
analysis cannot prove degrades to the same conservative treatment an
unknown callee gets.
"""

from .callgraph import CallGraph, IndirectSite
from .driver import (ANALYSIS_VERSION, ModuleAnalysis, access_findings,
                     analyze_module, module_summaries)
from .effective import accepts, effective_findings
from .summaries import FunctionSummary, ParamSummary, summarize_scc

__all__ = [
    "CallGraph", "IndirectSite",
    "ANALYSIS_VERSION", "ModuleAnalysis", "analyze_module",
    "module_summaries", "access_findings",
    "accepts", "effective_findings",
    "FunctionSummary", "ParamSummary", "summarize_scc",
]
