"""Static effective-type checking (the EffectiveSan discipline,
arXiv 1710.06125, as a lint client).

Every stack or global object has a declared *effective type* from the
C front end.  An access is well-typed when the (offset, kind, size)
leaf it reads or writes coincides with a subobject leaf of that type —
walking arrays, structs, nested structs, and (for unions) any member.
``char``/``i8`` accesses and raw byte buffers are exempt, exactly as
EffectiveSan exempts ``char*``/``void*``: byte access to any object is
always legal C.

A mismatch is only reachable through a pointer cast, so the report kind
is ``bad-cast``.  It is must-information: the pointer's region is a
proof of what the memory *is*, the access type is a proof of how it is
*used*, and the offset is constant — the dynamic effective-type checker
would reject the same access on every execution.

Cross-function checking rides on summaries: each summary records the
leaves at which a callee unconditionally dereferences its parameters
(``ParamSummary.derefs``), and the caller checks those leaves against
the actual argument's effective type — catching a bad cast that only
materializes inside the callee.
"""

from __future__ import annotations

from ...ir import instructions as inst
from ...ir import types as irt
from ...ir.module import Function
from ..heapstate import Finding
from ..pointers import PointerAnalysis
from .summaries import _access_leaf

_KIND_NAMES = {"int": "integer", "float": "floating-point",
               "ptr": "pointer"}


def _raw_bytes(src: irt.IRType) -> bool:
    """A char object or char buffer: accessible at any type."""
    if isinstance(src, irt.IntType):
        return src.size == 1
    if isinstance(src, irt.ArrayType):
        return _raw_bytes(src.elem)
    return False


def accepts(src: irt.IRType, offset: int, kind: str, size: int) -> bool:
    """Does effective type ``src`` permit an access of ``kind``/``size``
    at byte ``offset``?  Unknowable layouts answer True (the checker
    never guesses)."""
    if kind == "int" and size == 1:
        return True  # char access: always legal
    try:
        src_size = src.size
    except TypeError:
        return True  # opaque / sizeless: unknown, stay silent
    if offset < 0 or offset + size > src_size:
        return True  # out of range: the bounds client owns this
    if _raw_bytes(src):
        return True
    if isinstance(src, irt.IntType):
        return kind == "int" and size == src_size and offset == 0
    if isinstance(src, irt.FloatType):
        return kind == "float" and size == src_size and offset == 0
    if isinstance(src, irt.PointerType):
        # Pointee identity is not checked (shallow match, like LLVM's
        # typeless pointers): any pointer-to-pointer pun is tolerated.
        return kind == "ptr" and offset == 0
    if isinstance(src, irt.ArrayType):
        elem_size = src.elem.size
        if elem_size == 0:
            return True
        rel = offset % elem_size
        if rel + size > elem_size:
            return False  # straddles element boundaries
        return accepts(src.elem, rel, kind, size)
    if isinstance(src, irt.StructType):
        if src.is_opaque:
            return True
        if src.is_union:
            return any(
                offset + size <= field.type.size and
                accepts(field.type, offset, kind, size)
                for field in src.fields)
        for field in src.fields:
            if field.offset <= offset and \
                    offset + size <= field.offset + field.type.size:
                return accepts(field.type, offset - field.offset,
                               kind, size)
        return False  # lands in padding or straddles fields
    return True


def _region_type(region) -> irt.IRType | None:
    """The declared effective type of a stack or global region."""
    if region.kind == "stack":
        return region.site.allocated_type
    if region.kind == "global":
        return region.site.value_type
    return None  # heap memory has no declared type; params via summaries


def effective_findings(function: Function, pointers: PointerAnalysis,
                       summaries: dict) -> list:
    """Bad-cast findings for one function: local accesses plus
    summarized callee dereferences applied to the actual arguments."""
    findings: list[Finding] = []
    seen: set[tuple] = set()

    def report(loc, message, key):
        if key in seen:
            return
        seen.add(key)
        findings.append(Finding("bad-cast", message, loc, function.name))

    def check(block, instruction, state):
        if isinstance(instruction, (inst.Load, inst.Store)):
            fact = pointers.fact_for(instruction.pointer, state)
            if fact.region is None:
                return
            src = _region_type(fact.region)
            if src is None:
                return
            leaf = _state_leaf(instruction, fact)
            if leaf is None:
                return
            offset, kind, size = leaf
            if not accepts(src, offset, kind, size):
                verb = "load" if isinstance(instruction, inst.Load) \
                    else "store"
                report(instruction.loc,
                       f"{verb} of a {size}-byte {_KIND_NAMES[kind]} at "
                       f"offset {offset} conflicts with the effective "
                       f"type {src} of {fact.region.label}",
                       (id(instruction), offset, kind, size))
        elif isinstance(instruction, inst.Call):
            callee = instruction.callee
            name = callee.name if isinstance(callee, Function) else None
            summary = summaries.get(name) if name is not None else None
            if summary is None:
                return
            for position, arg in enumerate(instruction.args):
                derefs = summary.param(position).derefs
                if not derefs:
                    continue
                fact = pointers.fact_for(arg, state)
                if fact.region is None or fact.offset is None or \
                        not fact.offset.is_constant:
                    continue
                src = _region_type(fact.region)
                if src is None:
                    continue
                base = fact.offset.lo
                for doff, kind, size in derefs:
                    offset = base + doff
                    if not accepts(src, offset, kind, size):
                        report(instruction.loc,
                               f"@{name} accesses its argument as a "
                               f"{size}-byte {_KIND_NAMES[kind]} at "
                               f"offset {offset}, which conflicts with "
                               f"the effective type {src} of "
                               f"{fact.region.label}",
                               (id(instruction), position, doff, kind,
                                size))
                        break  # one report per argument is enough

    pointers.visit(check)
    return findings


def _state_leaf(instruction, fact) -> tuple | None:
    """Like summaries._access_leaf but using the flow-sensitive fact
    already in hand."""
    if fact.offset is None or not fact.offset.is_constant:
        return None
    access_type = instruction.result.type \
        if isinstance(instruction, inst.Load) else instruction.value.type
    if isinstance(access_type, irt.IntType):
        kind = "int"
    elif isinstance(access_type, irt.FloatType):
        kind = "float"
    elif isinstance(access_type, irt.PointerType):
        kind = "ptr"
    else:
        return None
    try:
        size = access_type.size
    except TypeError:
        return None
    return (fact.offset.lo, kind, size)


__all__ = ["accepts", "effective_findings", "_access_leaf"]
