"""Static analyses over the IR (CFG utilities, dataflow solver, clients).

The dynamic engine (``core/``) finds bugs by *executing* IR under managed
semantics; this package finds a subset of them *statically*, on all paths,
and proves some dynamic checks redundant so the interpreter and JIT can
skip them (``opt/elide.py``).  Everything here is deliberately must-
information only: a fact is either proven or absent, never guessed.
"""

from .cfg import ControlFlowGraph
from .dataflow import DataflowAnalysis, DataflowResult, solve
from .intervals import Interval, IntervalAnalysis
from .pointers import NONNULL, NULL, MAYBE, PointerAnalysis, PointerFact, Region
from .heapstate import HeapStateAnalysis, UninitAnalysis
from .liveness import LivenessAnalysis
from .lint import (Diagnostic, lint_module, lint_source, render_json,
                   render_text)

__all__ = [
    "ControlFlowGraph",
    "DataflowAnalysis", "DataflowResult", "solve",
    "Interval", "IntervalAnalysis",
    "NONNULL", "NULL", "MAYBE", "PointerAnalysis", "PointerFact", "Region",
    "HeapStateAnalysis", "UninitAnalysis",
    "LivenessAnalysis",
    "Diagnostic", "lint_module", "lint_source", "render_json",
    "render_text",
]
