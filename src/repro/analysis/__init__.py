"""Static analyses over the IR (CFG utilities, dataflow solver, clients).

The dynamic engine (``core/``) finds bugs by *executing* IR under managed
semantics; this package finds a subset of them *statically*, on all paths,
and proves some dynamic checks redundant so the interpreter and JIT can
skip them (``opt/elide.py``).  Everything here is deliberately must-
information only: a fact is either proven or absent, never guessed.
"""

from .cfg import ControlFlowGraph
from .dataflow import DataflowAnalysis, DataflowResult, solve
from .intervals import Interval, IntervalAnalysis
from .pointers import NONNULL, NULL, MAYBE, PointerAnalysis, PointerFact, Region
from .heapstate import HeapStateAnalysis, UninitAnalysis
from .liveness import LivenessAnalysis
from .lint import (DIAGNOSTIC_KINDS, SEVERITY, Diagnostic,
                   apply_baseline, lint_module, lint_source,
                   load_baseline, render_json, render_sarif,
                   render_text, write_baseline)

__all__ = [
    "ControlFlowGraph",
    "DataflowAnalysis", "DataflowResult", "solve",
    "Interval", "IntervalAnalysis",
    "NONNULL", "NULL", "MAYBE", "PointerAnalysis", "PointerFact", "Region",
    "HeapStateAnalysis", "UninitAnalysis",
    "LivenessAnalysis",
    "DIAGNOSTIC_KINDS", "SEVERITY", "Diagnostic",
    "apply_baseline", "load_baseline", "write_baseline",
    "lint_module", "lint_source", "render_json", "render_sarif",
    "render_text",
]
