"""Control-flow-graph utilities over ``ir.Function`` blocks.

Predecessors, reverse postorder, immediate dominators (the Cooper/Harvey/
Kennedy iterative algorithm), a ``dominates`` query, and natural-loop
detection via back edges.  All clients (the dataflow solver, the lint
driver, the check-elision pass) share this one view of the CFG.
"""

from __future__ import annotations

from ..ir.module import Block, Function


class ControlFlowGraph:
    """An immutable snapshot of a function's CFG.

    Unreachable blocks (no path from the entry) are excluded from
    ``postorder``/``reverse_postorder`` and have no dominator
    information; they are listed in ``unreachable``.
    """

    def __init__(self, function: Function):
        self.function = function
        self.entry = function.entry
        self.successors: dict[Block, list[Block]] = {
            block: list(block.successors()) for block in function.blocks}
        self.predecessors: dict[Block, list[Block]] = {
            block: [] for block in function.blocks}
        for block, succs in self.successors.items():
            for succ in succs:
                # A block may appear twice as a successor (condbr with
                # identical arms, switch cases sharing a target); record
                # each predecessor once.
                if block not in self.predecessors[succ]:
                    self.predecessors[succ].append(block)

        self.postorder: list[Block] = self._postorder()
        self.reverse_postorder: list[Block] = list(reversed(self.postorder))
        self.rpo_index: dict[Block, int] = {
            block: i for i, block in enumerate(self.reverse_postorder)}
        reachable = set(self.postorder)
        self.unreachable: list[Block] = [
            block for block in function.blocks if block not in reachable]

        self.idom: dict[Block, Block | None] = self._dominators()
        self._dom_depth: dict[Block, int] = self._depths()
        self.back_edges: list[tuple[Block, Block]] = [
            (tail, head)
            for tail in self.postorder
            for head in self.successors[tail]
            if head in reachable and self.dominates(head, tail)]
        self.loops: dict[Block, set[Block]] = self._natural_loops()
        self.loop_headers: set[Block] = set(self.loops)
        # Widening points must break *every* cycle.  Targets of retreating
        # edges (successor not later in RPO) are a superset of natural-loop
        # headers and also cover irreducible regions built with goto.
        self.widen_points: set[Block] = {
            succ
            for block in self.reverse_postorder
            for succ in self.successors[block]
            if succ in self.rpo_index
            and self.rpo_index[succ] <= self.rpo_index[block]}

    # -- traversal ----------------------------------------------------------

    def _postorder(self) -> list[Block]:
        order: list[Block] = []
        visited: set[Block] = set()
        # Iterative DFS; recursion would overflow on long block chains.
        stack: list[tuple[Block, int]] = [(self.entry, 0)]
        visited.add(self.entry)
        while stack:
            block, child = stack[-1]
            succs = self.successors[block]
            if child < len(succs):
                stack[-1] = (block, child + 1)
                succ = succs[child]
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, 0))
            else:
                stack.pop()
                order.append(block)
        return order

    # -- dominators ---------------------------------------------------------

    def _dominators(self) -> dict[Block, Block | None]:
        """Cooper/Harvey/Kennedy "A Simple, Fast Dominance Algorithm"."""
        idom: dict[Block, Block | None] = {self.entry: self.entry}
        rpo = self.rpo_index
        changed = True
        while changed:
            changed = False
            for block in self.reverse_postorder:
                if block is self.entry:
                    continue
                new_idom: Block | None = None
                for pred in self.predecessors[block]:
                    if pred not in idom:
                        continue  # not yet processed (or unreachable)
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom, idom, rpo)
                if new_idom is not None and idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        idom[self.entry] = None  # the entry has no immediate dominator
        return idom

    @staticmethod
    def _intersect(a: Block, b: Block, idom, rpo) -> Block:
        while a is not b:
            while rpo[a] > rpo[b]:
                a = idom[a]
            while rpo[b] > rpo[a]:
                b = idom[b]
        return a

    def _depths(self) -> dict[Block, int]:
        depth: dict[Block, int] = {self.entry: 0}
        for block in self.reverse_postorder:
            if block in depth:
                continue
            parent = self.idom.get(block)
            if parent is not None:
                depth[block] = depth[parent] + 1
        return depth

    def dominates(self, a: Block, b: Block) -> bool:
        """True iff every path from the entry to ``b`` passes through ``a``
        (reflexive: a block dominates itself)."""
        da = self._dom_depth.get(a)
        db = self._dom_depth.get(b)
        if da is None or db is None:
            return False  # unreachable blocks dominate nothing
        while db > da:
            b = self.idom[b]
            db -= 1
        return a is b

    # -- loops --------------------------------------------------------------

    def _natural_loops(self) -> dict[Block, set[Block]]:
        """header -> set of blocks in the natural loop of its back edges."""
        loops: dict[Block, set[Block]] = {}
        for tail, head in self.back_edges:
            body = loops.setdefault(head, {head})
            if tail in body:
                continue
            stack = [tail]
            body.add(tail)
            while stack:
                block = stack.pop()
                for pred in self.predecessors[block]:
                    if pred not in body and pred in self.rpo_index:
                        body.add(pred)
                        stack.append(pred)
        return loops
