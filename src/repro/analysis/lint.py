"""The static memory-safety lint driver (``python -m repro lint``).

Complements the dynamic engine: the interpreter finds bugs exactly but
only on executed paths; the lint reports bugs that hold on *every* path
to a program point, without running the program.  Every diagnostic is a
proof, never a heuristic — the same discipline the check-elision pass
relies on — so a clean corpus stays clean (zero false positives is a
regression-tested property).

By default the lint is *interprocedural* (:mod:`.interproc`): a call
graph plus bottom-up effect summaries let it see through calls —
``interproc=False`` restores the per-function analysis.

Diagnostic kinds (severity in parentheses):

* ``out-of-bounds``      — constant OOB gep/load/store (error)
* ``null-dereference``   — load/store through a provably-NULL pointer,
                           including pointers returned by callees that
                           return NULL on every path (error)
* ``use-after-free``     — access to memory freed on all paths, freeing
                           callees included (error)
* ``double-free``        — free/realloc of already-freed memory (error)
* ``invalid-free``       — free of stack or global memory, directly or
                           through a freeing callee (error)
* ``uninitialized-load`` — read of a local no path has written, also
                           through callees that read their argument
                           before writing it (warning)
* ``memory-leak``        — heap memory still reachable but unfreed when
                           ``main`` returns (warning)
* ``bad-cast``           — access at a type the object's effective type
                           cannot produce (the EffectiveSan discipline,
                           arXiv 1710.06125) (warning)
"""

from __future__ import annotations

import hashlib
import json

from .. import ir
from ..cfront import compile_source
from ..libc import include_dir
from ..opt import mem2reg
from ..source import SourceLocation
from .cfg import ControlFlowGraph
from .heapstate import Finding, HeapStateAnalysis, UninitAnalysis
from .intervals import IntervalAnalysis
from .pointers import PointerAnalysis

DIAGNOSTIC_KINDS = (
    "out-of-bounds", "null-dereference", "use-after-free",
    "double-free", "invalid-free", "uninitialized-load",
    "memory-leak", "bad-cast",
)

# Errors are definite memory-safety violations on every path to the
# report point; warnings are proven too, but describe reads of junk
# data, exit-time leaks, and type-discipline violations rather than
# out-of-region accesses.
SEVERITY = {
    "out-of-bounds": "error",
    "null-dereference": "error",
    "use-after-free": "error",
    "double-free": "error",
    "invalid-free": "error",
    "uninitialized-load": "warning",
    "memory-leak": "warning",
    "bad-cast": "warning",
}


class Diagnostic:
    """One source-located lint finding."""

    __slots__ = ("kind", "message", "loc", "function")

    def __init__(self, kind: str, message: str, loc: SourceLocation,
                 function: str):
        self.kind = kind
        self.message = message
        self.loc = loc
        self.function = function

    @property
    def severity(self) -> str:
        return SEVERITY.get(self.kind, "warning")

    def __str__(self) -> str:
        return (f"{self.loc}: {self.severity}: {self.kind}: "
                f"{self.message} [in @{self.function}]")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "file": self.loc.filename,
            "line": self.loc.line,
            "column": self.loc.column,
            "function": self.function,
        }

    def fingerprint(self) -> str:
        """Stable identity for baselines: deliberately excludes the
        line/column so unrelated edits above a finding do not un-
        suppress it."""
        text = "\0".join((self.kind, self.loc.filename, self.function,
                          self.message))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def lint_source(source: str, filename: str = "program.c",
                interproc: bool = True, cache=None) -> list[Diagnostic]:
    """Compile ``source`` and lint it.  The program is *not* linked
    against the libc — calls to declared-but-undefined functions are
    treated conservatively by the analyses."""
    module = compile_source(source, filename=filename,
                            include_dirs=[include_dir()],
                            defines={"__SAFE_SULONG__": "1"})
    return lint_module(module, interproc=interproc, cache=cache)


def lint_module(module: ir.Module, interproc: bool = True,
                cache=None) -> list[Diagnostic]:
    """Lint every defined function, in deterministic (sorted) order.
    Mutates ``module`` best-effort (runs mem2reg so values stored
    through promotable allocas become visible to the SSA analyses, but
    cache-hit SCCs are skipped, transform included), so the post-lint
    IR is unspecified: callers who need the module afterwards — in
    either the unoptimized or the promoted form — must compile a fresh
    one."""
    if interproc:
        from .interproc.driver import analyze_module
        analysis = analyze_module(module, cache=cache, transform=True)
        findings = analysis.findings
    else:
        findings = []
        for name in sorted(module.functions):
            function = module.functions[name]
            if not function.is_definition:
                continue
            findings.extend(_lint_function(function))
    diagnostics = [Diagnostic(f.kind, f.message, f.loc, f.function)
                   for f in findings]
    # One bug often surfaces at both the gep and the access it feeds;
    # collapse findings of the same kind at the same source location —
    # per function, so the same line reached from different functions
    # (via a macro or an inlined header) keeps every report.
    unique: dict[tuple, Diagnostic] = {}
    for diagnostic in diagnostics:
        key = (diagnostic.kind, diagnostic.function,
               diagnostic.loc.filename, diagnostic.loc.line,
               diagnostic.loc.column)
        unique.setdefault(key, diagnostic)
    diagnostics = list(unique.values())
    diagnostics.sort(key=lambda d: (d.loc.filename, d.loc.line,
                                    d.loc.column, d.kind, d.function))
    return diagnostics


def _lint_function(function: ir.Function) -> list[Finding]:
    """The intraprocedural pipeline (``interproc=False``)."""
    from .interproc.driver import access_findings
    findings: list[Finding] = []
    # Phase 1 — on the front end's IR: uninitialized loads.  This must
    # run before mem2reg, which rewrites exactly these loads into
    # ``undef`` and erases the evidence.
    findings.extend(UninitAnalysis(function).findings())
    # Phase 2 — after mem2reg: values flow through registers and phis
    # instead of alloca memory, so the pointer/heap analyses can see
    # them (``int *p = 0; *p = 5;`` round-trips through an alloca in
    # unoptimized IR).
    mem2reg.run(function)
    cfg = ControlFlowGraph(function)
    intervals = IntervalAnalysis(function, cfg).run()
    pointers = PointerAnalysis(function, intervals, cfg).run()
    findings.extend(access_findings(function, pointers))
    findings.extend(HeapStateAnalysis(function, pointers, cfg).findings())
    return findings


# -- baselines --------------------------------------------------------------

BASELINE_VERSION = 1


def write_baseline(path: str, diagnostics: list[Diagnostic]) -> None:
    """Record the current findings as accepted; later runs suppress
    matching fingerprints."""
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted({d.fingerprint() for d in diagnostics}),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def load_baseline(path: str) -> set[str]:
    """Fingerprints from a baseline file.  Raises ``ValueError`` on a
    malformed file (a silently-empty baseline would un-suppress
    everything)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or \
            payload.get("version") != BASELINE_VERSION or \
            not isinstance(payload.get("fingerprints"), list):
        raise ValueError(f"{path}: not a lint baseline file")
    return {str(entry) for entry in payload["fingerprints"]}


def apply_baseline(diagnostics: list[Diagnostic], baseline: set[str]
                   ) -> tuple[list[Diagnostic], int]:
    """(kept, suppressed-count) after removing baselined findings."""
    kept = [d for d in diagnostics if d.fingerprint() not in baseline]
    return kept, len(diagnostics) - len(kept)


# -- selftest ---------------------------------------------------------------

# Each entry: (name, expected kind or None for clean, source).  All of
# the buggy programs need the *interprocedural* machinery: the bug
# crosses a call boundary, so a per-function lint stays silent.
_SELFTEST_PROGRAMS = (
    ("clean", None, """
#include <stdlib.h>
void release(int *p) { free(p); }
int main(void) {
    int *q = malloc(sizeof(int));
    if (!q) return 1;
    *q = 7;
    int v = *q;
    release(q);
    return v;
}
"""),
    ("uaf-through-callee", "use-after-free", """
#include <stdlib.h>
void release(int *p) { free(p); }
int use(int *p) { return *p; }
int main(void) {
    int *q = malloc(sizeof(int));
    if (!q) return 1;
    *q = 7;
    release(q);
    return use(q);
}
"""),
    ("double-free-through-callee", "double-free", """
#include <stdlib.h>
void release(int *p) { free(p); }
int main(void) {
    int *q = malloc(4);
    if (!q) return 1;
    release(q);
    free(q);
    return 0;
}
"""),
    ("leak-on-exit", "memory-leak", """
#include <stdlib.h>
int main(void) {
    int *q = malloc(sizeof(int));
    if (!q) return 1;
    *q = 7;
    return *q;
}
"""),
    ("null-return-deref", "null-dereference", """
#include <stdlib.h>
int *never(void) { return 0; }
int main(void) {
    int *p = never();
    return *p;
}
"""),
    ("uninit-through-callee", "uninitialized-load", """
int reader(int *p) { return *p; }
int main(void) {
    int x;
    return reader(&x);
}
"""),
    ("bad-cast-through-callee", "bad-cast", """
struct point { int x; int y; };
float as_float(float *p) { return *p; }
int main(void) {
    struct point p;
    p.x = 1; p.y = 2;
    return (int)as_float((float *)&p.y);
}
"""),
)


def lint_selftest(verbose: bool = False) -> tuple[bool, list[str]]:
    """Exercise the interprocedural lint against seeded cross-function
    bugs (and one clean program); ``(ok, problems)``."""
    problems: list[str] = []
    for name, expected, source in _SELFTEST_PROGRAMS:
        try:
            diagnostics = lint_source(source, filename=f"{name}.c")
        except Exception as error:
            problems.append(f"{name}: lint crashed: {error}")
            continue
        kinds = {d.kind for d in diagnostics}
        if expected is None:
            if diagnostics:
                problems.append(
                    f"{name}: expected clean, got {sorted(kinds)}")
        elif expected not in kinds:
            problems.append(
                f"{name}: expected {expected}, got "
                f"{sorted(kinds) or 'nothing'}")
        if verbose:
            print(f"lint selftest: {name}: "
                  f"{sorted(kinds) if kinds else 'clean'}")
    return not problems, problems


# -- renderers --------------------------------------------------------------

def render_text(diagnostics: list[Diagnostic]) -> str:
    if not diagnostics:
        return "no issues found"
    lines = [str(d) for d in diagnostics]
    noun = "issue" if len(diagnostics) == 1 else "issues"
    lines.append(f"{len(diagnostics)} {noun} found")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    return json.dumps({
        "diagnostics": [d.as_dict() for d in diagnostics],
        "count": len(diagnostics),
    }, indent=2)


_RULE_DESCRIPTIONS = {
    "out-of-bounds": "Access provably outside the bounds of its region",
    "null-dereference": "Dereference of a pointer that is NULL on "
                        "every path",
    "use-after-free": "Access to heap memory freed on every path",
    "double-free": "free/realloc of already-freed heap memory",
    "invalid-free": "free of stack or global memory",
    "uninitialized-load": "Read of a local variable before any write",
    "memory-leak": "Heap allocation never freed before program exit",
    "bad-cast": "Access conflicts with the object's effective type",
}


def render_sarif(diagnostics: list[Diagnostic]) -> str:
    """SARIF 2.1.0, one run, one result per diagnostic — the exchange
    format CI annotators and editors ingest."""
    rules = [{
        "id": kind,
        "shortDescription": {"text": _RULE_DESCRIPTIONS[kind]},
        "defaultConfiguration": {"level": SEVERITY[kind]},
    } for kind in DIAGNOSTIC_KINDS]
    results = []
    for diagnostic in diagnostics:
        region = {"startLine": max(diagnostic.loc.line, 1)}
        if diagnostic.loc.column:
            region["startColumn"] = diagnostic.loc.column
        results.append({
            "ruleId": diagnostic.kind,
            "level": diagnostic.severity,
            "message": {"text": diagnostic.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": diagnostic.loc.filename},
                    "region": region,
                },
                "logicalLocations": [{
                    "name": diagnostic.function,
                    "kind": "function",
                }],
            }],
            "partialFingerprints": {
                "reproLint/v1": diagnostic.fingerprint(),
            },
        })
    return json.dumps({
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://github.com/graalvm/sulong",
                "rules": rules,
            }},
            "results": results,
        }],
    }, indent=2)
