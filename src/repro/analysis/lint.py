"""The static memory-safety lint driver (``python -m repro lint``).

Complements the dynamic engine: the interpreter finds bugs exactly but
only on executed paths; the lint reports bugs that hold on *every* path
to a program point, without running the program.  Every diagnostic is a
proof, never a heuristic — the same discipline the check-elision pass
relies on — so a clean corpus stays clean (zero false positives is a
regression-tested property).

Diagnostic kinds:

* ``out-of-bounds``      — constant OOB gep/load/store
* ``null-dereference``   — load/store through a provably-NULL pointer
* ``use-after-free``     — access to memory freed on all paths
* ``double-free``        — free/realloc of already-freed memory
* ``invalid-free``       — free of stack or global memory
* ``uninitialized-load`` — read of a local no path has written
"""

from __future__ import annotations

import json

from .. import ir
from ..cfront import compile_source
from ..ir import instructions as inst
from ..ir import types as irt
from ..libc import include_dir
from ..opt import mem2reg
from ..source import SourceLocation
from .cfg import ControlFlowGraph
from .heapstate import Finding, HeapStateAnalysis, UninitAnalysis
from .intervals import IntervalAnalysis
from .pointers import NULL, PointerAnalysis

DIAGNOSTIC_KINDS = (
    "out-of-bounds", "null-dereference", "use-after-free",
    "double-free", "invalid-free", "uninitialized-load",
)


class Diagnostic:
    """One source-located lint finding."""

    __slots__ = ("kind", "message", "loc", "function")

    def __init__(self, kind: str, message: str, loc: SourceLocation,
                 function: str):
        self.kind = kind
        self.message = message
        self.loc = loc
        self.function = function

    def __str__(self) -> str:
        return f"{self.loc}: {self.kind}: {self.message} [in @{self.function}]"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "message": self.message,
            "file": self.loc.filename,
            "line": self.loc.line,
            "column": self.loc.column,
            "function": self.function,
        }


def lint_source(source: str, filename: str = "program.c"
                ) -> list[Diagnostic]:
    """Compile ``source`` and lint it.  The program is *not* linked
    against the libc — calls to declared-but-undefined functions are
    treated conservatively by the analyses."""
    module = compile_source(source, filename=filename,
                            include_dirs=[include_dir()],
                            defines={"__SAFE_SULONG__": "1"})
    return lint_module(module)


def lint_module(module: ir.Module) -> list[Diagnostic]:
    """Lint every defined function.  Mutates ``module`` (runs mem2reg so
    values stored through promotable allocas become visible to the SSA
    analyses); callers who need the unoptimized IR should lint a fresh
    module."""
    diagnostics: list[Diagnostic] = []
    for function in module.functions.values():
        if not function.is_definition:
            continue
        diagnostics.extend(_lint_function(function))
    # One bug often surfaces at both the gep and the access it feeds;
    # collapse findings of the same kind at the same source location.
    unique: dict[tuple, Diagnostic] = {}
    for diagnostic in diagnostics:
        key = (diagnostic.kind, diagnostic.loc.filename,
               diagnostic.loc.line, diagnostic.loc.column)
        unique.setdefault(key, diagnostic)
    diagnostics = list(unique.values())
    diagnostics.sort(key=lambda d: (d.loc.filename, d.loc.line,
                                    d.loc.column, d.kind))
    return diagnostics


def _lint_function(function: ir.Function) -> list[Diagnostic]:
    findings: list[Finding] = []
    # Phase 1 — on the front end's IR: uninitialized loads.  This must
    # run before mem2reg, which rewrites exactly these loads into
    # ``undef`` and erases the evidence.
    findings.extend(UninitAnalysis(function).findings())
    # Phase 2 — after mem2reg: values flow through registers and phis
    # instead of alloca memory, so the pointer/heap analyses can see
    # them (``int *p = 0; *p = 5;`` round-trips through an alloca in
    # unoptimized IR).
    mem2reg.run(function)
    cfg = ControlFlowGraph(function)
    intervals = IntervalAnalysis(function, cfg).run()
    pointers = PointerAnalysis(function, intervals, cfg).run()
    findings.extend(_access_findings(function, pointers))
    findings.extend(HeapStateAnalysis(function, pointers, cfg).findings())
    return [Diagnostic(f.kind, f.message, f.loc, f.function)
            for f in findings]


def _access_findings(function: ir.Function,
                     pointers: PointerAnalysis) -> list[Finding]:
    """NULL-dereference and constant out-of-bounds findings from the
    pointer facts."""
    findings: list[Finding] = []
    # An out-of-range address that is then dereferenced is reported at
    # the access (the sharper message, with the access size); keep the
    # arithmetic finding only for addresses no reachable access consumes
    # (e.g. an address that escapes into a call).
    dereferenced: set[int] = set()
    for block in pointers.cfg.reverse_postorder:
        if not pointers.result.reached(block):
            continue
        for instruction in block.instructions:
            if isinstance(instruction, (inst.Load, inst.Store)):
                dereferenced.add(id(instruction.pointer))

    def check(block, instruction, state):
        if isinstance(instruction, (inst.Load, inst.Store)):
            fact = pointers.fact_for(instruction.pointer, state)
            verb = "load" if isinstance(instruction, inst.Load) else "store"
            if fact.nullness == NULL:
                findings.append(Finding(
                    "null-dereference",
                    f"{verb} through a pointer that is NULL on every "
                    f"path here", instruction.loc, function.name))
                return
            access_type = instruction.result.type \
                if isinstance(instruction, inst.Load) \
                else instruction.value.type
            _check_bounds(fact, access_type.size, verb, instruction,
                          findings, function)
        elif isinstance(instruction, inst.Gep):
            if id(instruction.result) in dereferenced:
                return
            # ``state`` precedes the instruction; apply its own transfer
            # to obtain the fact for the address it computes.
            after = dict(state)
            pointers._transfer_instruction(instruction, after)
            fact = after.get(id(instruction.result))
            # The gep itself only computes an address; C allows one-
            # past-the-end pointers, so flag only offsets that no
            # in-bounds or one-past-end pointer could have.
            if fact is None or fact.region is None or \
                    fact.offset is None or fact.region.size is None:
                return
            if fact.offset.above(fact.region.size) or \
                    fact.offset.below(0):
                findings.append(Finding(
                    "out-of-bounds",
                    f"pointer arithmetic yields offset {fact.offset} "
                    f"outside {fact.region.label} "
                    f"({fact.region.size} bytes)",
                    instruction.loc, function.name))

    pointers.visit(check)
    return findings


def _check_bounds(fact, access_size: int, verb: str, instruction,
                  findings, function) -> None:
    region = fact.region
    if region is None or fact.offset is None or region.size is None:
        return
    offset = fact.offset
    # Definite violation only: every admissible offset must fall outside
    # [0, size - access_size].
    if offset.below(0) or offset.above(region.size - access_size):
        findings.append(Finding(
            "out-of-bounds",
            f"{verb} of {access_size} byte(s) at offset {offset} is "
            f"outside {region.label} ({region.size} bytes)",
            instruction.loc, function.name))


def render_text(diagnostics: list[Diagnostic]) -> str:
    if not diagnostics:
        return "no issues found"
    lines = [str(d) for d in diagnostics]
    noun = "issue" if len(diagnostics) == 1 else "issues"
    lines.append(f"{len(diagnostics)} {noun} found")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    return json.dumps({
        "diagnostics": [d.as_dict() for d in diagnostics],
        "count": len(diagnostics),
    }, indent=2)
