"""Classic backward liveness analysis — the backward client of the
generic solver (the optimizer's dead-code pass has its own ad-hoc use
counting; this one is flow-sensitive and per-block).

State is a frozenset of ``id(register)`` live at a program point.
``live_in(block)`` / ``live_out(block)`` answer queries after
:meth:`run`.
"""

from __future__ import annotations

from ..ir import instructions as inst
from ..ir import values as irv
from ..ir.module import Block, Function
from .cfg import ControlFlowGraph
from .dataflow import DataflowAnalysis, solve


class LivenessAnalysis(DataflowAnalysis):
    direction = "backward"

    def __init__(self, function: Function,
                 cfg: ControlFlowGraph | None = None):
        super().__init__()
        self.function = function
        self.cfg = cfg or ControlFlowGraph(function)
        self.result = None

    def run(self) -> "LivenessAnalysis":
        self.result = solve(self, self.function, self.cfg)
        return self

    def live_out(self, block: Block) -> frozenset:
        """Registers live after the block's terminator."""
        return self.result.input.get(block, frozenset())

    def live_in(self, block: Block) -> frozenset:
        """Registers live before the block's first instruction."""
        return self.result.output.get(block, frozenset())

    def is_live_out(self, register: irv.VirtualRegister,
                    block: Block) -> bool:
        return id(register) in self.live_out(block)

    # -- lattice hooks ------------------------------------------------------

    def boundary_state(self, function: Function):
        return frozenset()

    def join(self, states):
        merged: set = set()
        for state in states:
            merged |= state
        return frozenset(merged)

    def transfer(self, block: Block, state):
        live = set(state)
        # Successors' phis use values on the edge out of this block, so
        # those uses count at this block's exit (before the reverse scan
        # below can see a local definition and kill them again).
        for succ in self.cfg.successors[block]:
            for phi in succ.phis():
                for pred, value in phi.incoming:
                    if pred is block and \
                            isinstance(value, irv.VirtualRegister):
                        live.add(id(value))
        for instruction in reversed(block.instructions):
            if instruction.result is not None:
                live.discard(id(instruction.result))
            if isinstance(instruction, inst.Phi):
                continue  # incoming values are edge uses, handled above
            for operand in instruction.operands():
                if isinstance(operand, irv.VirtualRegister):
                    live.add(id(operand))
        return frozenset(live)
