"""Command-line interface.

Examples:

    # Find bugs with Safe Sulong (the default tool)
    python -m repro run program.c -- arg1 arg2

    # Compare against the baselines
    python -m repro run --tool asan-O0 program.c
    python -m repro run --tool memcheck-O0 program.c
    python -m repro run --tool clang-O3 program.c

    # Inspect the IR the front end produces (optionally optimized)
    python -m repro emit-ir program.c
    python -m repro emit-ir -O3 program.c

    # Statically lint a program (no execution; CI-friendly exit codes)
    python -m repro lint program.c
    python -m repro lint --json program.c

    # Run the paper's 68-bug study
    python -m repro matrix
"""

from __future__ import annotations

import argparse
import sys

from .tools import all_runners


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_run(args: argparse.Namespace) -> int:
    runners = all_runners()
    if args.elide:
        from .tools import SafeSulongRunner
        runners["safe-sulong"] = SafeSulongRunner(elide_checks=True)
        if args.tool != "safe-sulong":
            print(f"warning: --elide has no effect with --tool "
                  f"{args.tool}", file=sys.stderr)
    runner = runners.get(args.tool)
    if runner is None:
        print(f"unknown tool {args.tool!r}; choose from "
              f"{', '.join(runners)}", file=sys.stderr)
        return 2
    source = _read_source(args.program)
    stdin = sys.stdin.buffer.read() if args.stdin else b""
    result = runner.run(source, argv=[args.program, *args.args],
                        stdin=stdin, filename=args.program,
                        max_steps=args.max_steps)
    sys.stdout.write(result.stdout.decode("utf-8", "replace"))
    sys.stderr.write(result.stderr.decode("utf-8", "replace"))
    if result.bugs:
        for bug in result.bugs:
            print(f"=== {runner.name}: {bug}", file=sys.stderr)
        return 3
    if result.crashed:
        print(f"=== {runner.name}: program crashed: "
              f"{result.crash_message}", file=sys.stderr)
        return 4
    if result.limit_exceeded:
        print(f"=== {runner.name}: {result.crash_message}",
              file=sys.stderr)
        return 5
    return result.status or 0


def cmd_emit_ir(args: argparse.Namespace) -> int:
    from .ir.printer import print_module
    source = _read_source(args.program)
    if args.native:
        from .native import compile_native
        module = compile_native(source, filename=args.program,
                                opt_level=3 if args.optimize else 0)
    else:
        from .cfront import compile_source
        from .libc import include_dir
        module = compile_source(source, filename=args.program,
                                include_dirs=[include_dir()],
                                defines={"__SAFE_SULONG__": "1"})
        if args.optimize:
            from .opt.pipeline import run_o3
            run_o3(module)
    sys.stdout.write(print_module(module))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import lint_source, render_json, render_text
    try:
        source = _read_source(args.program)
    except OSError as error:
        print(f"cannot read {args.program}: {error}", file=sys.stderr)
        return 2
    try:
        diagnostics = lint_source(source, filename=args.program)
    except Exception as error:  # compile/front-end failure
        print(f"lint failed: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    return 1 if diagnostics else 0


def cmd_matrix(args: argparse.Namespace) -> int:
    from .corpus import run_matrix
    matrix = run_matrix(all_runners())
    print(matrix.format_table())
    print()
    print("found by Safe Sulong only:",
          ", ".join(sorted(matrix.found_by_neither_baseline())))
    missed = sorted(name for name, row in matrix.outcomes.items()
                    if not row.get("safe-sulong"))
    if missed:
        print(f"DETECTION REGRESSION: safe-sulong missed "
              f"{', '.join(missed)}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Safe Sulong (ASPLOS'18) reproduction — find memory "
                    "errors in C programs by abstracting from the native "
                    "execution model.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="compile and run a C program",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="exit codes: the program's own exit status, or 2 unknown "
               "tool, 3 bug detected, 4 crash, 5 step limit exceeded")
    run_parser.add_argument("--tool", default="safe-sulong",
                            help="safe-sulong (default), asan-O0, "
                                 "asan-O3, memcheck-O0, memcheck-O3, "
                                 "clang-O0, clang-O3")
    run_parser.add_argument("--stdin", action="store_true",
                            help="forward this process's stdin")
    run_parser.add_argument("--max-steps", type=int, default=None,
                            help="abort after N interpreter steps")
    run_parser.add_argument("--elide", action="store_true",
                            help="enable static check elision for the "
                                 "safe-sulong tool (skips dynamic checks "
                                 "the analysis proves redundant)")
    run_parser.add_argument("program", help="C source file (or - )")
    run_parser.add_argument("args", nargs="*",
                            help="argv for the program (after --)")
    run_parser.set_defaults(handler=cmd_run)

    lint_parser = sub.add_parser(
        "lint", help="statically lint a C program (no execution)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="exit codes: 0 no diagnostics, 1 diagnostics found, "
               "2 usage or compile error\n"
               "diagnostic kinds: out-of-bounds, null-dereference, "
               "use-after-free,\n  double-free, invalid-free, "
               "uninitialized-load")
    lint_parser.add_argument("--json", action="store_true",
                             help="machine-readable JSON output")
    lint_parser.add_argument("program", help="C source file (or - )")
    lint_parser.set_defaults(handler=cmd_lint)

    emit_parser = sub.add_parser("emit-ir",
                                 help="print the IR for a C program")
    emit_parser.add_argument("-O3", dest="optimize", action="store_true",
                             help="run the -O3 pipeline first")
    emit_parser.add_argument("--native", action="store_true",
                             help="compile for the native model "
                                  "(includes backend folds)")
    emit_parser.add_argument("program")
    emit_parser.set_defaults(handler=cmd_emit_ir)

    matrix_parser = sub.add_parser(
        "matrix", help="run the 68-bug corpus through every tool (§4.1)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="exit codes: 0 safe-sulong detects every corpus bug, "
               "1 detection regression (CI gate)")
    matrix_parser.set_defaults(handler=cmd_matrix)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
