"""Command-line interface.

Examples:

    # Find bugs with Safe Sulong (the default tool)
    python -m repro run program.c -- arg1 arg2

    # Profile a run: check counts by kind, hot functions, JIT timeline
    python -m repro profile program.c
    python -m repro profile --elide --metrics out.json program.c

    # Compare against the baselines
    python -m repro run --tool asan-O0 program.c
    python -m repro run --tool memcheck-O0 program.c
    python -m repro run --tool clang-O3 program.c

    # Inspect the IR the front end produces (optionally optimized)
    python -m repro emit-ir program.c
    python -m repro emit-ir -O3 program.c

    # Statically lint a program (no execution; CI-friendly exit codes)
    python -m repro lint program.c
    python -m repro lint --json program.c

    # Run the paper's 68-bug study (optionally with worker isolation)
    python -m repro matrix
    python -m repro matrix --jobs 4

    # Inspect / clear the compilation cache (warm-start artifacts)
    python -m repro cache stats
    python -m repro cache clear
    python -m repro run --no-cache program.c

    # Hunt for bugs over an arbitrary corpus, hardened against hostile
    # programs (per-program worker processes, watchdog, quotas)
    python -m repro hunt --jobs 4 --timeout 5 path/to/corpus/
    python -m repro hunt --selftest

    # Deterministically replay a hunt-found bug and emit the
    # LLM-consumable failure slice (CFG path, fault-local registers,
    # alloc/free history, tier divergence)
    python -m repro explain hunt-report.jsonl
    python -m repro explain --format text bug.c
    python -m repro explain --selftest
"""

from __future__ import annotations

import argparse
import base64
import sys

from .tools import all_runners


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _report_result(result, tool_name: str,
                   heap_dump: bool = False) -> int:
    """Shared exit-code policy for ``repro run`` (documented in the
    subcommand epilog): bug 3, crash 4, step/quota limit 5, wall-clock
    timeout 6, tool-internal error 7."""
    sys.stdout.write(result.stdout.decode("utf-8", "replace"))
    sys.stderr.write(result.stderr.decode("utf-8", "replace"))
    if result.bugs:
        from .obs.provenance import render_bug_report, render_heap_dump
        for bug in result.bugs:
            print(f"=== {tool_name}: {bug}", file=sys.stderr)
            if bug.stack or bug.alloc_site or bug.free_site:
                print(render_bug_report(bug, detector=tool_name),
                      file=sys.stderr)
        if heap_dump and result.runtime is not None:
            print(render_heap_dump(result.runtime), file=sys.stderr)
        return 3
    if result.timed_out:
        print(f"=== {tool_name}: wall-clock timeout", file=sys.stderr)
        return 6
    if result.internal_error:
        print(f"=== {tool_name}: internal tool error: "
              f"{result.internal_error}", file=sys.stderr)
        return 7
    if result.crashed:
        print(f"=== {tool_name}: program crashed: "
              f"{result.crash_message}", file=sys.stderr)
        return 4
    if result.limit_exceeded:
        print(f"=== {tool_name}: {result.crash_message}",
              file=sys.stderr)
        return 5
    return result.status or 0


def _write_metrics(path: str, metrics: dict | None,
                   tool: str) -> None:
    """Write an observer snapshot (or a stub for unobserved tools) as
    JSON to ``path`` (or stdout for ``-``)."""
    import json
    payload = metrics if metrics is not None else {"enabled": False}
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if path == "-":
        sys.stdout.write(text)
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"metrics written to {path}", file=sys.stderr)


def cmd_run(args: argparse.Namespace) -> int:
    from .tools import make_runner
    if args.tool not in all_runners():
        print(f"unknown tool {args.tool!r}; choose from "
              f"{', '.join(all_runners())}", file=sys.stderr)
        return 2
    options = {}
    if args.tool == "safe-sulong":
        options = {"elide_checks": args.elide,
                   "speculate": args.speculate,
                   "max_heap_bytes": args.heap_quota,
                   "use_cache": not args.no_cache,
                   "cache_dir": args.cache_dir,
                   "track_heap": bool(args.heap_dump)}
    elif args.elide or args.speculate or args.heap_quota:
        print(f"warning: --elide/--speculate/--heap-quota have no "
              f"effect with --tool {args.tool}", file=sys.stderr)
    if args.metrics and args.tool != "safe-sulong":
        print(f"warning: --metrics observes the safe-sulong engine "
              f"only, not --tool {args.tool}", file=sys.stderr)
    if args.heap_dump and args.tool != "safe-sulong":
        print(f"warning: --heap-dump needs the managed heap; it has no "
              f"effect with --tool {args.tool}", file=sys.stderr)
    source = _read_source(args.program)
    stdin = sys.stdin.buffer.read() if args.stdin else b""

    if args.manifest:
        import json
        from .obs.replay import build_manifest
        import os
        manifest = build_manifest(
            tool=args.tool, options=options, source=source,
            path=os.path.abspath(args.program)
            if args.program != "-" else None,
            filename=args.program, argv=[args.program, *args.args],
            stdin_b64=base64.b64encode(stdin).decode("ascii")
            if stdin else None,
            max_steps=args.max_steps)
        with open(args.manifest, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"replay manifest written to {args.manifest} "
              f"(replay with: repro explain {args.manifest})",
              file=sys.stderr)

    if args.timeout is not None:
        # Wall-clock enforcement needs a killable process: run the
        # program in one watchdogged harness worker.
        from .harness.pool import run_one
        from .harness.worker import deserialize_result
        if args.heap_dump:
            print("warning: --heap-dump is unavailable with --timeout "
                  "(the heap dies with the worker process)",
                  file=sys.stderr)
        payload = {
            "id": args.program, "source": source,
            "filename": args.program,
            "argv": [args.program, *args.args],
            "stdin_b64": base64.b64encode(stdin).decode("ascii"),
            "max_steps": args.max_steps,
        }
        if args.metrics:
            payload["collect_metrics"] = True
        if args.trace_spans:
            payload["trace_spans"] = True
        record = run_one(payload, tool=args.tool, options=options,
                         timeout=args.timeout)
        if args.trace_spans and record.get("result"):
            from .obs.spans import write_chrome_trace
            write_chrome_trace(args.trace_spans,
                               record["result"].get("spans") or [])
            print(f"trace written to {args.trace_spans}",
                  file=sys.stderr)
        if record["timed_out"]:
            print(f"=== {args.tool}: wall-clock timeout after "
                  f"{args.timeout}s", file=sys.stderr)
            return 6
        if record["result"] is None:
            print(f"=== {args.tool}: internal tool error: "
                  f"{record.get('worker_error')}", file=sys.stderr)
            return 7
        if record["result"].get("compile_error"):
            print(f"=== {args.tool}: "
                  f"{record['result']['compile_error']}", file=sys.stderr)
            return 2
        if args.metrics:
            _write_metrics(args.metrics,
                           record["result"].get("metrics"), args.tool)
        return _report_result(deserialize_result(record["result"]),
                              args.tool)

    observer = None
    if args.metrics and args.tool == "safe-sulong":
        from .obs import Observer
        observer = Observer(enabled=True)
    recorder = previous = None
    if args.trace_spans:
        from .obs.spans import SpanRecorder, set_recorder
        recorder = SpanRecorder(path=args.trace_spans)
        previous = set_recorder(recorder)
    runner = make_runner(args.tool, options, observer=observer)
    try:
        result = runner.run(source, argv=[args.program, *args.args],
                            stdin=stdin, filename=args.program,
                            max_steps=args.max_steps)
    finally:
        if recorder is not None:
            from .obs.spans import set_recorder
            set_recorder(previous)
            recorder.close()
            print(f"trace written to {args.trace_spans}",
                  file=sys.stderr)
    if args.metrics:
        _write_metrics(args.metrics,
                       observer.snapshot() if observer else None,
                       args.tool)
    return _report_result(result, runner.name,
                          heap_dump=bool(args.heap_dump))


def cmd_profile(args: argparse.Namespace) -> int:
    from .obs import profile_source, render_profile
    from .obs.profile import DEFAULT_JIT_THRESHOLD
    try:
        source = _read_source(args.program)
    except OSError as error:
        print(f"cannot read {args.program}: {error}", file=sys.stderr)
        return 2
    stdin = sys.stdin.buffer.read() if args.stdin else b""
    # --jit 0 disables the dynamic tier; omitted means the default.
    jit = DEFAULT_JIT_THRESHOLD if args.jit is None else (args.jit or None)
    # --flamegraph needs the call-edge data only lines mode records;
    # --hot-checks needs the per-line check counters from the same mode.
    lines = bool(args.lines or args.flamegraph or args.hot_checks)
    from .cache import resolve_cache
    cache = resolve_cache(args.cache_dir, enabled=not args.no_cache)
    recorder = previous = None
    if args.trace_spans:
        from .obs.spans import SpanRecorder, set_recorder
        recorder = SpanRecorder(path=args.trace_spans)
        previous = set_recorder(recorder)
    try:
        result, snapshot = profile_source(
            source, filename=args.program,
            argv=[args.program, *args.args], stdin=stdin,
            jit_threshold=jit, elide_checks=args.elide,
            max_steps=args.max_steps, trace_path=args.trace,
            cache=cache, lines=lines,
            track_heap=bool(args.heap_dump))
    except Exception as error:  # compile/link failure
        print(f"profile failed: {error}", file=sys.stderr)
        return 2
    finally:
        if recorder is not None:
            from .obs.spans import set_recorder
            set_recorder(previous)
            recorder.close()
    if not args.quiet and result.stdout:
        sys.stdout.write(result.stdout.decode("utf-8", "replace"))
        if not result.stdout.endswith(b"\n"):
            sys.stdout.write("\n")
    if args.hot_checks:
        from .obs import render_hot_checks
        print(render_hot_checks(snapshot, [result], top=args.hot_checks,
                                source=source, program=args.program))
    elif lines:
        from .obs import render_lines
        print(render_lines(snapshot, source, args.program,
                           program=args.program))
    else:
        print(render_profile(result, snapshot, program=args.program))
    if result.bugs:
        from .obs.provenance import render_bug_report
        for bug in result.bugs:
            if bug.stack or bug.alloc_site or bug.free_site:
                print(render_bug_report(bug, detector="safe-sulong"),
                      file=sys.stderr)
    if args.heap_dump and result.runtime is not None:
        from .obs.provenance import render_heap_dump
        print(render_heap_dump(result.runtime))
    if args.flamegraph:
        from .obs import write_flamegraph
        count = write_flamegraph(args.flamegraph, snapshot)
        print(f"flamegraph ({count} stacks) written to "
              f"{args.flamegraph}", file=sys.stderr)
    if args.metrics:
        _write_metrics(args.metrics, snapshot, "safe-sulong")
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.trace_spans:
        print(f"span trace written to {args.trace_spans}",
              file=sys.stderr)
    return 0


def cmd_hunt(args: argparse.Namespace) -> int:
    from .harness import Quotas, collect_programs, run_campaign, selftest
    from .harness.campaign import _default_progress

    if args.selftest:
        ok, problems = selftest(timeout=args.timeout or 2.0,
                                jobs=max(2, args.jobs),
                                verbose=not args.quiet)
        for problem in problems:
            print(f"selftest: {problem}", file=sys.stderr)
        print("selftest: " + ("PASS" if ok else "FAIL"))
        return 0 if ok else 1

    gen_manifests = None
    if args.gen:
        import os
        import tempfile
        from .gen import GenConfig, choose_plant, generate
        gen_dir = tempfile.mkdtemp(prefix="repro-gen-corpus-")
        gen_manifests = {}
        for seed in range(args.gen_seed, args.gen_seed + args.gen):
            program = generate(
                seed, GenConfig(plant=choose_plant(seed,
                                                   args.gen_plant)))
            with open(os.path.join(gen_dir, program.filename), "w",
                      encoding="utf-8") as handle:
                handle.write(program.source)
            # The report record must identify the program by its full
            # (GEN_VERSION, seed, GenConfig) tuple, not just the
            # gen-<seed>.c filename — default knobs drift.
            gen_manifests[program.filename] = program.manifest
        args.paths = list(args.paths) + [gen_dir]
        if not args.quiet:
            print(f"hunt: generated {args.gen} programs "
                  f"(seeds {args.gen_seed}.."
                  f"{args.gen_seed + args.gen - 1}) into {gen_dir}")

    if not args.paths:
        print("hunt: no corpus given (pass directories and/or .c files, "
              "--gen N, or --selftest)", file=sys.stderr)
        return 2
    programs = collect_programs(args.paths)
    if not programs:
        print("hunt: no .c programs found", file=sys.stderr)
        return 2
    quotas = Quotas(max_steps=args.max_steps,
                    max_heap_bytes=args.heap_quota,
                    max_call_depth=args.call_depth,
                    max_output_bytes=args.output_cap)
    options = {"jit_threshold": args.jit, "elide_checks": args.elide,
               "speculate": args.speculate,
               "use_cache": not args.no_cache,
               "cache_dir": args.cache_dir,
               "prescreen": args.prescreen}
    try:
        summary = run_campaign(
            programs, tool=args.tool, options=options, quotas=quotas,
            jobs=args.jobs, timeout=args.timeout, retries=args.retries,
            backoff=args.backoff, ladder=not args.no_ladder,
            faults_spec=args.faults, report_path=args.report,
            fresh=args.fresh,
            progress=None if args.quiet else _default_progress,
            collect_metrics=not args.no_metrics,
            trace_spans=args.trace_spans,
            gen_manifests=gen_manifests)
    except ValueError as error:  # bad fault spec and friends
        print(f"hunt: {error}", file=sys.stderr)
        return 2

    triage = summary["triage"]
    print(f"hunted {summary['programs']} programs: "
          f"{triage['bug']} bug, {triage['crash']} crash, "
          f"{triage['ok']} ok, {triage['timeout']} timeout, "
          f"{triage['limit']} limit, "
          f"{triage['compile-error']} compile-error, "
          f"{triage['tool-error']} tool-error"
          + (f" (resumed; {summary['skipped_completed']} already done)"
             if summary.get("resumed") else ""))
    print(f"distinct bugs ({summary['distinct_bugs']}):")
    for bug in summary["bugs"]:
        programs_list = ", ".join(bug["programs"][:5])
        if len(bug["programs"]) > 5:
            programs_list += f", +{len(bug['programs']) - 5} more"
        print(f"  {bug['signature']}  x{bug['count']}  "
              f"[{programs_list}]")
    from .harness.report import format_summary_metrics
    for line in format_summary_metrics(summary):
        print(line)
    print(f"report: {summary['report']}")
    return 1 if triage["tool-error"] else 0


def _pick_record(path: str, wanted: str | None) -> dict | None:
    """First matching result record from a hunt-report JSONL: by job id
    when ``wanted`` is given, else the first bug-triaged record."""
    import json
    fallback = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("type") != "result":
                continue
            if wanted is not None:
                if data.get("id") == wanted:
                    return data
            elif fallback is None and data.get("triage") == "bug":
                fallback = data
    return fallback


def cmd_explain(args: argparse.Namespace) -> int:
    import json

    from .obs.replay import (ReplayError, build_manifest, explain,
                             explain_record)
    from .obs.slices import render_text, validate_packet

    if args.selftest:
        from .obs.replay import selftest
        ok, problems = selftest(verbose=not args.quiet)
        for problem in problems:
            print(f"explain selftest: {problem}", file=sys.stderr)
        print("explain selftest: " + ("PASS" if ok else "FAIL"))
        return 0 if ok else 1
    if not args.target:
        print("explain: no target given (pass a hunt report .jsonl, a "
              "manifest .json, a C file, or --selftest)",
              file=sys.stderr)
        return 2

    source = None
    if args.source:
        try:
            source = _read_source(args.source)
        except OSError as error:
            print(f"cannot read {args.source}: {error}", file=sys.stderr)
            return 2

    kwargs = dict(budget=args.budget, window=args.window,
                  divergence=args.divergence, max_steps=args.max_steps,
                  cache_dir=args.cache_dir)
    try:
        if args.target.endswith(".jsonl"):
            record = _pick_record(args.target, args.id)
            if record is None:
                print("explain: no matching record "
                      + (f"with id {args.id!r}" if args.id
                         else "triaged as a bug")
                      + f" in {args.target} (pick one with --id)",
                      file=sys.stderr)
                return 2
            packet = explain_record(record, source, **kwargs)
        elif args.target.endswith(".json"):
            with open(args.target, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if "manifest_version" not in data:
                # A repro.gen program manifest (`gen generate` writes
                # gen-<seed>.c.json next to each program): wrap it.
                if data.get("seed") is None:
                    print(f"explain: {args.target} is neither a replay "
                          "manifest nor a gen program manifest",
                          file=sys.stderr)
                    return 2
                data = build_manifest(filename=data.get("filename"),
                                      gen=data)
            packet = explain(data, source, **kwargs)
        else:
            text = _read_source(args.target)
            manifest = build_manifest(source=text, filename=args.target,
                                      max_steps=args.max_steps)
            packet = explain(manifest, text, **kwargs)
    except ReplayError as error:
        print(f"explain: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"cannot read {args.target}: {error}", file=sys.stderr)
        return 2

    problems = validate_packet(packet)
    for problem in problems:
        print(f"explain: schema problem: {problem}", file=sys.stderr)
    if args.format == "text":
        rendered = render_text(packet) + "\n"
    else:
        rendered = json.dumps(packet, indent=2, sort_keys=True) + "\n"
    if args.out and args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"packet written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(rendered)
    return 1 if problems else 0


def cmd_gen(args: argparse.Namespace) -> int:
    import json
    import os

    from .gen import (GenConfig, choose_plant, generate, reduce_source,
                      run_oracle, sweep)
    from .gen import selftest as gen_selftest
    from .gen.reduce import oracle_predicate

    if args.selftest:
        ok, problems = gen_selftest(count=args.count or 200,
                                    base_seed=args.seed,
                                    verbose=not args.quiet)
        for problem in problems:
            print(f"gen selftest: {problem}", file=sys.stderr)
        print("gen selftest: " + ("PASS" if ok else "FAIL"))
        return 0 if ok else 1

    command = args.gen_command
    if command is None:
        print("gen: pick a subcommand (generate | oracle | reduce | "
              "submit) or --selftest", file=sys.stderr)
        return 2

    if command == "generate":
        os.makedirs(args.out, exist_ok=True)
        for seed in range(args.seed, args.seed + (args.count or 1)):
            program = generate(
                seed, GenConfig(plant=choose_plant(seed, args.plant)))
            path = os.path.join(args.out, program.filename)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(program.source)
            with open(path + ".json", "w", encoding="utf-8") as handle:
                json.dump(program.manifest, handle, indent=2)
                handle.write("\n")
            if not args.quiet:
                print(path)
        return 0

    if command == "oracle":
        def progress(report):
            if args.quiet:
                return
            if report.is_bug or args.verbose:
                print(report.summary_line())

        summary = sweep(args.count or 1, base_seed=args.seed,
                        plant_mode=args.plant,
                        cache_dir=args.cache_dir,
                        on_report=progress)
        print(summary.table())
        if summary.bugs and args.repro_dir:
            os.makedirs(args.repro_dir, exist_ok=True)
            for report in summary.bugs:
                program = generate(
                    report.seed,
                    GenConfig(plant=choose_plant(report.seed,
                                                 args.plant)))
                source = program.source
                if args.reduce:
                    predicate = oracle_predicate(
                        program.manifest,
                        expected_verdict=report.verdict,
                        cache_dir=args.cache_dir)
                    source = reduce_source(
                        source, predicate,
                        max_steps=args.reduce_steps).source
                path = os.path.join(args.repro_dir,
                                    f"repro-{report.seed}.c")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(source)
                print(f"repro: {path} ({report.verdict})")
        return 0 if summary.ok else 1

    if command == "reduce":
        source = _read_source(args.program)
        manifest = None
        if args.manifest:
            with open(args.manifest, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        predicate = oracle_predicate(manifest,
                                     expected_verdict=args.verdict,
                                     cache_dir=args.cache_dir)
        result = reduce_source(source, predicate,
                               max_steps=args.reduce_steps)
        if args.out and args.out != "-":
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(result.source)
        else:
            sys.stdout.write(result.source)
        print(f"reduce: {result.original_lines} -> "
              f"{result.reduced_lines} lines in {result.steps} steps"
              f" (passes: {', '.join(result.passes) or 'none'})"
              + (" [budget exhausted]" if result.exhausted else ""),
              file=sys.stderr)
        return 0

    if command == "submit":
        from .service.api import _http_json
        base = args.url.rstrip("/")
        accepted = 0
        for seed in range(args.seed, args.seed + (args.count or 1)):
            program = generate(
                seed, GenConfig(plant=choose_plant(seed, args.plant)))
            body = {"source": program.source,
                    "filename": program.filename}
            if args.campaign:
                body["campaign"] = args.campaign
            response = _http_json("POST", base + "/submit", body)
            accepted += 1
            if not args.quiet:
                print(f"submitted {program.filename} as job "
                      f"{response.get('id')}")
        print(f"gen: submitted {accepted} programs to {base}")
        return 0

    print(f"gen: unknown subcommand {command!r}", file=sys.stderr)
    return 2


def cmd_emit_ir(args: argparse.Namespace) -> int:
    from .ir.printer import print_module
    source = _read_source(args.program)
    if args.native:
        from .native import compile_native
        module = compile_native(source, filename=args.program,
                                opt_level=3 if args.optimize else 0)
    else:
        from .cfront import compile_source
        from .libc import include_dir
        module = compile_source(source, filename=args.program,
                                include_dirs=[include_dir()],
                                defines={"__SAFE_SULONG__": "1"})
        if args.optimize:
            from .opt.pipeline import run_o3
            run_o3(module)
    sys.stdout.write(print_module(module))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (apply_baseline, lint_source, load_baseline,
                           render_json, render_sarif, render_text,
                           write_baseline)
    from .analysis.lint import lint_selftest
    from .cache import resolve_cache

    if args.selftest:
        ok, problems = lint_selftest(verbose=not args.quiet)
        for problem in problems:
            print(f"lint selftest: {problem}", file=sys.stderr)
        print("lint selftest: " + ("PASS" if ok else "FAIL"))
        return 0 if ok else 1
    if not args.program:
        print("lint: no program given (pass a .c file, -, or "
              "--selftest)", file=sys.stderr)
        return 2

    try:
        source = _read_source(args.program)
    except OSError as error:
        print(f"cannot read {args.program}: {error}", file=sys.stderr)
        return 2
    cache = resolve_cache(args.cache_dir, enabled=not args.no_cache)
    try:
        diagnostics = lint_source(source, filename=args.program,
                                  interproc=not args.no_interproc,
                                  cache=cache)
    except Exception as error:  # compile/front-end failure
        print(f"lint failed: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(args.write_baseline, diagnostics)
        print(f"baseline with {len(diagnostics)} finding(s) written to "
              f"{args.write_baseline}", file=sys.stderr)
        return 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            print(f"cannot read baseline {args.baseline}: {error}",
                  file=sys.stderr)
            return 2
        diagnostics, suppressed = apply_baseline(diagnostics, baseline)
        if suppressed:
            print(f"{suppressed} baselined finding(s) suppressed",
                  file=sys.stderr)
    output_format = "json" if args.json else args.format
    if output_format == "json":
        print(render_json(diagnostics))
    elif output_format == "sarif":
        print(render_sarif(diagnostics))
    else:
        print(render_text(diagnostics))
    return 1 if diagnostics else 0


def cmd_matrix(args: argparse.Namespace) -> int:
    from .cache import default_cache_dir
    from .corpus import run_matrix
    cache_dir = None if args.no_cache \
        else (args.cache_dir or default_cache_dir())
    matrix = run_matrix(all_runners(), jobs=args.jobs,
                        timeout=args.timeout,
                        collect_metrics=bool(args.metrics),
                        cache_dir=cache_dir)
    if args.metrics:
        _write_metrics(args.metrics, matrix.metrics, "safe-sulong")
    print(matrix.format_table())
    print()
    print("found by Safe Sulong only:",
          ", ".join(sorted(matrix.found_by_neither_baseline())))
    missed = sorted(name for name, row in matrix.outcomes.items()
                    if not row.get("safe-sulong"))
    if missed:
        print(f"DETECTION REGRESSION: safe-sulong missed "
              f"{', '.join(missed)}", file=sys.stderr)
        return 1
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .cache import default_cache_dir, get_cache
    root = args.cache_dir or default_cache_dir()
    if args.action == "path":
        print(root)
        return 0
    cache = get_cache(root)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.root}")
        return 0
    usage = cache.disk_usage()
    print(f"cache: {cache.root}")
    total_entries = total_bytes = 0
    for artifact, row in usage.items():
        total_entries += row["entries"]
        total_bytes += row["bytes"]
        print(f"  {artifact:<9} {row['entries']:>7} entries  "
              f"{row['bytes']:>12,} B")
    print(f"  {'total':<9} {total_entries:>7} entries  "
          f"{total_bytes:>12,} B")
    return 0


def cmd_bench_merge(args: argparse.Namespace) -> int:
    import os

    from .bench import history
    root = args.root or os.getcwd()
    report = history.merge(root)
    state = "appended run" if report["appended"] else "unchanged"
    print(f"{report['path']}: {state} ({report['runs']} runs, "
          f"benchmarks: {', '.join(report['benchmarks']) or 'none'})")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .harness.faults import parse_faults
    from .harness.quotas import Quotas
    from .service.api import selftest, serve

    if args.selftest:
        return selftest(verbose=not args.quiet)
    if not args.state_dir:
        print("serve: --state-dir is required (the durable queue and "
              "bug database live there)", file=sys.stderr)
        return 2
    try:
        fault_plan = parse_faults(args.faults) if args.faults else None
    except ValueError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    quotas = Quotas(max_steps=args.max_steps,
                    max_heap_bytes=args.heap_quota,
                    max_output_bytes=args.output_cap)
    options = {"jit_threshold": args.jit, "elide_checks": args.elide,
               "speculate": args.speculate,
               "use_cache": not args.no_cache,
               "cache_dir": args.cache_dir}
    return serve(
        args.state_dir, host=args.host, port=args.port,
        verbose=not args.quiet, tool=args.tool, options=options,
        quotas=quotas, jobs=args.jobs, timeout=args.timeout,
        retries=args.retries, max_depth=args.max_depth,
        degrade_depth=args.degrade_depth, lease_ttl=args.lease_ttl,
        cache_cap_bytes=args.cache_cap, fault_plan=fault_plan)


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="compilation-cache directory (default "
                             "$REPRO_CACHE_DIR, else ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the compilation cache for this "
                             "invocation (REPRO_NO_CACHE=1 also "
                             "disables it)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Safe Sulong (ASPLOS'18) reproduction — find memory "
                    "errors in C programs by abstracting from the native "
                    "execution model.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="compile and run a C program",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="exit codes: the program's own exit status, or 2 unknown "
               "tool / compile error, 3 bug detected, 4 crash, 5 step "
               "limit or resource quota exceeded, 6 wall-clock timeout, "
               "7 internal tool error")
    run_parser.add_argument("--tool", default="safe-sulong",
                            help="safe-sulong (default), asan-O0, "
                                 "asan-O3, memcheck-O0, memcheck-O3, "
                                 "clang-O0, clang-O3")
    run_parser.add_argument("--stdin", action="store_true",
                            help="forward this process's stdin")
    run_parser.add_argument("--max-steps", type=int, default=None,
                            help="abort after N interpreter steps "
                                 "(exit 5)")
    run_parser.add_argument("--timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="wall-clock watchdog: run in an "
                                 "isolated worker process, kill it "
                                 "after SECONDS (exit 6)")
    run_parser.add_argument("--heap-quota", type=int, default=None,
                            metavar="BYTES",
                            help="cap live heap bytes in the managed "
                                 "allocator (exit 5; safe-sulong only)")
    run_parser.add_argument("--elide", action="store_true",
                            help="enable static check elision for the "
                                 "safe-sulong tool (skips dynamic checks "
                                 "the analysis proves redundant)")
    run_parser.add_argument("--speculate", action="store_true",
                            help="enable speculative check elision with "
                                 "deopt (implies --elide; guarded "
                                 "fast paths for hot loops, falling "
                                 "back to full checks when a guard "
                                 "trips; safe-sulong only)")
    run_parser.add_argument("--metrics", default=None, metavar="PATH",
                            help="run under an enabled observer and "
                                 "write its snapshot (check/JIT/heap "
                                 "counters) as JSON to PATH (or - for "
                                 "stdout; safe-sulong only)")
    run_parser.add_argument("--heap-dump", action="store_true",
                            help="on a bug, also print a bounded dump "
                                 "of heap objects with allocation/free "
                                 "sites (safe-sulong only)")
    run_parser.add_argument("--trace-spans", default=None, metavar="PATH",
                            help="record compile/execute phase spans "
                                 "and write a Chrome trace_event JSON "
                                 "to PATH (load in chrome://tracing or "
                                 "Perfetto)")
    run_parser.add_argument("--manifest", default=None, metavar="PATH",
                            help="also write a replay manifest that "
                                 "fully determines this run (feed it "
                                 "to `repro explain`)")
    _add_cache_flags(run_parser)
    run_parser.add_argument("program", help="C source file (or - )")
    run_parser.add_argument("args", nargs="*",
                            help="argv for the program (after --)")
    run_parser.set_defaults(handler=cmd_run)

    profile_parser = sub.add_parser(
        "profile", help="run a C program under the observability layer "
                        "and print a profile",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="Runs the program once with safe-sulong under an enabled "
               "observer (JIT on by default so the compile timeline has "
               "content) and prints safety-check counts by kind, the "
               "hot-function table, the JIT compile timeline, and heap "
               "pressure.\n"
               "exit codes: 0 profile rendered (whatever the program's "
               "outcome), 2 compile/usage error")
    profile_parser.add_argument("--jit", type=int,
                                default=None, metavar="THRESHOLD",
                                help="dynamic-tier threshold in calls "
                                     "(default 3; pass 0 to disable "
                                     "the JIT)")
    profile_parser.add_argument("--elide", action="store_true",
                                help="enable proven-safe check elision "
                                     "(the elided columns then count "
                                     "skipped checks)")
    profile_parser.add_argument("--max-steps", type=int, default=None,
                                help="abort after N interpreter steps")
    profile_parser.add_argument("--stdin", action="store_true",
                                help="forward this process's stdin")
    profile_parser.add_argument("--quiet", action="store_true",
                                help="suppress the program's own stdout")
    profile_parser.add_argument("--metrics", default=None,
                                metavar="PATH",
                                help="also write the raw snapshot as "
                                     "JSON to PATH (or - for stdout)")
    profile_parser.add_argument("--trace", default=None, metavar="PATH",
                                help="stream every observer event as "
                                     "JSONL to PATH while running")
    profile_parser.add_argument("--lines", action="store_true",
                                help="per-source-line attribution: "
                                     "annotated source with exact "
                                     "instruction/check/allocation "
                                     "counts (pins the run to the "
                                     "interpreter)")
    profile_parser.add_argument("--flamegraph", default=None,
                                metavar="PATH",
                                help="write collapsed stacks "
                                     "(flamegraph.pl / speedscope "
                                     "format) to PATH; implies --lines")
    profile_parser.add_argument("--hot-checks", type=int, default=0,
                                metavar="N",
                                help="print the top-N check sites by "
                                     "executed-check count with "
                                     "fired/never-fired status — the "
                                     "exact evidence the speculative "
                                     "eliser consumes (implies --lines)")
    profile_parser.add_argument("--heap-dump", action="store_true",
                                help="print a bounded dump of heap "
                                     "objects with allocation/free "
                                     "sites after the run")
    profile_parser.add_argument("--trace-spans", default=None,
                                metavar="PATH",
                                help="write compile/execute phase spans "
                                     "as Chrome trace_event JSON to "
                                     "PATH")
    _add_cache_flags(profile_parser)
    profile_parser.add_argument("program", help="C source file (or - )")
    profile_parser.add_argument("args", nargs="*",
                                help="argv for the program (after --)")
    profile_parser.set_defaults(handler=cmd_profile)

    hunt_parser = sub.add_parser(
        "hunt", help="batch bug hunt over a corpus, hardened "
                     "(isolation, watchdog, quotas, resume)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="Runs every program in its own watchdogged worker "
               "process; outcomes stream into a resumable JSONL report "
               "(see README for the schema).  Re-invoking the same "
               "campaign resumes from the checkpoint; --fresh starts "
               "over.\n"
               "exit codes: 0 campaign complete, 1 tool-internal "
               "failures occurred, 2 usage error")
    hunt_parser.add_argument("paths", nargs="*",
                             help="directories (searched recursively "
                                  "for *.c) and/or C files")
    hunt_parser.add_argument("--tool", default="safe-sulong",
                             help="tool to hunt with (default "
                                  "safe-sulong)")
    hunt_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="worker processes to run in parallel "
                                  "(default 1)")
    hunt_parser.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="per-program wall-clock watchdog "
                                  "(default 10)")
    hunt_parser.add_argument("--max-steps", type=int,
                             default=2_000_000,
                             help="interpreter step budget per program "
                                  "(default 2000000)")
    hunt_parser.add_argument("--heap-quota", type=int,
                             default=64 * 1024 * 1024, metavar="BYTES",
                             help="live managed-heap budget per program "
                                  "(default 64 MiB)")
    hunt_parser.add_argument("--call-depth", type=int, default=None,
                             metavar="FRAMES",
                             help="call-depth quota per program "
                                  "(default: bounded by the host stack)")
    hunt_parser.add_argument("--output-cap", type=int,
                             default=1024 * 1024, metavar="BYTES",
                             help="program output budget (default "
                                  "1 MiB)")
    hunt_parser.add_argument("--retries", type=int, default=2,
                             help="retries per rung for transient "
                                  "worker failures (default 2)")
    hunt_parser.add_argument("--backoff", type=float, default=0.1,
                             metavar="SECONDS",
                             help="base retry backoff, doubled per "
                                  "retry (default 0.1)")
    hunt_parser.add_argument("--no-ladder", action="store_true",
                             help="disable the degradation ladder "
                                  "(elide→full-checks, "
                                  "JIT→interpreter)")
    hunt_parser.add_argument("--jit", type=int, default=None,
                             metavar="THRESHOLD",
                             help="enable the dynamic tier at N calls "
                                  "(safe-sulong)")
    hunt_parser.add_argument("--elide", action="store_true",
                             help="enable proven-safe check elision "
                                  "(safe-sulong)")
    hunt_parser.add_argument("--speculate", action="store_true",
                             help="enable speculative check elision "
                                  "with deopt as the top ladder rung "
                                  "(degrades speculate→elide→"
                                  "full-checks; safe-sulong)")
    hunt_parser.add_argument("--report",
                             default="hunt-report.jsonl", metavar="PATH",
                             help="JSONL report path (checkpoint goes "
                                  "to PATH.ckpt)")
    hunt_parser.add_argument("--fresh", action="store_true",
                             help="ignore any existing checkpoint and "
                                  "restart the campaign")
    hunt_parser.add_argument("--faults", default=None, metavar="SPEC",
                             help="fault injection spec (kind@job[*N]; "
                                  "kinds: crash, hang, oom, error; also "
                                  "via REPRO_HARNESS_FAULTS)")
    hunt_parser.add_argument("--prescreen", action="store_true",
                             help="run the interprocedural static lint "
                                  "per program and record its findings "
                                  "on the campaign report records")
    hunt_parser.add_argument("--gen", type=int, default=0, metavar="N",
                             help="generate N seeded programs "
                                  "(repro.gen) and add them to the "
                                  "corpus")
    hunt_parser.add_argument("--gen-seed", type=int, default=0,
                             metavar="SEED",
                             help="first generator seed for --gen "
                                  "(default 0)")
    hunt_parser.add_argument("--gen-plant", default="mixed",
                             choices=("none", "spatial", "temporal",
                                      "mixed"),
                             help="planted-bug mix for --gen programs "
                                  "(default mixed)")
    hunt_parser.add_argument("--selftest", action="store_true",
                             help="run the built-in harness smoke test "
                                  "(tiny corpus with injected faults) "
                                  "and exit")
    hunt_parser.add_argument("--quiet", action="store_true",
                             help="suppress per-program progress lines")
    hunt_parser.add_argument("--no-metrics", action="store_true",
                             help="skip per-run observability metrics "
                                  "(the summary then has no aggregated "
                                  "check/JIT/heap totals)")
    hunt_parser.add_argument("--trace-spans", default=None,
                             metavar="PATH",
                             help="collect per-worker phase spans and "
                                  "merge them into one Chrome "
                                  "trace_event JSON at PATH (one "
                                  "trace process per program)")
    _add_cache_flags(hunt_parser)
    hunt_parser.set_defaults(handler=cmd_hunt)

    lint_parser = sub.add_parser(
        "lint", help="statically lint a C program (no execution)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="exit codes: 0 no diagnostics, 1 diagnostics found, "
               "2 usage or compile error\n"
               "diagnostic kinds: out-of-bounds, null-dereference, "
               "use-after-free,\n  double-free, invalid-free, "
               "uninitialized-load, memory-leak, bad-cast")
    lint_parser.add_argument("--json", action="store_true",
                             help="machine-readable JSON output "
                                  "(same as --format json)")
    lint_parser.add_argument("--format", default="text",
                             choices=("text", "json", "sarif"),
                             help="output format (sarif = SARIF 2.1.0 "
                                  "for CI annotators)")
    lint_parser.add_argument("--no-interproc", action="store_true",
                             help="per-function analysis only (skip "
                                  "the call-graph/summary pipeline)")
    lint_parser.add_argument("--baseline", default=None, metavar="PATH",
                             help="suppress findings recorded in this "
                                  "baseline file")
    lint_parser.add_argument("--write-baseline", default=None,
                             metavar="PATH",
                             help="record the current findings as "
                                  "accepted and exit 0")
    lint_parser.add_argument("--selftest", action="store_true",
                             help="lint seeded cross-function bugs "
                                  "(and one clean program) and exit")
    lint_parser.add_argument("--quiet", action="store_true",
                             help="suppress per-program selftest lines")
    lint_parser.add_argument("program", nargs="?", default=None,
                             help="C source file (or - )")
    _add_cache_flags(lint_parser)
    lint_parser.set_defaults(handler=cmd_lint)

    emit_parser = sub.add_parser("emit-ir",
                                 help="print the IR for a C program")
    emit_parser.add_argument("-O3", dest="optimize", action="store_true",
                             help="run the -O3 pipeline first")
    emit_parser.add_argument("--native", action="store_true",
                             help="compile for the native model "
                                  "(includes backend folds)")
    emit_parser.add_argument("program")
    emit_parser.set_defaults(handler=cmd_emit_ir)

    matrix_parser = sub.add_parser(
        "matrix", help="run the 68-bug corpus through every tool (§4.1)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="exit codes: 0 safe-sulong detects every corpus bug, "
               "1 detection regression (CI gate)")
    matrix_parser.add_argument("--jobs", type=int, default=None,
                               metavar="N",
                               help="run each (program, tool) cell in "
                                    "its own watchdogged worker, N in "
                                    "parallel")
    matrix_parser.add_argument("--timeout", type=float, default=None,
                               metavar="SECONDS",
                               help="per-cell watchdog when --jobs is "
                                    "used (default 10)")
    matrix_parser.add_argument("--metrics", default=None, metavar="PATH",
                               help="observe the safe-sulong cells and "
                                    "write the aggregated snapshot as "
                                    "JSON to PATH (or - for stdout)")
    _add_cache_flags(matrix_parser)
    matrix_parser.set_defaults(handler=cmd_matrix)

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the compilation cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="actions:\n"
               "  stats  per-artifact-class entry counts and sizes\n"
               "  clear  delete every cached entry\n"
               "  path   print the resolved cache directory")
    cache_parser.add_argument("action",
                              choices=("stats", "clear", "path"))
    cache_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="operate on DIR instead of the "
                                   "default directory")
    cache_parser.set_defaults(handler=cmd_cache)

    serve_parser = sub.add_parser(
        "serve", help="run the bug-hunting service (durable queue, "
                      "persistent bug DB, supervised workers)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="Endpoints: POST /submit (JSON task; 202 accepted, 429 "
               "shedding), GET /job/<id> (JSONL stream; ?wait=SECONDS), "
               "GET /bugs (deduplicated bug database), GET /explain/<id> "
               "(replay a completed task into a failure-slice packet; "
               "<id> is a job id or URL-encoded bug signature), "
               "GET /healthz.\n"
               "All durable state lives under --state-dir and survives "
               "kill -9; the bound port is announced in "
               "<state-dir>/serve.json (useful with --port 0).\n"
               "exit codes: 0 clean shutdown (SIGTERM/SIGINT), "
               "1 selftest failure, 2 usage error")
    serve_parser.add_argument("--state-dir", default=None, metavar="DIR",
                              help="durable state directory (queue WAL, "
                                   "bug database, serve.json)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="bind port (default 0: ephemeral, "
                                   "announced in serve.json)")
    serve_parser.add_argument("--tool", default="safe-sulong",
                              help="tool the service hunts with "
                                   "(default safe-sulong)")
    serve_parser.add_argument("--jobs", type=int, default=2, metavar="N",
                              help="worker processes per batch "
                                   "(default 2)")
    serve_parser.add_argument("--timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-task wall-clock watchdog "
                                   "(default 10)")
    serve_parser.add_argument("--retries", type=int, default=2,
                              help="retries per degradation rung "
                                   "(default 2)")
    serve_parser.add_argument("--max-depth", type=int, default=256,
                              metavar="N",
                              help="admission-control bound on "
                                   "incomplete work; past it /submit "
                                   "answers 429 (default 256)")
    serve_parser.add_argument("--degrade-depth", type=int, default=None,
                              metavar="N",
                              help="backlog depth that walks the whole "
                                   "service down the degradation ladder "
                                   "(default max-depth/4)")
    serve_parser.add_argument("--lease-ttl", type=float, default=None,
                              metavar="SECONDS",
                              help="task lease duration; an expired "
                                   "lease is redelivered (default "
                                   "2x timeout)")
    serve_parser.add_argument("--max-steps", type=int,
                              default=2_000_000,
                              help="interpreter step budget per task "
                                   "(default 2000000)")
    serve_parser.add_argument("--heap-quota", type=int,
                              default=64 * 1024 * 1024, metavar="BYTES",
                              help="managed-heap budget per task "
                                   "(default 64 MiB)")
    serve_parser.add_argument("--output-cap", type=int,
                              default=1024 * 1024, metavar="BYTES",
                              help="program output budget (default "
                                   "1 MiB)")
    serve_parser.add_argument("--jit", type=int, default=None,
                              metavar="THRESHOLD",
                              help="enable the dynamic tier at N calls "
                                   "(safe-sulong)")
    serve_parser.add_argument("--elide", action="store_true",
                              help="enable proven-safe check elision "
                                   "(safe-sulong)")
    serve_parser.add_argument("--speculate", action="store_true",
                              help="enable speculative check elision "
                                   "with deopt as the top ladder rung "
                                   "(degrades speculate→elide→"
                                   "full-checks; safe-sulong)")
    serve_parser.add_argument("--cache-cap", type=int, default=None,
                              metavar="BYTES",
                              help="prune the shared compilation cache "
                                   "back under BYTES periodically")
    serve_parser.add_argument("--faults", default=None, metavar="SPEC",
                              help="fault injection spec (adds service "
                                   "kinds: worker-kill, db-torn-write, "
                                   "queue-stall)")
    serve_parser.add_argument("--selftest", action="store_true",
                              help="end-to-end smoke: spawn a server, "
                                   "submit a known bug, kill -9, prove "
                                   "the database survived; then exit")
    serve_parser.add_argument("--quiet", action="store_true",
                              help="suppress progress output")
    _add_cache_flags(serve_parser)
    serve_parser.set_defaults(handler=cmd_serve)

    explain_parser = sub.add_parser(
        "explain", help="deterministically replay a bug record and "
                        "emit an LLM-consumable failure slice",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="TARGET is a hunt report (.jsonl — picks --id, else the "
               "first bug record), a replay or gen manifest (.json), "
               "or a C source file.  The run replays pinned to the "
               "reference interpreter tier under a bounded basic-block "
               "recorder; the packet carries the executed CFG path, a "
               "window of block traces with register values near the "
               "fault, the faulting object's allocation/free history, "
               "and — for generated programs — the bisected tier "
               "divergence point.  It is trimmed "
               "farthest-from-fault-first to stay under --budget "
               "bytes (schema: repro.obs.slices.EXPLAIN_SCHEMA).\n"
               "exit codes: 0 packet emitted, 1 packet emitted with "
               "schema problems, 2 usage or replay error")
    explain_parser.add_argument("target", nargs="?", default=None,
                                help="hunt-report .jsonl, manifest "
                                     ".json, or C source file")
    explain_parser.add_argument("--id", default=None, metavar="JOB",
                                help="pick this job id from a .jsonl "
                                     "report (default: first bug "
                                     "record)")
    explain_parser.add_argument("--source", default=None, metavar="PATH",
                                help="program source override when the "
                                     "manifest cannot locate it (digest"
                                     "-verified against the record)")
    explain_parser.add_argument("--format", default="json",
                                choices=("json", "text"),
                                help="packet rendering (default json)")
    explain_parser.add_argument("--budget", type=int, default=64 * 1024,
                                metavar="BYTES",
                                help="hard packet size budget; trimmed "
                                     "farthest-from-fault first "
                                     "(default 65536)")
    explain_parser.add_argument("--window", type=int, default=32,
                                metavar="BLOCKS",
                                help="block-trace ring size: how many "
                                     "blocks before the fault keep "
                                     "register snapshots (default 32)")
    explain_parser.add_argument("--max-steps", type=int, default=None,
                                help="override the recorded interpreter "
                                     "step budget")
    explain_parser.add_argument("--divergence",
                                action=argparse.BooleanOptionalAction,
                                default=None,
                                help="force the tier-divergence pass on "
                                     "or off (default: on for "
                                     "generated programs)")
    explain_parser.add_argument("--out", default="-", metavar="PATH",
                                help="write the packet here (default "
                                     "stdout)")
    explain_parser.add_argument("--selftest", action="store_true",
                                help="plant a bug, hunt it, explain it "
                                     "from its report line, validate "
                                     "the packet; then exit")
    explain_parser.add_argument("--quiet", action="store_true",
                                help="suppress selftest progress lines")
    _add_cache_flags(explain_parser)
    explain_parser.set_defaults(handler=cmd_explain)

    gen_parser = sub.add_parser(
        "gen", help="generative differential oracle: seeded program "
                    "generation, five-way tier comparison, minimizing "
                    "reduction",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="Programs are well-defined by construction, so any "
               "tier disagreement on a clean program is an engine bug "
               "and any planted bug the full-check tier misses is a "
               "detection regression.  Verdicts per program: agree, "
               "planted-caught, planted-missed, divergence.\n\n"
               "examples:\n"
               "  repro gen generate --seed 0 --count 10 --out corpus/\n"
               "  repro gen oracle --count 100 --plant mixed\n"
               "  repro gen oracle --count 50 --repro-dir repros "
               "--reduce\n"
               "  repro gen reduce bad.c --verdict divergence\n"
               "  repro gen submit --url http://localhost:8321 "
               "--count 20\n"
               "  repro gen --selftest")
    gen_parser.add_argument("--selftest", action="store_true",
                            help="fixed-seed acceptance sweep: ≥200 "
                                 "programs, asserts ≥1 planted bug "
                                 "caught and 0 divergences")
    gen_parser.add_argument("--seed", type=int, default=0,
                            help="first seed (default 0)")
    gen_parser.add_argument("--count", type=int, default=None,
                            metavar="N",
                            help="number of consecutive seeds")
    gen_parser.add_argument("--quiet", action="store_true",
                            help="suppress per-program output")
    gen_common = argparse.ArgumentParser(add_help=False)
    gen_common.add_argument("--seed", type=int, default=0,
                            help="first seed (default 0)")
    gen_common.add_argument("--count", type=int, default=None,
                            metavar="N",
                            help="number of consecutive seeds")
    gen_common.add_argument("--quiet", action="store_true",
                            help="suppress per-program output")
    gen_sub = gen_parser.add_subparsers(dest="gen_command")

    gen_generate = gen_sub.add_parser(
        "generate", parents=[gen_common],
        help="write generated programs + manifests to a directory")
    gen_generate.add_argument("--out", default="gen-corpus",
                              metavar="DIR",
                              help="output directory (default "
                                   "gen-corpus)")
    gen_generate.add_argument("--plant", default="none",
                              choices=("none", "spatial", "temporal",
                                       "mixed"),
                              help="planted-bug mix (default none)")

    gen_oracle = gen_sub.add_parser(
        "oracle", parents=[gen_common],
        help="sweep seeds through the five-way differential oracle")
    gen_oracle.add_argument("--plant", default="mixed",
                            choices=("none", "spatial", "temporal",
                                     "mixed"),
                            help="planted-bug mix (default mixed)")
    gen_oracle.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="shared compilation cache directory "
                                 "(warm elision analysis across the "
                                 "sweep)")
    gen_oracle.add_argument("--repro-dir", default=None, metavar="DIR",
                            help="write a repro .c per divergence / "
                                 "planted-miss")
    gen_oracle.add_argument("--reduce", action="store_true",
                            help="minimize each repro before writing "
                                 "it")
    gen_oracle.add_argument("--reduce-steps", type=int, default=1500,
                            metavar="N",
                            help="reducer predicate-evaluation budget "
                                 "(default 1500)")
    gen_oracle.add_argument("--verbose", action="store_true",
                            help="print every verdict, not just bugs")

    gen_reduce = gen_sub.add_parser(
        "reduce", parents=[gen_common],
        help="minimize a program while its oracle verdict is "
             "preserved")
    gen_reduce.add_argument("program", help="C file to reduce "
                                            "(- for stdin)")
    gen_reduce.add_argument("--manifest", default=None, metavar="PATH",
                            help="ground-truth manifest JSON "
                                 "(from gen generate)")
    gen_reduce.add_argument("--verdict", default=None,
                            choices=("agree", "planted-caught",
                                     "planted-missed", "divergence"),
                            help="verdict to preserve (default: "
                                 "whatever the input's verdict is)")
    gen_reduce.add_argument("--out", default="-", metavar="PATH",
                            help="write reduced source here "
                                 "(default stdout)")
    gen_reduce.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="shared compilation cache directory")
    gen_reduce.add_argument("--reduce-steps", type=int, default=1500,
                            metavar="N",
                            help="predicate-evaluation budget "
                                 "(default 1500)")

    gen_submit = gen_sub.add_parser(
        "submit", parents=[gen_common],
        help="POST generated programs to a running repro serve "
             "instance")
    gen_submit.add_argument("--url", required=True,
                            help="service base URL "
                                 "(e.g. http://localhost:8321)")
    gen_submit.add_argument("--plant", default="mixed",
                            choices=("none", "spatial", "temporal",
                                     "mixed"),
                            help="planted-bug mix (default mixed)")
    gen_submit.add_argument("--campaign", default=None,
                            help="campaign tag recorded on each "
                                 "submission")
    gen_parser.set_defaults(handler=cmd_gen)

    bench_parser = sub.add_parser(
        "bench-merge", help="fold BENCH_*.json snapshots into "
                            "BENCH_trajectory.json",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="Appends the current per-benchmark snapshots as one run "
               "entry; identical consecutive snapshots are not "
               "re-appended.  Also reachable as "
               "tools/bench_history.py.")
    bench_parser.add_argument("--root", default=None, metavar="DIR",
                              help="directory holding the BENCH_*.json "
                                   "files (default: current directory)")
    bench_parser.set_defaults(handler=cmd_bench_merge)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
