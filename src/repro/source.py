"""Source locations, threaded from C tokens through the IR to bug reports.

The paper stresses that abstraction from the machine keeps *source-level*
information available at check time; carrying locations end-to-end is what
lets Safe Sulong print "out-of-bounds read of automatic storage at foo.c:12"
instead of a bare fault address.
"""

from __future__ import annotations


class SourceLocation:
    __slots__ = ("filename", "line", "column")

    def __init__(self, filename: str, line: int, column: int = 0):
        self.filename = filename
        self.line = line
        self.column = column

    def __str__(self) -> str:
        if self.column:
            return f"{self.filename}:{self.line}:{self.column}"
        return f"{self.filename}:{self.line}"

    def __repr__(self) -> str:
        return f"SourceLocation({self})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SourceLocation)
                and self.filename == other.filename
                and self.line == other.line
                and self.column == other.column)

    def __hash__(self) -> int:
        return hash((self.filename, self.line, self.column))


UNKNOWN = SourceLocation("<unknown>", 0)
