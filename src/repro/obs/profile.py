"""`repro profile`: one observed run, rendered for humans.

Runs a program under an enabled observer (JIT on by default so the
compile timeline has something to show) and renders the snapshot as a
hot-function table, a check-overhead breakdown, the JIT timeline, and
heap pressure — the §4.2-style "where does the time go" view.
"""

from __future__ import annotations

from .metrics import check_breakdown
from .observer import Observer

DEFAULT_JIT_THRESHOLD = 3
HOT_FUNCTIONS = 12


def profile_source(source: str, *, filename: str = "program.c",
                   argv: list[str] | None = None, stdin: bytes = b"",
                   jit_threshold: int | None = DEFAULT_JIT_THRESHOLD,
                   elide_checks: bool = False,
                   max_steps: int | None = None,
                   trace_path: str | None = None, cache=None,
                   lines: bool = False, track_heap: bool = False):
    """Run ``source`` with an enabled observer; returns
    ``(ExecutionResult, snapshot dict)``.

    ``lines=True`` switches on per-source-line attribution, which pins
    execution to the interpreter (exact counts, no JIT);
    ``track_heap=True`` keeps the heap-object list alive for
    ``--heap-dump`` rendering.
    """
    from ..core.engine import SafeSulong
    observer = Observer(enabled=True, trace_path=trace_path, lines=lines)
    engine = SafeSulong(jit_threshold=None if lines else jit_threshold,
                        elide_checks=elide_checks, max_steps=max_steps,
                        observer=observer, cache=cache,
                        track_heap=track_heap)
    try:
        result = engine.run_source(source, argv=argv, stdin=stdin,
                                   filename=filename)
    finally:
        observer.close()
    return result, observer.snapshot()


def speculation_profile(results=()) -> dict:
    """Build the profile dict the speculator consumes from observed
    runs: ``{"fired": [[file, line], ...]}`` where a site *fired* when
    a check at that source line detected a violation.  Feed this to
    ``SafeSulong(speculation_profile=...)`` to exclude those sites from
    speculative elision (:mod:`repro.opt.speculate`)."""
    fired = set()
    for result in results:
        for bug in getattr(result, "bugs", ()) or ():
            loc = bug.location
            if loc is not None:
                fired.add((loc.filename, loc.line))
    return {"fired": sorted([f, l] for f, l in fired)}


def hot_checks(snapshot: dict, results=(), top: int = 10) -> list:
    """Top-``top`` check sites by executed-check count from a
    lines-mode snapshot: ``(filename, line, checks, fired)`` rows,
    hottest first.  This is exactly the evidence the speculator
    consumes — a hot, never-fired site is a speculation candidate; a
    fired site is pinned to full checks."""
    fired = {tuple(entry) for entry in
             speculation_profile(results).get("fired", ())}
    rows = [(filename, line, checks, (filename, line) in fired)
            for filename, line, _instr, checks, _allocs
            in snapshot.get("lines", ()) if checks]
    rows.sort(key=lambda row: (-row[2], row[0], row[1]))
    return rows[:top]


def render_hot_checks(snapshot: dict, results=(), top: int = 10,
                      source: str = "", program: str = "") -> str:
    """Render the :func:`hot_checks` table with source attribution."""
    text_lines = source.splitlines()
    rows = hot_checks(snapshot, results, top)
    out = [f"== hot check sites: {program or 'program'} "
           f"(top {len(rows)}) =="]
    if not rows:
        out.append("  (no checks executed — nothing to speculate on)")
        return "\n".join(out)
    out.append(f"  {'site':<24} {'checks':>12} {'status':<12} source")
    for filename, line, checks, fired in rows:
        site = f"{filename}:{line}"
        status = "FIRED" if fired else "never-fired"
        snippet = ""
        if filename == program and 1 <= line <= len(text_lines):
            snippet = text_lines[line - 1].strip()[:48]
        out.append(f"  {site:<24} {checks:>12,} {status:<12} {snippet}")
    out.append("  never-fired sites are speculative-elision candidates; "
               "FIRED sites stay fully checked")
    return "\n".join(out)


def _outcome(result) -> str:
    if result.bugs:
        return f"BUG: {result.bugs[0]}"
    if result.crashed:
        return f"crash: {result.crash_message}"
    if result.limit_exceeded:
        return f"limit: {result.crash_message}"
    if result.internal_error:
        return f"internal error: {result.internal_error}"
    return f"exit {result.status}"


def render_profile(result, snapshot: dict, program: str = "") -> str:
    counters = snapshot.get("counters", {})
    lines: list[str] = []
    title = program or "program"
    lines.append(f"== profile: {title} ==")
    lines.append(f"outcome: {_outcome(result)}")
    lines.append(f"interpreter steps: {snapshot.get('steps', 0):,}   "
                 f"instructions retired: "
                 f"{counters.get('instructions', 0):,}   "
                 f"calls: {counters.get('calls', 0):,}   "
                 f"intrinsic calls: {counters.get('intrinsic.calls', 0):,}")
    dropped = snapshot.get("events_dropped", 0) \
        or counters.get("events.dropped", 0)
    if dropped:
        from .observer import MAX_EVENTS
        lines.append(f"WARNING: {dropped:,} events dropped (bounded "
                     f"buffer of {MAX_EVENTS}); the event timeline "
                     "below is truncated")

    lines.append("")
    lines.append("-- safety checks (executed vs elided, by kind) --")
    breakdown = check_breakdown(counters)
    rows = [
        ("load (null+bounds)", counters.get("check.load.full", 0),
         counters.get("check.load.nonull", 0)
         + counters.get("check.load.elided", 0)),
        ("store (null+bounds)", counters.get("check.store.full", 0),
         counters.get("check.store.nonull", 0)
         + counters.get("check.store.elided", 0)),
        ("pointer arithmetic", counters.get("check.gep", 0),
         counters.get("check.gep.elided", 0)),
    ]
    lines.append(f"  {'kind':<22} {'executed':>12} {'elided':>12}")
    for kind, executed, elided in rows:
        lines.append(f"  {kind:<22} {executed:>12,} {elided:>12,}")
    lines.append(f"  null checks executed: "
                 f"{breakdown['null_checks']:,}; bounds/lifetime "
                 f"checks executed: {breakdown['bounds_checks']:,}")

    lines.append("")
    lines.append("-- hot functions --")
    functions = snapshot.get("functions", [])
    if functions:
        lines.append(f"  {'function':<28} {'calls':>8} "
                     f"{'instructions':>14}  tier")
        for entry in functions[:HOT_FUNCTIONS]:
            tier = "jit" if entry.get("compiled") else "interp"
            lines.append(f"  {entry['name'][:28]:<28} "
                         f"{entry['calls']:>8,} "
                         f"{entry['instructions']:>14,}  {tier}")
        if len(functions) > HOT_FUNCTIONS:
            lines.append(f"  ... {len(functions) - HOT_FUNCTIONS} more")
    else:
        lines.append("  (no function activity recorded)")

    lines.append("")
    lines.append("-- JIT timeline --")
    jit = snapshot.get("jit", {})
    events = [event for event in snapshot.get("events", [])
              if event["event"] in ("jit-compile", "jit-bailout")]
    if events:
        for event in events:
            at = f"+{event['t'] * 1000.0:9.1f}ms"
            if event["event"] == "jit-compile":
                lines.append(
                    f"  {at}  compile {event['function']:<24} "
                    f"{event.get('compile_ms', 0):6.2f}ms  "
                    f"{event.get('code_bytes', 0):>7,} B")
            else:
                lines.append(f"  {at}  bailout {event['function']:<24} "
                             f"{event.get('reason', '?')}")
        lines.append(f"  total: {jit.get('compiled', 0)} compiled "
                     f"({jit.get('compile_s', 0.0) * 1000.0:.1f}ms, "
                     f"{jit.get('code_bytes', 0):,} B generated), "
                     f"{jit.get('bailouts', 0)} bailouts")
    else:
        lines.append("  (no compile activity — interpreter only)")

    lines.append("")
    lines.append("-- heap --")
    heap = snapshot.get("heap", {})
    lines.append(f"  allocations: {heap.get('allocs', 0):,}   "
                 f"frees: {heap.get('frees', 0):,}   "
                 f"live at exit: {heap.get('live_bytes', 0):,} B   "
                 f"high-water: {heap.get('peak_bytes', 0):,} B")

    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    rejects = counters.get("cache.reject", 0)
    stores = counters.get("cache.store", 0)
    if hits or misses or rejects or stores:
        lines.append("")
        lines.append("-- compilation cache --")
        lines.append(f"  hits: {hits:,}   misses: {misses:,}   "
                     f"rejected: {rejects:,}   stored: {stores:,}")
        for artifact in ("frontend", "prepare", "jit"):
            row = [counters.get(f"cache.{artifact}.{outcome}", 0)
                   for outcome in ("hit", "miss", "reject", "store")]
            if any(row):
                lines.append(f"  {artifact:<9} hit {row[0]:,} / "
                             f"miss {row[1]:,} / reject {row[2]:,} / "
                             f"store {row[3]:,}")

    quotas = [event for event in snapshot.get("events", [])
              if event["event"] == "quota"]
    if quotas:
        lines.append("")
        lines.append("-- quota hits --")
        for event in quotas:
            lines.append(f"  +{event['t'] * 1000.0:9.1f}ms  "
                         f"{event.get('kind', '?')}: "
                         f"{event.get('message', '')}")
    return "\n".join(lines)
