"""Runtime observability: counters, events, and their surfaces.

The engine itself stays silent by default — every hot-path hook is
behind a single ``observer is not None`` / ``observer.enabled`` branch
resolved at *prepare time* wherever possible, so a run without an
observer executes exactly the code it executed before this layer
existed (see DESIGN.md, "Observability" — the overhead contract is
measured by ``benchmarks/test_obs_overhead.py`` into ``BENCH_obs.json``).
"""

from .observer import Observer
from .metrics import (aggregate_metrics, check_breakdown,
                      service_breakdown)
from .profile import (hot_checks, profile_source, render_hot_checks,
                      render_profile, speculation_profile)
from .provenance import (provenance_signature, render_bug_report,
                         render_heap_dump)
from .lines import collapsed_stacks, render_lines, write_flamegraph
from .spans import SpanRecorder, set_recorder, span
from .slices import (BlockRecorder, build_packet, canonical_packet_bytes,
                     render_text, validate_packet)
from .replay import (ReplayError, ReplayMismatch, build_manifest,
                     explain, explain_record, manifest_for_task, replay,
                     resolve_source)

__all__ = ["Observer", "aggregate_metrics", "check_breakdown",
           "service_breakdown",
           "profile_source", "render_profile",
           "hot_checks", "render_hot_checks", "speculation_profile",
           "render_bug_report", "render_heap_dump",
           "provenance_signature",
           "collapsed_stacks", "render_lines", "write_flamegraph",
           "SpanRecorder", "set_recorder", "span",
           "BlockRecorder", "build_packet", "canonical_packet_bytes",
           "render_text", "validate_packet",
           "ReplayError", "ReplayMismatch", "build_manifest",
           "explain", "explain_record", "manifest_for_task", "replay",
           "resolve_source"]
