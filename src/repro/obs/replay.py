"""Replay manifests: deterministic record-replay for bug records.

A **replay manifest** is a small JSON object that fully determines one
engine run: the exact program (source digest, plus the ``(GEN_VERSION,
seed, GenConfig)`` tuple for generated programs so replay never depends
on regenerating with default knobs), the tool and its semantic options
(tier configuration and resource quotas — plumbing like cache paths is
deliberately excluded), the program inputs (argv/stdin/vfs), the step
budget, any injected harness fault, and the engine version that
recorded it.  The harness pool stamps one on every report record and
the service stores it with every completed task, so any campaign- or
service-found bug replays exactly from its JSONL line.

What a manifest does *not* capture — wall-clock time, host platform,
compilation-cache state, worker scheduling — is exactly the set of
things the managed engine keeps semantics-independent; DESIGN.md §6
spells out the guarantee.

:func:`replay` re-executes a manifest in-process, pinned to the
reference interpreter tier (jit/speculation off, checks on) with a
:class:`~repro.obs.slices.BlockRecorder` attached; :func:`explain`
wraps that into the structured failure-slice packet.  Replay verifies
the source digest first and raises :class:`ReplayMismatch` rather than
silently explaining a different program.
"""

from __future__ import annotations

import base64
import hashlib
import json

from .slices import (DEFAULT_BUDGET, DEFAULT_WINDOW, build_packet,
                     canonical_packet_bytes, divergence_slice,
                     validate_packet)

MANIFEST_VERSION = 1

# Explains of manifests that carry no step budget still terminate.
FALLBACK_MAX_STEPS = 5_000_000


class ReplayError(Exception):
    """The manifest cannot be replayed (missing program, bad fields)."""


class ReplayMismatch(ReplayError):
    """The resolved program is not the recorded one (digest mismatch)."""


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def build_manifest(*, tool: str = "safe-sulong",
                   options: dict | None = None,
                   source: str | None = None,
                   path: str | None = None,
                   filename: str | None = None,
                   corpus_entry: str | None = None,
                   argv: list | None = None,
                   stdin_b64: str | None = None,
                   vfs_b64: dict | None = None,
                   max_steps: int | None = None,
                   gen: dict | None = None,
                   fault=None) -> dict:
    """One replay manifest.  ``options`` is filtered down to the
    semantic engine options (tools.semantic_options); ``gen`` is a
    repro.gen program manifest and rides along whole."""
    from ..tools import engine_version, semantic_options
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "engine": engine_version(),
        "tool": tool,
        "options": semantic_options(tool, options),
        "filename": filename,
        "source_sha256": source_digest(source)
        if source is not None else None,
        "max_steps": max_steps,
    }
    if path:
        manifest["path"] = path
    if corpus_entry:
        manifest["corpus_entry"] = corpus_entry
    if argv:
        manifest["argv"] = list(argv)
    if stdin_b64:
        manifest["stdin_b64"] = stdin_b64
    if vfs_b64:
        manifest["vfs_b64"] = dict(vfs_b64)
    if gen:
        manifest["gen"] = {
            "version": gen.get("version"),
            "seed": gen.get("seed"),
            "config": dict(gen.get("config") or {}),
            "planted": gen.get("planted") or [],
        }
    if fault:
        manifest["fault"] = fault
    return manifest


def manifest_for_task(payload: dict, tool: str, options: dict | None,
                      fault=None) -> dict | None:
    """Build the manifest for one harness task payload (the pool calls
    this when recording a result).  Advisory: any failure — unreadable
    program file, unknown corpus entry — degrades to no manifest, never
    to a failed record."""
    try:
        source = None
        path = None
        corpus = payload.get("corpus_entry")
        filename = payload.get("filename")
        if corpus:
            from ..corpus.manifest import ENTRIES
            for entry in ENTRIES:
                if entry.name == corpus:
                    source = entry.source()
                    filename = entry.name + ".c"
                    break
        elif payload.get("source") is not None:
            source = payload["source"]
            filename = filename or "program.c"
        elif payload.get("path"):
            path = payload["path"]
            with open(path, "r", encoding="utf-8",
                      errors="replace") as handle:
                source = handle.read()
            filename = filename or path
        return build_manifest(
            tool=tool, options=options, source=source, path=path,
            filename=filename, corpus_entry=corpus,
            argv=payload.get("argv"),
            stdin_b64=payload.get("stdin_b64"),
            vfs_b64=payload.get("vfs_b64"),
            max_steps=payload.get("max_steps"),
            gen=payload.get("gen"), fault=fault)
    except Exception:
        return None


def _check_digest(source: str, manifest: dict, origin: str) -> None:
    want = manifest.get("source_sha256")
    if want is None:
        return
    have = source_digest(source)
    if have != want:
        raise ReplayMismatch(
            f"{origin} does not match the recorded program: "
            f"sha256 {have[:16]}… != recorded {want[:16]}…")


def resolve_source(manifest: dict,
                   source: str | None = None) -> tuple[str, str]:
    """Locate the exact recorded program: explicit source, the gen
    tuple, a corpus entry, or the recorded file path — digest-verified
    in every case."""
    filename = manifest.get("filename") or "program.c"
    if source is not None:
        _check_digest(source, manifest, "the supplied source")
        return source, filename
    gen = manifest.get("gen")
    if gen is not None and gen.get("seed") is not None:
        from dataclasses import fields
        from ..gen.generator import GEN_VERSION, GenConfig, generate
        version = gen.get("version")
        if version is not None and version != GEN_VERSION:
            raise ReplayMismatch(
                f"program was generated by repro.gen v{version}; this "
                f"engine has v{GEN_VERSION} — regeneration would not "
                "reproduce it")
        known = {f.name for f in fields(GenConfig)}
        config = GenConfig(**{key: value
                              for key, value in
                              (gen.get("config") or {}).items()
                              if key in known})
        program = generate(gen["seed"], config)
        _check_digest(program.source, manifest, "the regenerated program")
        return program.source, manifest.get("filename") or program.filename
    corpus = manifest.get("corpus_entry")
    if corpus:
        from ..corpus.manifest import ENTRIES
        for entry in ENTRIES:
            if entry.name == corpus:
                text = entry.source()
                _check_digest(text, manifest, f"corpus entry {corpus!r}")
                return text, entry.name + ".c"
        raise ReplayError(f"unknown corpus entry {corpus!r}")
    path = manifest.get("path")
    if path:
        try:
            with open(path, "r", encoding="utf-8",
                      errors="replace") as handle:
                text = handle.read()
        except OSError as error:
            raise ReplayError(
                f"recorded program path is unreadable ({error}); pass "
                "the source explicitly") from error
        _check_digest(text, manifest, path)
        return text, filename
    raise ReplayError(
        "manifest does not locate the program (no gen tuple, corpus "
        "entry, or path); pass the source explicitly")


def replay(manifest: dict, source: str | None = None, *,
           window: int = DEFAULT_WINDOW,
           max_steps: int | None = None,
           block_trace: bool = True):
    """Deterministically re-execute one manifest in-process.

    Execution is pinned to the reference interpreter tier — the
    recorder needs per-instruction nodes, and the tiers promise
    identical detection — while the manifest's resource quotas stay in
    force.  Returns ``(result, recorder, source, filename)``.
    """
    source, filename = resolve_source(manifest, source)
    tool = manifest.get("tool") or "safe-sulong"
    observer = None
    options = dict(manifest.get("options") or {})
    if tool == "safe-sulong":
        options["jit_threshold"] = None
        options["speculate"] = False
        options["elide_checks"] = False
        options["track_heap"] = True
        if block_trace:
            from .observer import Observer
            observer = Observer(enabled=True, block_trace=True,
                                block_window=window)
    from ..tools import make_runner
    runner = make_runner(tool, options, observer=observer)
    steps = max_steps or manifest.get("max_steps") or FALLBACK_MAX_STEPS
    stdin = base64.b64decode(manifest.get("stdin_b64") or "")
    vfs = {name: base64.b64decode(data)
           for name, data in (manifest.get("vfs_b64") or {}).items()}
    result = runner.run(source, argv=manifest.get("argv"),
                        stdin=stdin, vfs=vfs or None,
                        max_steps=steps, filename=filename)
    recorder = observer.recorder if observer is not None else None
    return result, recorder, source, filename


def explain(manifest: dict, source: str | None = None, *,
            budget: int = DEFAULT_BUDGET,
            window: int = DEFAULT_WINDOW,
            divergence: bool | None = None,
            max_steps: int | None = None,
            cache_dir: str | None = None) -> dict:
    """Replay one manifest and build the failure-slice packet.

    ``divergence=None`` means automatic: the tier-divergence pass runs
    for generated programs (where the well-definedness guarantee makes
    any disagreement an engine bug) and is skipped otherwise.
    """
    result, recorder, resolved, filename = replay(
        manifest, source, window=window, max_steps=max_steps)
    if divergence is None:
        divergence = bool(manifest.get("gen"))
    div = None
    if divergence and (manifest.get("tool") or "safe-sulong") \
            == "safe-sulong":
        div = divergence_slice(
            resolved, filename, recorder=recorder,
            max_steps=max_steps or manifest.get("max_steps")
            or FALLBACK_MAX_STEPS,
            cache_dir=cache_dir)
    return build_packet(manifest, result, recorder,
                        divergence=div, budget=budget)


def explain_record(record: dict, source: str | None = None,
                   **kwargs) -> dict:
    """Explain one harness/service bug record (a report JSONL line).
    The packet gains a ``record`` section comparing the replay's triage
    signatures against the recorded ones — the determinism check."""
    manifest = record.get("manifest")
    if not manifest:
        raise ReplayError(
            "record carries no replay manifest (recorded by an older "
            "engine?); re-run the hunt or pass the program directly")
    packet = explain(manifest, source, **kwargs)
    recorded = list(record.get("signatures") or [])
    replayed = list(packet["replay"].get("signatures") or [])
    packet["record"] = {
        "id": record.get("id"),
        "signatures": recorded,
        "matches": recorded == replayed,
    }
    return packet


# -- selftest ---------------------------------------------------------------


_SELFTEST_UAF = """\
#include <stdlib.h>
#include <stdio.h>
int main(void) {
    int *p = (int *)malloc(8 * sizeof(int));
    int i;
    for (i = 0; i < 8; i++) p[i] = i * 3;
    printf("sum=%d\\n", p[0] + p[7]);
    free(p);
    return p[2]; /* planted: use after free */
}
"""


def selftest(verbose: bool = True) -> tuple[bool, list[str]]:
    """Plant a bug, hunt it, explain it from the report line, and
    validate the packet against the schema and size budget — the
    ``repro explain --selftest`` acceptance path."""
    import os
    import shutil
    import tempfile

    problems: list[str] = []
    workdir = tempfile.mkdtemp(prefix="repro-explain-selftest-")

    def say(message: str) -> None:
        if verbose:
            print(message)

    try:
        program = os.path.join(workdir, "uaf.c")
        with open(program, "w", encoding="utf-8") as handle:
            handle.write(_SELFTEST_UAF)
        report_path = os.path.join(workdir, "report.jsonl")
        say("planting a use-after-free and hunting it...")
        from ..harness.campaign import run_campaign
        from ..harness.quotas import Quotas
        run_campaign([("uaf", program)], tool="safe-sulong", options={},
                     quotas=Quotas(max_steps=200_000), jobs=1,
                     timeout=60.0, report_path=report_path, fresh=True,
                     progress=None, collect_metrics=False)
        records = []
        with open(report_path, "r", encoding="utf-8") as handle:
            for line in handle:
                data = json.loads(line)
                if data.get("type") == "result":
                    records.append(data)
        bug_records = [r for r in records if r.get("triage") == "bug"]
        if not bug_records:
            problems.append("hunt did not report the planted bug")
            return False, problems
        record = bug_records[0]
        if not record.get("manifest"):
            problems.append("bug record carries no replay manifest")
            return False, problems
        say(f"explaining record {record.get('id')} from its report "
            "line...")
        packet = explain_record(record)
        schema_problems = validate_packet(packet)
        for problem in schema_problems:
            problems.append(f"schema: {problem}")
        size = len(canonical_packet_bytes(packet))
        if size > DEFAULT_BUDGET:
            problems.append(
                f"packet is {size} bytes, over the {DEFAULT_BUDGET}-byte "
                "budget")
        if not packet["record"]["matches"]:
            problems.append(
                "replay signatures do not match the record: "
                f"{packet['replay'].get('signatures')} vs "
                f"{record.get('signatures')}")
        if not packet["replay"]["window"]:
            problems.append("packet has an empty block-trace window")
        heap = packet["replay"].get("heap") or {}
        events = {event.get("event")
                  for event in heap.get("history") or ()}
        for needed in ("alloc", "free", "fault"):
            if needed not in events:
                problems.append(
                    f"faulting-object history is missing the "
                    f"{needed!r} event: {sorted(events)}")
        packet_again = explain_record(record)
        packet_again["budget"] = packet["budget"] = {}
        if canonical_packet_bytes(packet_again) != \
                canonical_packet_bytes(packet):
            problems.append("explaining the same record twice produced "
                            "different packets")
        say(f"packet: {size} bytes, "
            f"{len(packet['replay']['window'])} window entries, "
            f"signatures {packet['replay'].get('signatures')}")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    ok = not problems
    if verbose:
        for problem in problems:
            print(f"FAIL: {problem}")
        print("explain selftest: " + ("ok" if ok else "FAILED"))
    return ok, problems
