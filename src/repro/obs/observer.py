"""The Observer: counter + event collection for one engine run.

Counters are a plain ``defaultdict(int)`` — hot paths that were
specialized for an enabled observer increment dictionary slots
directly (``counters["check.load.full"] += 1``), which is the cheapest
thing Python can do short of not counting at all.  Events are
timestamped dicts (relative to observer creation) kept in a bounded
list and optionally mirrored to a JSONL trace sink.

Counter key vocabulary (the profile renderer groups on these):

* ``check.load.full`` / ``check.store.full`` — accesses that ran the
  full pointer check (NULL + kind dispatch) plus the object-level
  bounds/lifetime check;
* ``check.load.nonull`` / ``check.store.nonull`` — accesses whose NULL
  check was elided by proof (elide level 1) but still bounds-checked;
* ``check.load.elided`` / ``check.store.elided`` — fully proven
  accesses (elide level 2), no checks executed;
* ``check.gep`` / ``check.gep.elided`` — pointer-arithmetic dispatch
  executed vs. proven straight-line;
* ``instructions`` — IR instructions retired (block steps +
  terminator, counted per block iteration);
* ``calls`` — function activations (both tiers);
* ``intrinsic.calls`` — direct calls that resolved to a libc
  intrinsic rather than a defined function;
* ``icall.hit`` / ``icall.mega.hit`` / ``icall.miss`` — indirect-call
  inline-cache outcomes (2-entry polymorphic cache hit, megamorphic
  dict fallback hit, full resolution);
* ``events.dropped`` — events discarded because the bounded event
  buffer (``MAX_EVENTS``) was full; nonzero means the event list (and
  any downstream trace view) is truncated, which ``repro profile``
  surfaces;
* ``cache.hit`` / ``cache.miss`` / ``cache.reject`` / ``cache.store``
  — compilation-cache outcomes, plus per-artifact-class variants
  ``cache.<frontend|prepare|jit>.<outcome>``;
* ``service.*`` — bug-hunting-service health (``repro serve``):
  ``service.complete`` / ``service.bugs`` (tasks finished, tasks that
  found a bug), ``service.lease.expired`` (redeliveries after a dead
  or wedged holder), ``service.worker.restart`` (per-task worker
  respawns), ``service.restart`` / ``service.breaker.open``
  (batch-level supervision), ``service.shed`` (submissions rejected
  by admission control), ``service.degrade`` / ``service.promote``
  (service-wide rung moves), ``service.cache.pruned``, and
  ``service.fault.*`` (injected service faults taken).

Event kinds: ``jit-compile``, ``jit-bailout``, ``quota``,
``cache-hit`` / ``cache-miss`` / ``cache-reject`` (artifact class, key
prefix, and tier of each compilation-cache lookup), and
``rung-transition`` (emitted by the harness pool for per-task ladders
and by the service supervisor with ``scope="service"`` for
service-wide moves).  The service adds ``lease-expired``,
``service-restart``, and ``breaker-open``.
"""

from __future__ import annotations

import atexit
import json
import time
from collections import defaultdict

MAX_EVENTS = 1024


class Observer:
    """Collects counters and events for one (or several) engine runs.

    ``enabled=False`` constructs an inert observer: attaching it to an
    engine must leave the specialized fast paths untouched — that is
    the configuration ``BENCH_obs.json`` certifies at <3% overhead.
    """

    __slots__ = ("enabled", "counters", "events", "events_dropped",
                 "t0", "trace_path", "_trace_handle",
                 "functions", "heap", "steps",
                 "lines", "line_counters", "call_edges",
                 "icall_targets", "block_trace", "recorder")

    def __init__(self, enabled: bool = True,
                 trace_path: str | None = None,
                 lines: bool = False,
                 block_trace: bool = False,
                 block_window: int | None = None):
        self.enabled = enabled
        self.counters = defaultdict(int)
        self.events: list[dict] = []
        self.events_dropped = 0
        self.t0 = time.perf_counter()
        self.trace_path = trace_path
        # Opened eagerly so an event-free run still leaves a (valid,
        # empty) trace file rather than nothing.  The atexit hook makes
        # the sink crash-tolerant: events are flushed per write, and the
        # handle is closed even if the process dies mid-run.
        self._trace_handle = open(trace_path, "a", encoding="utf-8") \
            if (trace_path and enabled) else None
        if self._trace_handle is not None:
            atexit.register(self.close)
        self.functions: list[dict] = []
        self.heap: dict = {}
        self.steps = 0
        # Source-line attribution (``repro profile --lines``): opt-in —
        # it wraps every located instruction with a list increment and
        # pins execution to the interpreter, so it never rides along on
        # the default profiling path.  line_counters maps
        # (filename, line) -> [instructions, checks, allocations];
        # call_edges maps (caller, callee) -> count.
        self.lines = lines and enabled
        self.line_counters = defaultdict(lambda: [0, 0, 0])
        self.call_edges = defaultdict(int)
        # Indirect-call dispatch: id(call site) -> target function
        # names observed at runtime.  Recorded in the inline cache's
        # *miss* path only (once per distinct (site, target) pair), so
        # the hot dispatch path is untouched.  The static call graph's
        # points-to resolution must cover every entry — the
        # differential test in tests/analysis pins that.
        self.icall_targets = defaultdict(set)
        # Basic-block recording (``repro explain``): like ``lines``,
        # opt-in and interpreter-pinning.  A disabled observer carries
        # no recorder, so the engine specializes the hook away.
        self.block_trace = block_trace and enabled
        if self.block_trace:
            from .slices import DEFAULT_WINDOW, BlockRecorder
            self.recorder = BlockRecorder(
                window=block_window or DEFAULT_WINDOW)
        else:
            self.recorder = None

    # -- events -------------------------------------------------------------------

    def emit(self, event_kind: str, **fields) -> None:
        # First parameter is deliberately not ``kind``: event payloads
        # carry a ``kind=`` field of their own (e.g. quota events).
        if not self.enabled:
            return
        event = {"event": event_kind,
                 "t": round(time.perf_counter() - self.t0, 6)}
        event.update(fields)
        if len(self.events) < MAX_EVENTS:
            self.events.append(event)
        else:
            self.events_dropped += 1
            self.counters["events.dropped"] += 1
        if self._trace_handle is not None:
            json.dump(event, self._trace_handle)
            self._trace_handle.write("\n")
            self._trace_handle.flush()

    def count(self, key: str, n: int = 1) -> None:
        if self.enabled:
            self.counters[key] += n

    def close(self) -> None:
        if self._trace_handle is not None:
            self._trace_handle.close()
            self._trace_handle = None
            try:
                atexit.unregister(self.close)
            except Exception:
                pass

    # -- end-of-run capture -------------------------------------------------------

    def record_run(self, runtime) -> None:
        """Capture per-function and heap state at the end of a run (the
        engine calls this from its boundary, on every exit path).  One
        observer may watch several runs — e.g. the whole §4.1 matrix —
        so function rows merge by name and heap figures accumulate
        (peak takes the max)."""
        if not self.enabled:
            return
        self.steps += runtime.steps
        merged = {entry["name"]: entry for entry in self.functions}
        for prepared in runtime.prepared.values():
            if prepared.call_count == 0:
                continue
            entry = merged.get(prepared.name)
            if entry is None:
                merged[prepared.name] = {
                    "name": prepared.name,
                    "calls": prepared.call_count,
                    "instructions": prepared.obs_instructions,
                    "compiled": prepared.compiled is not None,
                }
            else:
                entry["calls"] += prepared.call_count
                entry["instructions"] += prepared.obs_instructions
                entry["compiled"] = (entry["compiled"]
                                     or prepared.compiled is not None)
        self.functions = sorted(
            merged.values(), key=lambda f: (-f["instructions"], f["name"]))
        meter = runtime.heap_meter
        if meter is not None:
            heap = self.heap
            self.heap = {
                "allocs": heap.get("allocs", 0) + meter.alloc_count,
                "frees": heap.get("frees", 0) + meter.free_count,
                "live_bytes": heap.get("live_bytes", 0) + meter.live,
                "peak_bytes": max(heap.get("peak_bytes", 0), meter.peak),
            }

    # -- export -------------------------------------------------------------------

    def jit_summary(self) -> dict:
        compiled = bailouts = 0
        compile_s = 0.0
        code_bytes = 0
        for event in self.events:
            if event["event"] == "jit-compile":
                compiled += 1
                compile_s += event.get("compile_ms", 0.0) / 1000.0
                code_bytes += event.get("code_bytes", 0)
            elif event["event"] == "jit-bailout":
                bailouts += 1
        return {"compiled": compiled, "bailouts": bailouts,
                "compile_s": round(compile_s, 6),
                "code_bytes": code_bytes}

    def snapshot(self) -> dict:
        """JSON-safe view of everything collected; this is what
        ``--metrics`` writes and what workers ship back to the pool."""
        data = {
            "enabled": self.enabled,
            "counters": dict(sorted(self.counters.items())),
            "steps": self.steps,
            "heap": dict(self.heap),
            "jit": self.jit_summary(),
            "functions": list(self.functions),
            "events": list(self.events),
            "events_dropped": self.events_dropped,
        }
        if self.recorder is not None:
            data["block_trace"] = {
                "blocks_entered": self.recorder.steps,
                "unique_blocks": len(self.recorder.visits),
            }
        if self.icall_targets:
            data["icall_targets"] = [
                [str(site), sorted(targets)]
                for site, targets in sorted(self.icall_targets.items())]
        if self.lines:
            data["lines"] = [
                [filename, line, row[0], row[1], row[2]]
                for (filename, line), row
                in sorted(self.line_counters.items())]
            data["call_edges"] = [
                [caller, callee, count]
                for (caller, callee), count
                in sorted(self.call_edges.items())]
        return data
