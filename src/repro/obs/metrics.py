"""Cross-run metrics aggregation (the `repro hunt` report surface).

Workers serialize ``Observer.snapshot()`` into their result payload;
the campaign summary folds every per-program snapshot into one
campaign-wide view: total checks executed/elided, JIT activity, and
heap pressure.  Pure dict math — no engine imports — so the harness
can use it without loading the interpreter.
"""

from __future__ import annotations

_CHECKED_KEYS = ("check.load.full", "check.store.full")
_BOUNDS_KEYS = ("check.load.full", "check.store.full",
                "check.load.nonull", "check.store.nonull")
_ELIDED_NULL_KEYS = ("check.load.nonull", "check.store.nonull",
                     "check.load.elided", "check.store.elided")
_ELIDED_FULL_KEYS = ("check.load.elided", "check.store.elided")


def check_breakdown(counters: dict) -> dict:
    """Fold the raw per-site counter keys into the check-overhead view
    used by ``repro profile`` and the campaign summary."""
    get = counters.get

    def total(keys):
        return sum(get(key, 0) for key in keys)

    return {
        "null_checks": total(_CHECKED_KEYS) + get("check.gep", 0),
        "bounds_checks": total(_BOUNDS_KEYS),
        "elided_null": total(_ELIDED_NULL_KEYS)
                       + get("check.gep.elided", 0),
        "elided_bounds": total(_ELIDED_FULL_KEYS),
    }


def aggregate_metrics(snapshots: list[dict]) -> dict | None:
    """Fold per-program observer snapshots into campaign totals.

    Returns ``None`` when no snapshot carried metrics (a campaign run
    with collection off), so summaries can omit the section entirely.
    """
    snapshots = [snap for snap in snapshots
                 if snap and snap.get("enabled")]
    if not snapshots:
        return None
    counters: dict[str, int] = {}
    heap = {"allocs": 0, "frees": 0, "peak_bytes_max": 0,
            "live_bytes": 0}
    jit = {"compiled": 0, "bailouts": 0, "compile_s": 0.0,
           "code_bytes": 0}
    steps = 0
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        steps += snap.get("steps", 0)
        snap_heap = snap.get("heap") or {}
        heap["allocs"] += snap_heap.get("allocs", 0)
        heap["frees"] += snap_heap.get("frees", 0)
        heap["live_bytes"] += snap_heap.get("live_bytes", 0)
        heap["peak_bytes_max"] = max(heap["peak_bytes_max"],
                                     snap_heap.get("peak_bytes", 0))
        snap_jit = snap.get("jit") or {}
        jit["compiled"] += snap_jit.get("compiled", 0)
        jit["bailouts"] += snap_jit.get("bailouts", 0)
        jit["compile_s"] += snap_jit.get("compile_s", 0.0)
        jit["code_bytes"] += snap_jit.get("code_bytes", 0)
    jit["compile_s"] = round(jit["compile_s"], 6)
    return {
        "programs_with_metrics": len(snapshots),
        "checks": check_breakdown(counters),
        "instructions": counters.get("instructions", 0),
        "calls": counters.get("calls", 0),
        "intrinsic_calls": counters.get("intrinsic.calls", 0),
        "steps": steps,
        "heap": heap,
        "jit": jit,
        "cache": cache_breakdown(counters),
        "counters": dict(sorted(counters.items())),
    }


def service_breakdown(counters: dict) -> dict:
    """Service-health totals from the supervisor's counters (the
    ``GET /healthz`` body carries the raw keys; this is the folded
    view the bench harness and dashboards consume)."""
    get = counters.get
    faults = sum(value for key, value in counters.items()
                 if key.startswith("service.fault."))
    return {
        "completed": get("service.complete", 0),
        "bugs": get("service.bugs", 0),
        "lease_expiries": get("service.lease.expired", 0),
        "worker_restarts": get("service.worker.restart", 0),
        "supervisor_restarts": get("service.restart", 0),
        "breaker_opens": get("service.breaker.open", 0),
        "shed": get("service.shed", 0),
        "degrades": get("service.degrade", 0),
        "promotes": get("service.promote", 0),
        "cache_pruned": get("service.cache.pruned", 0),
        "faults_injected": faults,
    }


def cache_breakdown(counters: dict) -> dict:
    """Compilation-cache totals from the raw counters (all zero when no
    cache was attached)."""
    get = counters.get
    return {
        "hits": get("cache.hit", 0),
        "misses": get("cache.miss", 0),
        "rejects": get("cache.reject", 0),
        "stores": get("cache.store", 0),
    }
