"""ASan-style rendering of bug reports and managed-heap state.

The managed execution model records provenance *exactly* — the call
stack is the real activation chain the fault unwound through, and the
allocation/free sites were stamped on the object when the events
happened — so the renderer never has to guess from shadow memory the
way a native sanitizer does.  The output deliberately mirrors
AddressSanitizer's shape (ERROR banner, ``#N`` stack frames,
"allocated by"/"freed by" sections) so people and scripts that read
ASan reports can read these.
"""

from __future__ import annotations

from ..core.errors import BugReport


def render_bug_report(bug: BugReport, detector: str | None = None) -> str:
    """Render one BugReport as a multi-line ASan-style block."""
    name = detector or bug.detector or "safe-sulong"
    lines: list[str] = []
    head = [f"== {name}: ERROR: {bug.kind}"]
    if bug.access:
        head.append(bug.access)
    if bug.direction:
        head.append(f"({bug.direction})")
    if bug.memory_kind:
        head.append(f"of {bug.memory_kind} object")
    if bug.location:
        head.append(f"at {bug.location}")
    lines.append(" ".join(head))
    lines.append(f"  {bug.message}")
    stack = list(bug.stack or [])
    if stack:
        for index, (function, loc) in enumerate(stack):
            where = str(loc) if loc is not None else "<unknown>"
            lines.append(f"    #{index} {function} {where}")
    elif bug.location:
        lines.append(f"    #0 <unattributed> {bug.location}")
    described = bug.object_label or bug.alloc_site or bug.free_site \
        or bug.object_size is not None
    if described:
        label = bug.object_label or "<object>"
        size = f", {bug.object_size} bytes" if bug.object_size is not None \
            else ""
        lines.append(f"  object: {label}{size}")
        if bug.alloc_site is not None:
            lines.append(f"    allocated at {bug.alloc_site}")
        if bug.free_site is not None:
            lines.append(f"    freed at {bug.free_site}")
    return "\n".join(lines)


def render_heap_dump(runtime, limit: int = 16) -> str:
    """A bounded snapshot of the managed heap (``--heap-dump``).  Needs
    a runtime created with ``track_heap`` on; otherwise reports that
    tracking was off rather than pretending the heap is empty."""
    objects = getattr(runtime, "heap_objects", None) or []
    if not getattr(runtime, "track_heap", False):
        return "-- heap dump: unavailable (heap tracking off) --"
    lines = [f"-- heap dump: {len(objects)} tracked allocation(s) --"]
    live = freed = live_bytes = 0
    shown = 0
    for obj in objects:
        is_freed = obj.is_freed() if hasattr(obj, "is_freed") else False
        size = getattr(obj, "size", None)
        if size is None:
            size = getattr(obj, "byte_size", 0)
        if is_freed:
            freed += 1
        else:
            live += 1
            live_bytes += size
        if shown < limit:
            shown += 1
            state = "freed" if is_freed else "live"
            site = getattr(obj, "alloc_site", None)
            at = f"  allocated at {site}" if site is not None else ""
            free_at = getattr(obj, "free_site", None)
            if is_freed and free_at is not None:
                at += f"  freed at {free_at}"
            lines.append(f"  [{state:<5}] {obj.label:<24} "
                         f"{size:>8} B{at}")
    if len(objects) > limit:
        lines.append(f"  ... {len(objects) - limit} more")
    lines.append(f"  totals: {live} live ({live_bytes} B), {freed} freed")
    return "\n".join(lines)


def provenance_signature(kind: str, location, alloc_site) -> str:
    """Triage signature: (kind, fault site, alloc site).  Two faults at
    the same line on objects from different allocation sites are
    distinct bugs; the same fault found via different paths is one."""
    signature = f"{kind or '?'}@{location or '?'}"
    if alloc_site:
        signature += f"#alloc@{alloc_site}"
    return signature
