"""Source-line attribution surfaces: annotated source and flamegraphs.

Input is the observer snapshot produced by ``Observer(lines=True)``:
``snapshot["lines"]`` rows are ``[filename, line, instructions,
checks, allocations]`` keyed through the IR's retained source
locations, and ``snapshot["call_edges"]`` rows are ``[caller, callee,
count]``.  Line mode pins execution to the interpreter (the JIT's
generated code carries no per-line hooks), so the numbers are exact
retired-instruction counts, not samples.
"""

from __future__ import annotations

MAX_SOURCE_LINES = 400
HOT_LINES = 10


def _line_rows(snapshot: dict) -> list[list]:
    return snapshot.get("lines") or []


def render_lines(snapshot: dict, source: str, filename: str,
                 program: str = "") -> str:
    """Annotated-source hot view for ``repro profile --lines``."""
    rows = _line_rows(snapshot)
    per_line: dict[int, list] = {}
    other_files: dict[str, int] = {}
    for row_file, line, instr, checks, allocs in rows:
        if row_file == filename:
            per_line[line] = [instr, checks, allocs]
        else:
            other_files[row_file] = other_files.get(row_file, 0) + instr
    out: list[str] = []
    title = program or filename
    out.append(f"== line profile: {title} ==")
    out.append(f"  {'instr':>10} {'checks':>8} {'allocs':>7} | source")
    src_lines = source.splitlines()
    for number, text in enumerate(src_lines[:MAX_SOURCE_LINES], start=1):
        row = per_line.get(number)
        if row:
            out.append(f"  {row[0]:>10,} {row[1]:>8,} {row[2]:>7,} "
                       f"|{number:>4}  {text}")
        else:
            out.append(f"  {'':>10} {'':>8} {'':>7} |{number:>4}  {text}")
    if len(src_lines) > MAX_SOURCE_LINES:
        out.append(f"  ... {len(src_lines) - MAX_SOURCE_LINES} "
                   f"source lines not shown")
    hot = sorted(((counts[0], line) for line, counts in per_line.items()),
                 reverse=True)[:HOT_LINES]
    if hot:
        out.append("")
        out.append("-- hottest lines --")
        for instr, line in hot:
            if not instr:
                continue
            text = src_lines[line - 1].strip() if line <= len(src_lines) \
                else ""
            out.append(f"  {filename}:{line:<5} {instr:>10,}  {text}")
    if other_files:
        out.append("")
        out.append("-- other files (library code) --")
        ranked = sorted(other_files.items(), key=lambda kv: -kv[1])
        for name, instr in ranked[:HOT_LINES]:
            out.append(f"  {name:<40} {instr:>10,}")
    return "\n".join(out)


def collapsed_stacks(snapshot: dict) -> list[str]:
    """Collapsed-stack lines (``caller;..;function count``) in the
    format Brendan Gregg's ``flamegraph.pl`` and speedscope consume.

    The observer records call *edges*, not full stacks, so each
    function's self cost is attributed to its most-frequent caller
    chain (cycles cut at first repeat) — the standard approximation for
    edge-profile flame graphs.
    """
    self_cost = {entry["name"]: entry.get("instructions", 0)
                 for entry in snapshot.get("functions", [])}
    best_caller: dict[str, tuple[str, int]] = {}
    for caller, callee, count in snapshot.get("call_edges") or []:
        current = best_caller.get(callee)
        if current is None or count > current[1]:
            best_caller[callee] = (caller, count)
    lines = []
    for name, cost in self_cost.items():
        if not cost:
            continue
        chain = [name]
        seen = {name}
        cursor = name
        while cursor in best_caller:
            parent = best_caller[cursor][0]
            if parent in seen:
                break
            chain.append(parent)
            seen.add(parent)
            cursor = parent
        lines.append((";".join(reversed(chain)), cost))
    return [f"{stack} {cost}" for stack, cost in sorted(lines)]


def write_flamegraph(path: str, snapshot: dict) -> int:
    """Write the collapsed stacks to ``path``; returns the line count."""
    stacks = collapsed_stacks(snapshot)
    with open(path, "w", encoding="utf-8") as handle:
        for line in stacks:
            handle.write(line + "\n")
    return len(stacks)
