"""Failure slices: bounded block-level recording and the explain packet.

``repro explain`` re-executes a failing program under the interpreter
with a :class:`BlockRecorder` attached and condenses what it saw into a
single structured JSON packet — the executed CFG path, a sliding window
of basic-block traces with register values near the fault, the faulting
object's allocation/free history, and (for generated programs) the
first block at which the execution tiers diverge.  The packet has a
hard size budget (``DEFAULT_BUDGET``, 64 KiB) so it fits an LLM context
window; trimming removes the data farthest from the fault first and
records every cut in ``packet["budget"]["trims"]``.

The recorder is an interpreter hook: :meth:`BlockRecorder.record` runs
once per basic-block entry (see ``Runtime._run_blocks_recording``) and
does only O(1) work — a ring-buffer append of the entry-state register
file, a visit-count bump, and an output watermark when stdout grew.
Like ``--lines`` mode, an attached recorder pins execution to the
interpreter tier; a disabled observer specializes the hook away
entirely, which ``BENCH_explain.json`` certifies at <3% overhead.

Packet schema (``EXPLAIN_SCHEMA`` is the machine-readable version)::

    {
      "explain_version": 1,
      "manifest":  {...},            # the replay manifest (obs/replay.py)
      "replay": {                    # deterministic across hosts + tiers
        "outcome":    {status, detected, crashed, ...},
        "bugs":       [{kind, location, ..., signature, provenance}],
        "signatures": [...],         # triage signatures, deduplicated
        "cfg_path":   {blocks_entered, unique_blocks, visits, ...},
        "window":     [{step, function, block, line, stdout_len, regs}],
        "heap":       {object, history, allocations, frees} | null,
        "divergence": {agree, outcomes, divergent_tiers, kind, block,
                       common_stdout_prefix} | null,
        "dropped":    {events, visits_capped, out_marks_capped}
      },
      "record":  {id, signatures, matches} | absent,   # vs a bug record
      "budget":  {"limit": N, "size": N, "trims": [...]}
    }

The ``replay`` section deliberately contains no timestamps, absolute
paths, host details, or engine-version strings: replaying the same
manifest anywhere yields byte-identical ``replay`` bytes (the golden
test pins this), which is what makes a slice cheap to verify.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from collections import deque

EXPLAIN_VERSION = 1
DEFAULT_BUDGET = 64 * 1024
DEFAULT_WINDOW = 32

# Per-block-entry capture caps: registers copied per ring entry, CFG
# visit-table keys, and output watermarks.  All are recorder-side
# bounds — the packet trims further.
REG_CAP = 64
MAX_VISITED = 4096
MAX_OUT_MARKS = 4096


class BlockRecorder:
    """Bounded recorder of interpreter basic-block entries.

    ``record`` is the hot path: one call per block entry, doing a ring
    append (entry snapshot), a visit-count increment, and an output
    watermark append when stdout grew since the last entry.  Entries
    keep live references (prepared function, a register-file slice);
    they are rendered JSON-safe only at packet-build time.
    """

    __slots__ = ("window", "steps", "ring", "visits", "visits_capped",
                 "out_marks", "out_marks_capped", "last_out", "prev")

    def __init__(self, window: int = DEFAULT_WINDOW):
        self.window = max(1, int(window))
        self.steps = 0
        # (step, prepared, block_index, regs_snapshot, stdout_len)
        self.ring: deque = deque(maxlen=self.window)
        # (prepared, block_index) -> entry count
        self.visits: dict = {}
        self.visits_capped = False
        # ((step, prepared, block_index) | None, stdout_len): the block
        # whose execution first brought stdout to that length.  stdout
        # only grows, so out_marks is sorted by length — the divergence
        # bisection binary-searches it.
        self.out_marks: list = []
        self.out_marks_capped = False
        self.last_out = 0
        self.prev = None

    def record(self, prepared, index: int, frame, out_len: int) -> None:
        step = self.steps
        self.steps = step + 1
        self.ring.append(
            (step, prepared, index, frame.regs[:REG_CAP], out_len))
        key = (prepared, index)
        visits = self.visits
        count = visits.get(key)
        if count is not None:
            visits[key] = count + 1
        elif len(visits) < MAX_VISITED:
            visits[key] = 1
        else:
            self.visits_capped = True
        if out_len != self.last_out:
            self.last_out = out_len
            if len(self.out_marks) < MAX_OUT_MARKS:
                # Attribute the write to the previously-entered block:
                # the bytes appeared during its steps, before this
                # block was entered.
                self.out_marks.append((self.prev, out_len))
            else:
                self.out_marks_capped = True
        self.prev = (step, prepared, index)


# -- rendering recorder state into JSON-safe structures ---------------------


def _block_line_map(prepared) -> dict:
    """block label -> source location string of its first located
    instruction (prepared blocks mirror the IR function's block list)."""
    mapping: dict = {}
    function = getattr(prepared, "function", None)
    for block in getattr(function, "blocks", None) or ():
        line = None
        for instruction in getattr(block, "instructions", None) or ():
            loc = getattr(instruction, "loc", None)
            if loc is not None and getattr(loc, "line", 0):
                line = str(loc)
                break
        mapping[getattr(block, "label", "?")] = line
    return mapping


def _stable_label(label):
    """Strip the front end's process-wide uniquifying counter from
    private-global names (``.str.27``, ``name.static.3``): the counter
    keeps running between compiles in one process, so replayed packets
    would differ run-to-run.  C identifiers cannot contain dots, so a
    dotted name with a numeric tail is always compiler-generated."""
    if isinstance(label, str) and "." in label:
        base, _, tail = label.rpartition(".")
        if base and tail.isdigit():
            return base
    return label


def _render_value(value):
    """One register value as a JSON-safe, deterministic rendering."""
    if value is None:
        return None
    kind = type(value)
    if kind is bool:
        return value
    if kind is int:
        # JSON numbers round-trip reliably only in a bounded range;
        # render wider integers (managed wraparound keeps most in u64)
        # as strings.
        if -(2 ** 63) <= value < 2 ** 64:
            return value
        return str(value)
    if kind is float:
        if value != value or value in (float("inf"), float("-inf")):
            return str(value)
        return value
    if kind is str:
        return value[:64]
    from ..core import objects as mo
    if isinstance(value, mo.Address):
        pointee = value.pointee
        if pointee is None:
            return {"ptr": None, "offset": value.offset}
        try:
            size = pointee.byte_size
        except Exception:
            size = None
        try:
            freed = bool(pointee.is_freed())
        except Exception:
            freed = False
        return {"ptr": {"object": _stable_label(
                            getattr(pointee, "label", "object")),
                        "storage": getattr(pointee, "storage", "?"),
                        "size": size, "freed": freed},
                "offset": value.offset}
    name = getattr(value, "name", None)
    if name is not None and (hasattr(value, "ftype")
                             or hasattr(value, "function")):
        return {"fn": _stable_label(name)}
    label = getattr(value, "label", None)
    if label is not None:
        return {"obj": _stable_label(label)}
    return {"repr": type(value).__name__}


def _render_window(recorder: BlockRecorder) -> list:
    lines_cache: dict = {}
    window = []
    for step, prepared, index, regs, out_len in recorder.ring:
        lines = lines_cache.get(id(prepared))
        if lines is None:
            lines = lines_cache[id(prepared)] = _block_line_map(prepared)
        label = prepared.blocks[index].label
        rendered = [[i, _render_value(value)]
                    for i, value in enumerate(regs) if value is not None]
        window.append({
            "step": step,
            "function": _stable_label(prepared.name),
            "block": label,
            "line": lines.get(label),
            "stdout_len": out_len,
            "regs": rendered,
        })
    return window


def _render_cfg_path(recorder: BlockRecorder) -> dict:
    rows = sorted(
        ((_stable_label(prepared.name),
          prepared.blocks[index].label, count)
         for (prepared, index), count in recorder.visits.items()),
        key=lambda row: (-row[2], row[0], row[1]))
    return {
        "blocks_entered": recorder.steps,
        "unique_blocks": len(recorder.visits),
        "visits": [list(row) for row in rows],
        "visits_capped": recorder.visits_capped,
        "visits_truncated": False,
    }


def _mark_block(mark_prev) -> dict | None:
    if mark_prev is None:
        return None
    step, prepared, index = mark_prev
    label = prepared.blocks[index].label
    return {"function": _stable_label(prepared.name), "block": label,
            "step": step, "line": _block_line_map(prepared).get(label)}


def _render_heap(runtime, bugs) -> dict | None:
    """The faulting object's allocation/free history plus bounded heap
    totals.  Needs a runtime with heap tracking (the replay forces it)."""
    if runtime is None:
        return None
    objects = getattr(runtime, "heap_objects", None) or []
    live = freed = 0
    rendered_objects = []
    fault_alloc = fault_free = fault_label = None
    if bugs:
        fault_alloc = getattr(bugs[0], "alloc_site", None)
        fault_alloc = str(fault_alloc) if fault_alloc else None
        fault_free = getattr(bugs[0], "free_site", None)
        fault_free = str(fault_free) if fault_free else None
        fault_label = _stable_label(getattr(bugs[0], "object_label",
                                            None))
    faulting = None
    for ordinal, obj in enumerate(objects):
        try:
            is_freed = bool(obj.is_freed())
        except Exception:
            is_freed = False
        if is_freed:
            freed += 1
        else:
            live += 1
        alloc_site = getattr(obj, "alloc_site", None)
        free_site = getattr(obj, "free_site", None)
        try:
            size = obj.byte_size
        except Exception:
            size = None
        row = {
            "ordinal": ordinal,
            "label": _stable_label(getattr(obj, "label", "object")),
            "storage": getattr(obj, "storage", "?"),
            "size": size,
            "freed": is_freed,
            "alloc_site": str(alloc_site) if alloc_site else None,
            "free_site": str(free_site) if free_site else None,
        }
        rendered_objects.append(row)
        if faulting is None and fault_alloc is not None \
                and row["alloc_site"] == fault_alloc \
                and (fault_label is None or row["label"] == fault_label):
            faulting = row
    history = []
    if faulting is not None:
        # A freed object reports byte_size 0; recover the allocated
        # size from the bug stamp or the "malloc(N)" label.
        size = faulting["size"]
        if not size and bugs:
            size = getattr(bugs[0], "object_size", None) or size
        if not size:
            label = faulting["label"] or ""
            if label.endswith(")") and "(" in label:
                digits = label[label.rfind("(") + 1:-1]
                if digits.isdigit():
                    size = int(digits)
        history.append({"event": "alloc",
                        "site": faulting["alloc_site"],
                        "size": size,
                        "ordinal": faulting["ordinal"]})
        if faulting["free_site"] or faulting["freed"]:
            history.append({"event": "free",
                            "site": faulting["free_site"]})
    elif fault_alloc is not None:
        # The object predates tracking or was reclaimed; reconstruct
        # the history from the bug report's own provenance stamps.
        history.append({"event": "alloc", "site": fault_alloc,
                        "size": getattr(bugs[0], "object_size", None),
                        "ordinal": None})
        if fault_free:
            history.append({"event": "free", "site": fault_free})
    if bugs and history:
        loc = getattr(bugs[0], "location", None)
        history.append({"event": "fault",
                        "kind": getattr(bugs[0], "kind", "?"),
                        "site": str(loc) if loc else None})
    return {
        "tracked": len(objects),
        "live": live,
        "freed": freed,
        "object": faulting,
        "history": history,
        "objects": rendered_objects[:8],
    }


def _render_bugs(result) -> list:
    from ..harness.triage import bug_signature
    from .provenance import render_bug_report
    rendered = []
    for bug in result.bugs:
        location = getattr(bug, "location", None)
        alloc_site = getattr(bug, "alloc_site", None)
        free_site = getattr(bug, "free_site", None)
        entry = {
            "kind": bug.kind,
            "message": bug.message,
            "location": str(location) if location else None,
            "access": bug.access,
            "memory_kind": bug.memory_kind,
            "direction": bug.direction,
            "alloc_site": str(alloc_site) if alloc_site else None,
            "free_site": str(free_site) if free_site else None,
            "stack": [[function, str(loc) if loc else None]
                      for function, loc in (bug.stack or [])],
            "object_label": bug.object_label,
            "object_size": bug.object_size,
        }
        entry["signature"] = bug_signature(entry)
        entry["provenance"] = render_bug_report(
            bug, detector=result.detector)
        rendered.append(entry)
    return rendered


def _render_outcome(result) -> dict:
    stdout = bytes(result.stdout)
    runtime = getattr(result, "runtime", None)
    return {
        "status": result.status,
        "detected": bool(result.bugs)
        or (result.crashed and "SIG" in (result.crash_message or "")),
        "crashed": result.crashed,
        "crash_message": result.crash_message or None,
        "limit_exceeded": bool(result.limit_exceeded),
        "timed_out": bool(getattr(result, "timed_out", False)),
        "internal_error": getattr(result, "internal_error", None),
        "steps": getattr(runtime, "steps", None),
        "stdout_len": len(stdout),
        "stdout_sha256": hashlib.sha256(stdout).hexdigest(),
        "stdout_tail": stdout[-256:].decode("utf-8", "backslashreplace"),
    }


# -- tier divergence --------------------------------------------------------


DIVERGENCE_TIERS = ("interp", "jit", "elide", "speculate")


def bisect_output_divergence(out_marks: list, prefix_len: int):
    """Index of the first output watermark past the common stdout
    prefix, or None.  ``out_marks`` is sorted by length (stdout only
    grows), so this is a binary search — the mark's block is the one
    that wrote the first divergent byte."""
    if not out_marks:
        return None
    lengths = [mark[1] for mark in out_marks]
    index = bisect_right(lengths, prefix_len)
    if index >= len(out_marks):
        return None
    return index


def _common_prefix_len(a: bytes, b: bytes) -> int:
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return i
    return limit


def divergence_slice(source: str, filename: str, *,
                     recorder: BlockRecorder | None = None,
                     max_steps: int | None = 5_000_000,
                     cache_dir: str | None = None) -> dict:
    """Run the managed tier matrix (the five-way oracle's drivers plus
    the speculative tier) and, on disagreement, bisect the interpreter
    replay's output watermarks to the first divergent block."""
    from ..gen.oracle import TierOutcome, managed_tiers, run_tier
    runners = managed_tiers(cache_dir)
    outcomes: dict[str, TierOutcome] = {}
    for name in DIVERGENCE_TIERS:
        try:
            outcomes[name] = run_tier(runners[name], source, filename,
                                      max_steps=max_steps)
        except Exception as error:  # a tier crashing IS the finding
            outcomes[name] = TierOutcome(
                tier=name, status=None, stdout=b"", detected=False,
                signatures=(), crashed=False, crash_message=None,
                internal_error=f"{type(error).__name__}: {error}",
                limit_exceeded=False, timed_out=False)
    table = {
        name: {
            "status": outcome.status,
            "detected": outcome.detected,
            "stdout_len": len(outcome.stdout),
            "stdout_sha256": hashlib.sha256(outcome.stdout).hexdigest(),
            "signatures": list(outcome.signatures),
            "crashed": outcome.crashed,
            "limit_exceeded": outcome.limit_exceeded,
            "timed_out": outcome.timed_out,
            "internal_error": outcome.internal_error,
        }
        for name, outcome in outcomes.items()
    }
    reference = outcomes["interp"]
    divergent = [name for name in DIVERGENCE_TIERS[1:]
                 if outcomes[name].comparable() != reference.comparable()
                 or outcomes[name].internal_error]
    slice_data = {
        "checked_tiers": list(DIVERGENCE_TIERS),
        "agree": not divergent,
        "divergent_tiers": divergent,
        "outcomes": table,
        "kind": None,
        "common_stdout_prefix": None,
        "block": None,
    }
    if not divergent:
        return slice_data
    first = outcomes[divergent[0]]
    prefix = _common_prefix_len(reference.stdout, first.stdout)
    slice_data["common_stdout_prefix"] = prefix
    if reference.stdout != first.stdout:
        slice_data["kind"] = "output"
        if recorder is not None:
            index = bisect_output_divergence(recorder.out_marks, prefix)
            if index is not None:
                slice_data["block"] = _mark_block(
                    recorder.out_marks[index][0])
    else:
        # Same output, different status/detection: the divergence is at
        # (or after) the last block the reference replay entered.
        slice_data["kind"] = "outcome"
        if recorder is not None and recorder.ring:
            step, prepared, bindex, _, _ = recorder.ring[-1]
            slice_data["block"] = _mark_block((step, prepared, bindex))
    return slice_data


# -- packet assembly --------------------------------------------------------


def canonical_packet_bytes(packet: dict) -> bytes:
    """The byte form the size budget and the golden test measure."""
    return json.dumps(packet, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def build_packet(manifest: dict, result, recorder: BlockRecorder | None,
                 *, divergence: dict | None = None,
                 budget: int = DEFAULT_BUDGET) -> dict:
    runtime = getattr(result, "runtime", None)
    replay = {
        "outcome": _render_outcome(result),
        "bugs": _render_bugs(result),
        "cfg_path": (_render_cfg_path(recorder)
                     if recorder is not None else None),
        "window": (_render_window(recorder)
                   if recorder is not None else []),
        "heap": _render_heap(runtime, result.bugs),
        "divergence": divergence,
        "dropped": {
            "visits_capped": bool(recorder and recorder.visits_capped),
            "out_marks_capped": bool(recorder
                                     and recorder.out_marks_capped),
        },
    }
    seen: list[str] = []
    for bug in replay["bugs"]:
        if bug["signature"] not in seen:
            seen.append(bug["signature"])
    replay["signatures"] = seen
    packet = {
        "explain_version": EXPLAIN_VERSION,
        "manifest": manifest,
        "replay": replay,
        "budget": {"limit": budget, "size": 0, "trims": []},
    }
    return trim_packet(packet, budget)


def trim_packet(packet: dict, budget: int) -> dict:
    """Enforce the size budget, cutting farthest-from-fault data first.
    Every stage applied is recorded in ``budget.trims``."""
    replay = packet["replay"]
    trims = packet["budget"]["trims"]

    def size() -> int:
        return len(canonical_packet_bytes(packet))

    def cap_visits(limit):
        cfg = replay.get("cfg_path")
        if cfg and len(cfg["visits"]) > limit:
            cfg["visits"] = cfg["visits"][:limit]
            cfg["visits_truncated"] = True
            return True
        return False

    def cap_regs(limit):
        changed = False
        for entry in replay["window"]:
            if len(entry["regs"]) > limit:
                entry["regs"] = entry["regs"][:limit]
                changed = True
        return changed

    def shrink_window(keep):
        if len(replay["window"]) > keep:
            replay["window"] = replay["window"][-keep:] if keep else []
            return True
        return False

    def drop_heap_objects():
        heap = replay.get("heap")
        if heap and heap.get("objects"):
            heap["objects"] = []
            return True
        return False

    def drop_stdout_tail():
        if replay["outcome"].get("stdout_tail"):
            replay["outcome"]["stdout_tail"] = ""
            return True
        return False

    def trim_provenance(prov_limit, msg_limit):
        changed = False
        for bug in replay["bugs"]:
            if len(bug.get("provenance") or "") > prov_limit:
                bug["provenance"] = bug["provenance"][:prov_limit]
                changed = True
            if len(bug.get("message") or "") > msg_limit:
                bug["message"] = bug["message"][:msg_limit]
                changed = True
        return changed

    def drop_divergence_outcomes():
        divergence = replay.get("divergence")
        if divergence and divergence.get("outcomes"):
            divergence["outcomes"] = {}
            return True
        return False

    def drop_manifest_inputs():
        manifest = packet["manifest"]
        changed = False
        for key in ("stdin_b64", "vfs_b64"):
            value = manifest.get(key)
            if value:
                digest = hashlib.sha256(
                    json.dumps(value, sort_keys=True).encode()
                ).hexdigest()
                manifest[key] = None
                manifest[key.replace("_b64", "_sha256")] = digest
                changed = True
        return changed

    stages = [
        ("visits:64", lambda: cap_visits(64)),
        ("window:regs16", lambda: cap_regs(16)),
        ("window:16", lambda: shrink_window(16)),
        ("visits:16", lambda: cap_visits(16)),
        ("heap:objects", drop_heap_objects),
        ("window:8", lambda: shrink_window(8)),
        ("window:regs4", lambda: cap_regs(4)),
        ("stdout:tail", drop_stdout_tail),
        ("visits:4", lambda: cap_visits(4)),
        ("provenance:2000", lambda: trim_provenance(2000, 500)),
        ("window:2", lambda: shrink_window(2)),
        ("window:regs0", lambda: cap_regs(0)),
        ("manifest:inputs", drop_manifest_inputs),
        # Last resort for tiny budgets: the bug identity (signatures,
        # bug dicts, heap history) always survives.
        ("divergence:outcomes", drop_divergence_outcomes),
        ("provenance:200", lambda: trim_provenance(200, 200)),
        ("window:0", lambda: shrink_window(0)),
        ("visits:0", lambda: cap_visits(0)),
    ]
    for name, stage in stages:
        if size() <= budget:
            break
        if stage():
            trims.append(name)
    packet["budget"]["size"] = size()
    return packet


# -- schema -----------------------------------------------------------------


EXPLAIN_SCHEMA = {
    "explain_version": "int — schema version (1)",
    "manifest": {
        "manifest_version": "int",
        "engine": "str — engine_version() at record time",
        "tool": "str — tool name (safe-sulong, asan-O0, ...)",
        "options": "dict — semantic engine options (quotas, tiers)",
        "filename": "str|null",
        "source_sha256": "str|null — digest of the exact source",
        "max_steps": "int|null",
        "gen?": "dict — (version, seed, config, planted) for repro.gen",
        "fault?": "dict — injected harness fault, if any",
    },
    "replay": {
        "outcome": "dict — status/detected/crashed/limits/stdout digest",
        "bugs": "list — worker-shaped bug dicts + signature + provenance",
        "signatures": "list[str] — deduplicated triage signatures",
        "cfg_path": "dict|null — blocks_entered/unique_blocks/visits",
        "window": "list — last N block entries with register values",
        "heap": "dict|null — faulting object + alloc/free history",
        "divergence": "dict|null — tier outcomes + first divergent block",
        "dropped": "dict — recorder-side truncation flags",
    },
    "record": "dict? — id/signatures/matches when explaining a record",
    "budget": {"limit": "int", "size": "int", "trims": "list[str]"},
}


def validate_packet(packet: dict, budget: int | None = None) -> list[str]:
    """Structural schema check; returns a list of problems (empty =
    valid).  Stdlib-only stand-in for a JSON-Schema validator."""
    problems: list[str] = []

    def need(mapping, key, kinds, where):
        value = mapping.get(key, _MISSING)
        if value is _MISSING:
            problems.append(f"{where}: missing key {key!r}")
            return None
        if kinds is not None and value is not None \
                and not isinstance(value, kinds):
            problems.append(
                f"{where}.{key}: expected {kinds}, got "
                f"{type(value).__name__}")
        return value

    if not isinstance(packet, dict):
        return ["packet is not an object"]
    if packet.get("explain_version") != EXPLAIN_VERSION:
        problems.append("explain_version != %d" % EXPLAIN_VERSION)
    manifest = need(packet, "manifest", dict, "packet")
    if isinstance(manifest, dict):
        need(manifest, "manifest_version", int, "manifest")
        need(manifest, "engine", str, "manifest")
        need(manifest, "tool", str, "manifest")
        need(manifest, "options", dict, "manifest")
    replay = need(packet, "replay", dict, "packet")
    if isinstance(replay, dict):
        outcome = need(replay, "outcome", dict, "replay")
        if isinstance(outcome, dict):
            for key in ("status", "detected", "crashed",
                        "limit_exceeded", "stdout_len", "stdout_sha256"):
                need(outcome, key, None, "replay.outcome")
        bugs = need(replay, "bugs", list, "replay")
        if isinstance(bugs, list):
            for i, bug in enumerate(bugs):
                if not isinstance(bug, dict):
                    problems.append(f"replay.bugs[{i}] is not an object")
                    continue
                for key in ("kind", "signature", "provenance"):
                    need(bug, key, str, f"replay.bugs[{i}]")
        need(replay, "signatures", list, "replay")
        cfg = need(replay, "cfg_path", dict, "replay")
        if isinstance(cfg, dict):
            need(cfg, "blocks_entered", int, "replay.cfg_path")
            need(cfg, "unique_blocks", int, "replay.cfg_path")
            visits = need(cfg, "visits", list, "replay.cfg_path")
            for row in visits if isinstance(visits, list) else ():
                if not (isinstance(row, list) and len(row) == 3):
                    problems.append(
                        "replay.cfg_path.visits rows must be "
                        "[function, block, count]")
                    break
        window = need(replay, "window", list, "replay")
        if isinstance(window, list):
            for i, entry in enumerate(window):
                if not isinstance(entry, dict):
                    problems.append(
                        f"replay.window[{i}] is not an object")
                    continue
                for key in ("step", "function", "block", "regs"):
                    need(entry, key, None, f"replay.window[{i}]")
        heap = replay.get("heap")
        if heap is not None and isinstance(heap, dict):
            need(heap, "history", list, "replay.heap")
        elif heap is not None:
            problems.append("replay.heap is neither null nor an object")
        divergence = replay.get("divergence")
        if divergence is not None:
            if not isinstance(divergence, dict):
                problems.append("replay.divergence is not an object")
            else:
                need(divergence, "agree", bool, "replay.divergence")
                need(divergence, "outcomes", dict, "replay.divergence")
        need(replay, "dropped", dict, "replay")
    budget_info = need(packet, "budget", dict, "packet")
    if isinstance(budget_info, dict):
        need(budget_info, "limit", int, "budget")
        need(budget_info, "trims", list, "budget")
    limit = budget
    if limit is None and isinstance(budget_info, dict):
        limit = budget_info.get("limit")
    if isinstance(limit, int):
        actual = len(canonical_packet_bytes(packet))
        if actual > limit:
            problems.append(
                f"packet is {actual} bytes, over the {limit}-byte budget")
    return problems


_MISSING = object()


# -- text renderer ----------------------------------------------------------


def _format_reg(index: int, value) -> str:
    if isinstance(value, dict):
        ptr = value.get("ptr", _MISSING)
        if ptr is not _MISSING:
            if ptr is None:
                return f"r{index}=NULL+{value.get('offset', 0)}"
            freed = " freed" if ptr.get("freed") else ""
            return (f"r{index}=&{ptr.get('object')}"
                    f"+{value.get('offset', 0)}{freed}")
        if "fn" in value:
            return f"r{index}=@{value['fn']}"
        if "obj" in value:
            return f"r{index}=&{value['obj']}"
        return f"r{index}=<{value.get('repr', '?')}>"
    return f"r{index}={value}"


def render_text(packet: dict) -> str:
    """Human view of one explain packet (``--format text``)."""
    manifest = packet.get("manifest") or {}
    replay = packet.get("replay") or {}
    outcome = replay.get("outcome") or {}
    lines = [f"== repro explain (packet v{packet.get('explain_version')})"]
    digest = manifest.get("source_sha256")
    program = manifest.get("filename") or "?"
    if digest:
        program += f"  sha256:{digest[:12]}"
    lines.append(f"program: {program}")
    gen = manifest.get("gen")
    if gen:
        lines.append(f"generated: seed {gen.get('seed')} "
                     f"(repro.gen v{gen.get('version')})")
    lines.append(f"recorded by: {manifest.get('engine')}  "
                 f"tool {manifest.get('tool')}")
    options = manifest.get("options") or {}
    if options:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(options.items()))
        lines.append(f"options: {rendered}")
    if manifest.get("fault"):
        lines.append(f"injected fault: {manifest['fault']}")
    lines.append("")
    state = []
    if outcome.get("detected"):
        state.append("bug detected")
    if outcome.get("crashed"):
        state.append(f"crashed ({outcome.get('crash_message')})")
    if outcome.get("limit_exceeded"):
        state.append("resource limit")
    if outcome.get("internal_error"):
        state.append(f"internal error: {outcome['internal_error']}")
    if not state:
        state.append("clean exit")
    lines.append(f"outcome: {', '.join(state)}  status={outcome.get('status')}"
                 f"  steps={outcome.get('steps')}"
                 f"  stdout={outcome.get('stdout_len')}B")
    for bug in replay.get("bugs") or ():
        lines.append("")
        lines.append(bug.get("provenance") or bug.get("signature") or "")
    cfg = replay.get("cfg_path")
    if cfg:
        lines.append("")
        lines.append(f"cfg path: {cfg.get('blocks_entered')} block entries, "
                     f"{cfg.get('unique_blocks')} unique blocks"
                     + (" (truncated)" if cfg.get("visits_truncated")
                        or cfg.get("visits_capped") else ""))
        for function, block, count in (cfg.get("visits") or [])[:10]:
            lines.append(f"  {count:>8}x  {function}:{block}")
    window = replay.get("window") or []
    if window:
        lines.append("")
        lines.append(f"last {len(window)} blocks before the fault "
                     "(oldest first):")
        for entry in window:
            where = entry.get("line") or ""
            lines.append(f"  #{entry.get('step')} "
                         f"{entry.get('function')}:{entry.get('block')}"
                         f"  {where}")
            regs = entry.get("regs") or []
            if regs:
                rendered = "  ".join(
                    _format_reg(i, value) for i, value in regs[:8])
                lines.append(f"      {rendered}")
    heap = replay.get("heap")
    if heap and heap.get("history"):
        lines.append("")
        lines.append("faulting object history:")
        for event in heap["history"]:
            bits = [event.get("event", "?")]
            if event.get("kind"):
                bits.append(event["kind"])
            if event.get("size") is not None:
                bits.append(f"{event['size']} B")
            if event.get("site"):
                bits.append(f"at {event['site']}")
            lines.append("  " + " ".join(bits))
    elif heap:
        lines.append("")
        lines.append(f"heap: {heap.get('tracked')} tracked objects, "
                     f"{heap.get('live')} live, {heap.get('freed')} freed")
    divergence = replay.get("divergence")
    if divergence:
        lines.append("")
        if divergence.get("agree"):
            lines.append("tier divergence: none "
                         f"({', '.join(divergence.get('checked_tiers') or [])}"
                         " agree)")
        else:
            lines.append(f"tier divergence: "
                         f"{', '.join(divergence.get('divergent_tiers'))} "
                         f"disagree with interp "
                         f"(kind: {divergence.get('kind')})")
            block = divergence.get("block")
            if block:
                lines.append(f"  first divergent block: "
                             f"{block.get('function')}:{block.get('block')} "
                             f"step {block.get('step')} "
                             f"{block.get('line') or ''}")
            for name, row in sorted(
                    (divergence.get("outcomes") or {}).items()):
                lines.append(
                    f"  {name:<10} status={row.get('status')} "
                    f"detected={row.get('detected')} "
                    f"stdout={row.get('stdout_len')}B "
                    f"{','.join(row.get('signatures') or [])}")
    budget_info = packet.get("budget") or {}
    lines.append("")
    trims = budget_info.get("trims") or []
    lines.append(f"packet: {budget_info.get('size')} bytes "
                 f"(budget {budget_info.get('limit')})"
                 + (f", trimmed: {', '.join(trims)}" if trims else ""))
    record = packet.get("record")
    if record:
        match = "matches" if record.get("matches") else "DOES NOT match"
        lines.append(f"record {record.get('id')}: replay {match} the "
                     "recorded signatures")
    return "\n".join(lines)
