"""Pipeline span tracing, exported as Chrome ``trace_event`` JSON.

A *span* is one timed phase of the pipeline — preprocess, parse,
typecheck, irgen, link, prepare, jit-compile, execute, cache lookups,
hunt workers.  Recording follows the observer's specialization
philosophy: a module-level recorder slot is ``None`` unless tracing was
requested, and :func:`span` returns one shared no-op context manager in
that case, so the disabled path costs a single global read per phase
(phases are coarse — this is unmeasurable against the <3% gate).

The export format is the Chrome trace-event JSON array of complete
("ph":"X") events, loadable in ``chrome://tracing`` and Perfetto.  The
streaming writer emits one event per line and never *requires* the
closing ``]`` — both viewers accept a truncated array — so a quota kill
or crash mid-run loses at most the event being written.
"""

from __future__ import annotations

import atexit
import json
import os
import time


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()

# The active recorder, or None when tracing is off (the common case).
_recorder: "SpanRecorder | None" = None


def set_recorder(recorder: "SpanRecorder | None") -> "SpanRecorder | None":
    """Install (or clear, with None) the process-wide span recorder.
    Returns the previous recorder so callers can restore it."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


def get_recorder() -> "SpanRecorder | None":
    return _recorder


def span(name: str, **args):
    """Context manager timing one pipeline phase.  Near-free when no
    recorder is installed."""
    recorder = _recorder
    if recorder is None:
        return _NOOP
    return _Span(recorder, name, args)


class _Span:
    __slots__ = ("recorder", "name", "args", "start")

    def __init__(self, recorder: "SpanRecorder", name: str, args: dict):
        self.recorder = recorder
        self.name = name
        self.args = args

    def __enter__(self):
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.args = dict(self.args, error=exc_type.__name__)
        self.recorder.record(self.name, self.start, duration, self.args)
        return False


class SpanRecorder:
    """Collects spans as Chrome trace events; optionally streams them.

    With ``path`` set, every event is written (one per line) and flushed
    as it completes, so a killed process leaves a loadable trace.  The
    in-memory list is bounded; past ``max_spans`` events are counted in
    ``spans_dropped`` but still streamed.
    """

    MAX_SPANS = 4096

    def __init__(self, path: str | None = None,
                 pid: int | None = None, tid: int = 0):
        self.events: list[dict] = []
        self.spans_dropped = 0
        self.pid = os.getpid() if pid is None else pid
        self.tid = tid
        self.path = path
        self._handle = None
        self._wrote_event = False
        if path is not None:
            self._handle = open(path, "w", encoding="utf-8")
            self._handle.write("[\n")
            self._handle.flush()
            atexit.register(self.close)

    def record(self, name: str, start: float, duration: float,
               args: dict | None = None) -> None:
        event = {
            "name": name,
            "ph": "X",
            "ts": round(start * 1e6, 1),       # microseconds
            "dur": round(duration * 1e6, 1),
            "pid": self.pid,
            "tid": self.tid,
        }
        if args:
            event["args"] = {key: _jsonable(value)
                             for key, value in args.items()}
        if len(self.events) < self.MAX_SPANS:
            self.events.append(event)
        else:
            self.spans_dropped += 1
        handle = self._handle
        if handle is not None:
            try:
                if self._wrote_event:
                    handle.write(",\n")
                json.dump(event, handle)
                handle.write("\n")
                handle.flush()
                self._wrote_event = True
            except (OSError, ValueError):
                self._handle = None

    def close(self) -> None:
        handle = self._handle
        if handle is None:
            return
        self._handle = None
        try:
            handle.write("]\n")
            handle.close()
        except (OSError, ValueError):
            pass
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def snapshot(self) -> list[dict]:
        """The collected events (Chrome trace dicts), for embedding in a
        worker result or campaign summary."""
        return list(self.events)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(path: str, events: list[dict]) -> None:
    """Write a list of trace events as one well-formed Chrome trace."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("[\n")
        for index, event in enumerate(events):
            if index:
                handle.write(",\n")
            json.dump(event, handle)
        handle.write("\n]\n")


def merge_worker_spans(events: list[dict], worker_events: list[dict],
                       pid: int, label: str | None = None) -> None:
    """Fold a worker's span list into a campaign-level trace, rewriting
    the pid so each worker gets its own track in the viewer."""
    for event in worker_events:
        merged = dict(event)
        merged["pid"] = pid
        if label:
            args = dict(merged.get("args") or {})
            args.setdefault("job", label)
            merged["args"] = args
        events.append(merged)
