"""Uniform runner interface over every bug-finding configuration in the
paper's evaluation (§4.1): Safe Sulong, ASan at -O0/-O3, Valgrind-style
memcheck at -O0/-O3, and plain native execution at -O0/-O3.

Each runner takes C source and returns an
:class:`~repro.core.engine.ExecutionResult`; ``detected()`` applies the
evaluation's notion of "the tool found the bug" (a tool report, or a
visible hardware trap such as the NULL-dereference SIGSEGV that needs no
tool at all).
"""

from __future__ import annotations

from .core.engine import ExecutionResult, SafeSulong
from .native import compile_native, run_native
from .sanitizers.asan import AsanTool, instrument_module
from .sanitizers.memcheck import MemcheckTool


def engine_version() -> str:
    """One string naming everything that can change what the engine
    detects: the package version, the JIT codegen version, and the
    static-analysis version.  The service's bug database keys
    regression flips on it — a bug that disappears across an
    engine-version change is attributed to the engine, not counted as
    a flaky regression."""
    from . import __version__
    from .analysis.interproc.driver import ANALYSIS_VERSION
    from .cache import CODEGEN_VERSION
    return (f"repro-{__version__}+codegen{CODEGEN_VERSION}"
            f"+analysis{ANALYSIS_VERSION}")


# The safe-sulong option keys that can change what a run computes or
# detects — the ones a replay manifest must reproduce.  Plumbing keys
# (cache_dir/use_cache/prescreen) are excluded for the same reason
# campaign_fingerprint excludes them: they affect how fast an answer
# arrives, never which answer.
SEMANTIC_OPTION_KEYS = ("jit_threshold", "elide_checks", "speculate",
                       "max_heap_bytes", "max_call_depth",
                       "max_output_bytes", "track_heap")


def semantic_options(tool: str, options: dict | None = None) -> dict:
    """The subset of ``options`` worth recording in a replay manifest.
    Baseline tools carry their whole configuration in the tool name, so
    they contribute nothing."""
    if tool != "safe-sulong":
        return {}
    options = options or {}
    return {key: options[key] for key in SEMANTIC_OPTION_KEYS
            if options.get(key)}


def detected(result: ExecutionResult) -> bool:
    """Did this run surface the bug?  Tool reports count; so do hardware
    traps (SIGSEGV/SIGFPE), which are visible without any tool."""
    if result.bugs:
        return True
    if result.crashed and "SIG" in result.crash_message:
        return True
    return False


class ToolRunner:
    name = "tool"

    def run(self, source: str, argv: list[str] | None = None,
            stdin: bytes = b"", vfs: dict[str, bytes] | None = None,
            max_steps: int | None = 2_000_000,
            filename: str = "program.c") -> ExecutionResult:
        raise NotImplementedError


class SafeSulongRunner(ToolRunner):
    """The paper's tool: the managed engine (optionally with the dynamic
    compilation tier enabled), with optional resource quotas for batch
    campaigns."""

    name = "safe-sulong"

    def __init__(self, jit_threshold: int | None = None,
                 elide_checks: bool = False, speculate: bool = False,
                 max_heap_bytes: int | None = None,
                 max_call_depth: int | None = None,
                 max_output_bytes: int | None = None,
                 observer=None, cache_dir: str | None = None,
                 use_cache: bool = False, track_heap: bool = False):
        self.jit_threshold = jit_threshold
        self.elide_checks = elide_checks
        self.speculate = speculate
        self.max_heap_bytes = max_heap_bytes
        self.max_call_depth = max_call_depth
        self.max_output_bytes = max_output_bytes
        # Keep the heap-object list for --heap-dump provenance renders.
        self.track_heap = track_heap
        # Not JSON-shippable, so not part of ``options``: workers build
        # their own Observer from the job's ``collect_metrics`` flag.
        self.observer = observer
        # The compilation cache, by contrast, IS shippable: workers get
        # the directory path via options and open the shared store
        # themselves (atomic writes make concurrent sharing safe).
        if use_cache or cache_dir:
            from .cache import resolve_cache
            self.cache = resolve_cache(cache_dir)
        else:
            self.cache = None

    def run(self, source, argv=None, stdin=b"", vfs=None,
            max_steps=2_000_000, filename="program.c"):
        engine = SafeSulong(jit_threshold=self.jit_threshold,
                            max_steps=max_steps,
                            elide_checks=self.elide_checks,
                            speculate=self.speculate,
                            max_heap_bytes=self.max_heap_bytes,
                            max_call_depth=self.max_call_depth,
                            max_output_bytes=self.max_output_bytes,
                            observer=self.observer, cache=self.cache,
                            track_heap=self.track_heap)
        return engine.run_source(source, argv=argv, stdin=stdin,
                                 filename=filename, vfs=vfs)


class NativeRunner(ToolRunner):
    """Plain Clang-compiled execution (the performance baseline; finds
    only bugs that trap)."""

    def __init__(self, opt_level: int = 0):
        self.opt_level = opt_level
        self.name = f"clang-O{opt_level}"

    def run(self, source, argv=None, stdin=b"", vfs=None,
            max_steps=2_000_000, filename="program.c"):
        module = compile_native(source, filename=filename,
                                opt_level=self.opt_level)
        return run_native(module, argv=argv, stdin=stdin, vfs=vfs,
                          max_steps=max_steps, detector=self.name)


class AsanRunner(ToolRunner):
    """Compile-time instrumentation baseline.

    ``fno_common=True`` mirrors the paper's setup ("we had to enable the
    -fno-common compiler flag for ASan").  ``intercept_strtok`` defaults
    to the 2017 behaviour (no interceptor).
    """

    def __init__(self, opt_level: int = 0, fno_common: bool = True,
                 intercept_strtok: bool = False,
                 quarantine_bytes: int = 1 << 18, redzone: int = 16,
                 load_widening: bool = False):
        self.opt_level = opt_level
        self.fno_common = fno_common
        self.intercept_strtok = intercept_strtok
        self.quarantine_bytes = quarantine_bytes
        self.redzone = redzone
        self.load_widening = load_widening
        self.name = f"asan-O{opt_level}"

    def run(self, source, argv=None, stdin=b"", vfs=None,
            max_steps=2_000_000, filename="program.c"):
        module = compile_native(source, filename=filename,
                                opt_level=self.opt_level,
                                load_widening=self.load_widening)
        instrument_module(module)
        tool = AsanTool(fno_common=self.fno_common,
                        intercept_strtok=self.intercept_strtok,
                        quarantine_bytes=self.quarantine_bytes,
                        redzone=self.redzone)
        return run_native(module, tool=tool, argv=argv, stdin=stdin,
                          vfs=vfs, max_steps=max_steps, detector=self.name)


class MemcheckRunner(ToolRunner):
    """Run-time instrumentation baseline (Valgrind's memcheck)."""

    def __init__(self, opt_level: int = 0,
                 track_uninitialized: bool = True):
        self.opt_level = opt_level
        self.track_uninitialized = track_uninitialized
        self.name = f"memcheck-O{opt_level}"

    def run(self, source, argv=None, stdin=b"", vfs=None,
            max_steps=2_000_000, filename="program.c"):
        module = compile_native(source, filename=filename,
                                opt_level=self.opt_level)
        tool = MemcheckTool(track_uninitialized=self.track_uninitialized)
        result = run_native(module, tool=tool, argv=argv, stdin=stdin,
                            vfs=vfs, max_steps=max_steps,
                            detector=self.name)
        # Valgrind reports and continues; surface accumulated reports.
        result.bugs.extend(tool.reports)
        return result


def all_runners() -> dict[str, ToolRunner]:
    """The §4.1 evaluation matrix."""
    return {
        "safe-sulong": SafeSulongRunner(),
        "asan-O0": AsanRunner(opt_level=0),
        "asan-O3": AsanRunner(opt_level=3),
        "memcheck-O0": MemcheckRunner(opt_level=0),
        "memcheck-O3": MemcheckRunner(opt_level=3),
        "clang-O0": NativeRunner(opt_level=0),
        "clang-O3": NativeRunner(opt_level=3),
    }


def make_runner(tool: str, options: dict | None = None,
                observer=None) -> ToolRunner:
    """Build a runner by name with per-campaign option overrides.

    This is the constructor the batch harness uses in worker processes
    and when descending the degradation ladder: ``options`` carries the
    safe-sulong configuration (``jit_threshold``, ``elide_checks``, and
    the resource quotas); baseline tools take their configuration from
    the tool name itself.  ``observer`` (obs.Observer, not JSON-safe and
    therefore not an option) attaches to safe-sulong only — baseline
    tools have nothing to observe.
    """
    options = dict(options or {})
    if tool == "safe-sulong":
        return SafeSulongRunner(
            jit_threshold=options.get("jit_threshold"),
            elide_checks=bool(options.get("elide_checks", False)),
            speculate=bool(options.get("speculate", False)),
            max_heap_bytes=options.get("max_heap_bytes"),
            max_call_depth=options.get("max_call_depth"),
            max_output_bytes=options.get("max_output_bytes"),
            observer=observer,
            cache_dir=options.get("cache_dir"),
            use_cache=bool(options.get("use_cache", False)),
            track_heap=bool(options.get("track_heap", False)))
    runner = all_runners().get(tool)
    if runner is None:
        raise ValueError(f"unknown tool {tool!r}; choose from "
                         f"{', '.join(all_runners())}")
    return runner
