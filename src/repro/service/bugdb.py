"""Persistent bug database keyed by the triage signature.

One row per ``(kind, fault site, alloc site)`` signature — the same
dedup key ``repro hunt`` uses (:func:`repro.harness.triage.
bug_signature`), now made durable and longitudinal:

* **first-seen / last-seen** — tracked by *submission order* (the
  queue's submit sequence number), not completion order, so the view is
  byte-identical no matter how the scheduler interleaved workers or how
  many times a task was redelivered;
* **occurrence counts** — one count per completed task that exhibited
  the signature.  Recording is idempotent per task id: a redelivered
  task (at-least-once queue) that completes twice contributes once;
* **regression flips** — a signature previously exhibited by a program
  that a later run (by submit seq) of the *same program under the same
  engine version* no longer exhibits flips to ``absent``; when it is
  later seen again under that engine, ``regressions`` increments.  An
  absence across an engine-version change is attributed to the engine,
  not counted.

Status, ``present_in``, and regression counts are *derived* — each
program keeps a bounded history of its runs ordered by submit seq, and
the per-signature view is recomputed from those histories.  The view
is therefore a pure function of the set of recorded results: delivery
order, redelivery, and crash-rebuild cannot change a byte of it.

Durability follows the service WAL discipline (:mod:`.wal`): one JSON
line per completed task — the whole update is atomic — and the
in-memory state is a pure fold over the stream, so a ``kill -9``
rebuild is byte-identical (:meth:`BugDatabase.snapshot_bytes` is the
canonical form tests pin).
"""

from __future__ import annotations

import json
import threading

from ..harness.triage import bug_signature
from .wal import RESET_OP, WriteAheadLog

SCHEMA_VERSION = 1

_BUG_FIELDS = ("kind", "location", "alloc_site", "free_site", "message")

# Runs remembered per program for flip derivation.  Older runs age out
# deterministically (lowest seq first), so rebuilds stay byte-identical.
MAX_RUNS_PER_PROGRAM = 32


def _slim_bug(bug: dict) -> dict:
    return {field: bug.get(field) for field in _BUG_FIELDS}


class BugDatabase:
    """The signature-keyed store over one :class:`WriteAheadLog`."""

    def __init__(self, directory: str,
                 segment_bytes: int | None = None):
        kwargs = {}
        if segment_bytes is not None:
            kwargs["segment_bytes"] = segment_bytes
        self.wal = WriteAheadLog(directory, **kwargs)
        # Written by the supervisor thread, read by HTTP handler
        # threads (GET /bugs); same serialization discipline as the
        # queue.
        self._lock = threading.RLock()
        self.sigs: dict[str, dict] = {}
        self.recorded: set[str] = set()
        self.program_state: dict[str, dict] = {}
        self.events = 0
        for record in self.wal.replay():
            self._apply(record)

    def reload(self) -> None:
        """Drop in-memory state and re-fold from disk — what a process
        restart does, callable in-process for recovery tests."""
        lock = getattr(self, "_lock", None)
        if lock is not None:
            with lock:
                self.wal.close()
                self.__init__(self.wal.directory,
                              segment_bytes=self.wal.segment_bytes)
                self._lock = lock
            return
        self.wal.close()
        self.__init__(self.wal.directory,
                      segment_bytes=self.wal.segment_bytes)

    # -- fold ---------------------------------------------------------------------

    def _apply(self, record: dict) -> None:
        op = record.get("op")
        if op == RESET_OP:
            self.sigs.clear()
            self.recorded.clear()
            self.program_state.clear()
            self.events = 0
        elif op == "snapshot":
            self.sigs = {sig: dict(row) for sig, row
                         in (record.get("sigs") or {}).items()}
            self.recorded = set(record.get("recorded") or ())
            self.program_state = {
                program: dict(state) for program, state
                in (record.get("programs") or {}).items()}
            self.events = int(record.get("events", 0))
        elif op == "result":
            self._apply_result(record)

    def _apply_result(self, record: dict) -> None:
        task = record.get("task")
        if task is None or task in self.recorded:
            return
        self.recorded.add(task)
        self.events += 1
        seq = int(record.get("seq", 0))
        campaign = record.get("campaign")
        program = record.get("program")
        engine = record.get("engine")
        present: dict[str, dict] = {}
        for bug in record.get("bugs") or []:
            present.setdefault(bug_signature(bug), bug)

        # Counts and seen markers are order-independent on their own:
        # counting is deduplicated by task id, seen markers are
        # min/max over submit seq.
        seen_at = {"campaign": campaign, "program": program, "seq": seq}
        for sig, bug in sorted(present.items()):
            row = self.sigs.get(sig)
            if row is None:
                row = self.sigs[sig] = {
                    "signature": sig,
                    **_slim_bug(bug),
                    "count": 0,
                    "programs": [],
                    "present_in": [],
                    "first_seen": None,
                    "last_seen": None,
                    "status": "absent",
                    "engine": engine,
                    "absent_same_engine": False,
                    "regressions": 0,
                }
            row["count"] += 1
            if program not in row["programs"]:
                row["programs"] = sorted([*row["programs"], program])
            if row["first_seen"] is None \
                    or seq < row["first_seen"]["seq"]:
                row["first_seen"] = dict(seen_at)
            if row["last_seen"] is None \
                    or seq >= row["last_seen"]["seq"]:
                row["last_seen"] = dict(seen_at)
                # The latest sighting defines the engine the row is
                # attributed to (regression flips key on it).
                row["engine"] = engine

        # Insert this run into the program's seq-ordered history, then
        # re-derive every signature the program has ever touched: the
        # derived view depends only on the *set* of runs, never on the
        # order they arrived.
        state = self.program_state.setdefault(program, {"runs": []})
        runs = state["runs"]
        runs.append([seq, engine, sorted(present)])
        runs.sort(key=lambda run: run[0])
        del runs[:-MAX_RUNS_PER_PROGRAM]
        affected = set(present)
        for _seq, _engine, run_sigs in runs:
            affected.update(run_sigs)
        for sig in sorted(affected):
            row = self.sigs.get(sig)
            if row is not None:
                self._derive(sig, row)

    def _derive(self, sig: str, row: dict) -> None:
        """Recompute status / present_in / regressions / engine for one
        signature from the per-program run histories."""
        present_in = []
        regressions = 0
        latest_sighting = None  # (seq, engine)
        absent_eligible_engines = []
        for program in row["programs"]:
            runs = (self.program_state.get(program) or {}).get("runs")
            if not runs:
                continue
            # Walk this program's runs in submit order: present →
            # absent is regression-eligible only while the engine
            # never changes; eligible-absent → present is one flip.
            phase = None          # None | "present" | "absent"
            eligible = False
            last_engine = None
            sighted = False
            for seq, engine, run_sigs in runs:
                if sig in run_sigs:
                    if phase == "absent" and eligible \
                            and last_engine == engine:
                        regressions += 1
                    phase, eligible = "present", False
                    sighted = True
                    if latest_sighting is None \
                            or seq >= latest_sighting[0]:
                        latest_sighting = (seq, engine)
                elif phase is not None:
                    eligible = (phase == "present"
                                and last_engine == engine) \
                        or (phase == "absent" and eligible
                            and last_engine == engine)
                    phase = "absent"
                last_engine = engine
            if phase == "present":
                present_in.append(program)
            elif sighted and phase == "absent" and eligible:
                absent_eligible_engines.append(last_engine)
        row["present_in"] = present_in
        row["regressions"] = regressions
        row["status"] = "present" if present_in else "absent"
        if latest_sighting is not None:
            row["engine"] = latest_sighting[1]
        row["absent_same_engine"] = (
            row["status"] == "absent"
            and row["engine"] in absent_eligible_engines)

    # -- writes -------------------------------------------------------------------

    def record_result(self, task_id: str, seq: int, *, campaign: str,
                      program: str, engine: str,
                      bugs: list[dict]) -> bool:
        """Durably record one completed task's findings (possibly an
        empty list — absence is information too).  Idempotent per task
        id; returns False when the task was already recorded."""
        with self._lock:
            if task_id in self.recorded:
                return False
            record = {
                "op": "result",
                "task": task_id,
                "seq": int(seq),
                "campaign": campaign,
                "program": program,
                "engine": engine,
                "bugs": [_slim_bug(bug) for bug in bugs],
            }
            self.wal.append(record, fsync=True)
            self._apply(record)
            self.maybe_compact()
        return True

    # -- views --------------------------------------------------------------------

    def rows(self) -> list[dict]:
        """Deduplicated view, hottest signature first (the ``GET
        /bugs`` body)."""
        with self._lock:
            return sorted(
                (dict(row) for row in self.sigs.values()),
                key=lambda row: (-row["count"], row["signature"]))

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "schema": SCHEMA_VERSION,
                "distinct_bugs": len(self.sigs),
                "recorded_tasks": len(self.recorded),
                "regressions": sum(row["regressions"]
                                   for row in self.sigs.values()),
                "bugs": self.rows(),
            }

    def snapshot_bytes(self) -> bytes:
        """The canonical serialized state: byte-identical across
        rebuilds, redeliveries, and scheduling orders."""
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    # -- compaction ---------------------------------------------------------------

    def maybe_compact(self) -> bool:
        with self._lock:
            return self._maybe_compact_locked()

    def _maybe_compact_locked(self) -> bool:
        if not self.wal.needs_compaction():
            return False
        self.wal.compact([{
            "op": "snapshot",
            "sigs": self.sigs,
            "recorded": sorted(self.recorded),
            "programs": self.program_state,
            "events": self.events,
        }])
        return True

    def close(self) -> None:
        self.wal.close()
