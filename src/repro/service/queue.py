"""Durable job queue: idempotent submissions, leases, at-least-once.

State machine per task: ``queued → leased → done``, with
``leased → queued`` when a lease expires (the holder died) or is
explicitly requeued.  Every transition is one WAL record, so the queue
survives ``kill -9`` at any instant:

* a **submission** is acknowledged only after its ``submit`` record is
  fsynced — an accepted submission can never be lost;
* a **lease** carries a wall-clock deadline; a service restart (or a
  wedged batch) simply lets the deadline pass and
  :meth:`JobQueue.requeue_expired` returns the task to the queue —
  at-least-once delivery, with redelivery counted per task so fault
  plans and diagnostics can key on it;
* a **completion** is idempotent: the second ``complete`` for a task id
  (a redelivered task finishing twice) is a no-op, which is what makes
  downstream consumers (report lines, bug-database rows) exactly-once
  *in effect* even though delivery is at-least-once.

Task ids are content-addressed by default (:func:`task_id_for`), so
resubmitting the same program is recognized as the same job — the
service answers from the completed record instead of re-running it.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time

from ..harness.faults import crash_point
from .wal import RESET_OP, WriteAheadLog

QUEUED = "queued"
LEASED = "leased"
DONE = "done"

DEFAULT_LEASE_TTL = 30.0
DEFAULT_KEEP_DONE = 10_000

# Fields of a worker record that can be unboundedly large; completion
# records are slimmed before they enter the WAL so one chatty program
# cannot bloat the queue's durable state.
_RECORD_B64_CAP = 64 * 1024


def task_id_for(task: dict) -> str:
    """Content-addressed task id: the same program text (and argv,
    stdin, quotas) submitted twice is the same job."""
    blob = json.dumps(task, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def slim_record(record: dict) -> dict:
    """A completion record bounded for durable storage: metrics and
    span payloads dropped, captured output capped."""
    record = dict(record)
    result = record.get("result")
    if isinstance(result, dict):
        result = dict(result)
        result.pop("metrics", None)
        result.pop("spans", None)
        for key in ("stdout_b64", "stderr_b64"):
            value = result.get(key)
            if isinstance(value, str) and len(value) > _RECORD_B64_CAP:
                result[key] = value[:_RECORD_B64_CAP]
                result[key.replace("_b64", "_truncated")] = True
        record["result"] = result
    return record


class JobQueue:
    """The durable queue over one :class:`WriteAheadLog`."""

    def __init__(self, directory: str, segment_bytes: int | None = None,
                 keep_done: int = DEFAULT_KEEP_DONE):
        kwargs = {}
        if segment_bytes is not None:
            kwargs["segment_bytes"] = segment_bytes
        self.wal = WriteAheadLog(directory, **kwargs)
        self.keep_done = keep_done
        # One writer discipline: HTTP handler threads submit while the
        # supervisor thread leases/renews/completes — every public
        # method serializes on this lock.
        self._lock = threading.RLock()
        self.tasks: dict[str, dict] = {}
        self.status: dict[str, str] = {}
        self.seq_of: dict[str, int] = {}
        self.leases: dict[str, dict] = {}
        self.deliveries: dict[str, int] = {}
        self.results: dict[str, dict] = {}
        self._seq = 0
        self.recovered_leases = 0
        for record in self.wal.replay():
            self._apply(record)
        # Leases found in the WAL belong to a previous incarnation of
        # the service; they stay leased until their deadline passes,
        # then requeue_expired reclaims them (at-least-once).
        self.recovered_leases = sum(
            1 for state in self.status.values() if state == LEASED)

    # -- fold ---------------------------------------------------------------------

    def _apply(self, record: dict) -> None:
        op = record.get("op")
        if op == RESET_OP:
            self.tasks.clear()
            self.status.clear()
            self.seq_of.clear()
            self.leases.clear()
            self.deliveries.clear()
            self.results.clear()
            self._seq = 0
            return
        task_id = record.get("id")
        if op == "submit":
            if task_id in self.tasks:
                return
            seq = int(record.get("seq", self._seq + 1))
            self.tasks[task_id] = record.get("task") or {}
            self.status[task_id] = QUEUED
            self.seq_of[task_id] = seq
            self.deliveries.setdefault(task_id, 0)
            self._seq = max(self._seq, seq)
        elif op == "lease":
            if self.status.get(task_id) in (QUEUED, LEASED):
                self.status[task_id] = LEASED
                self.leases[task_id] = {
                    "worker": record.get("worker", "?"),
                    "deadline": float(record.get("deadline", 0.0)),
                }
                self.deliveries[task_id] = \
                    self.deliveries.get(task_id, 0) + 1
        elif op == "renew":
            lease = self.leases.get(task_id)
            if lease is not None:
                lease["deadline"] = float(record.get("deadline", 0.0))
        elif op == "requeue":
            if self.status.get(task_id) == LEASED:
                self.status[task_id] = QUEUED
                self.leases.pop(task_id, None)
        elif op == "done":
            if task_id in self.tasks and \
                    self.status.get(task_id) != DONE:
                self.status[task_id] = DONE
                self.leases.pop(task_id, None)
                self.results[task_id] = record.get("record") or {}

    # -- producer side ------------------------------------------------------------

    def submit(self, task: dict, task_id: str | None = None) -> \
            tuple[str, bool]:
        """Durably enqueue ``task``; returns ``(task_id, fresh)``.
        Resubmitting an existing id (content-addressed or explicit) is
        idempotent: ``fresh`` is False and nothing is written."""
        task_id = task_id or task_id_for(task)
        with self._lock:
            if task_id in self.tasks:
                return task_id, False
            self._seq += 1
            record = {"op": "submit", "id": task_id, "task": task,
                      "seq": self._seq}
            self.wal.append(record, fsync=True)
            crash_point("queue-submit", task_id)
            self._apply(record)
        return task_id, True

    # -- consumer side ------------------------------------------------------------

    def _queued_ids(self) -> list[str]:
        return sorted(
            (task_id for task_id, state in self.status.items()
             if state == QUEUED),
            key=lambda task_id: self.seq_of.get(task_id, 0))

    def lease(self, worker: str, limit: int,
              ttl: float = DEFAULT_LEASE_TTL,
              now: float | None = None) -> list[dict]:
        """Lease up to ``limit`` queued tasks (FIFO by submit order).
        Returns ``{"id", "task", "seq", "deliveries"}`` per task."""
        now = time.time() if now is None else now
        leased = []
        with self._lock:
            for task_id in self._queued_ids()[:max(0, limit)]:
                record = {"op": "lease", "id": task_id,
                          "worker": worker, "deadline": now + ttl}
                # A lost lease record is harmless (the task just looks
                # queued after a crash and is redelivered), so skip the
                # fsync on the hot scheduling path.
                self.wal.append(record, fsync=False)
                self._apply(record)
                leased.append(
                    {"id": task_id,
                     "task": self.tasks[task_id],
                     "seq": self.seq_of.get(task_id, 0),
                     "deliveries": self.deliveries.get(task_id, 1)})
        return leased

    def renew(self, task_ids, ttl: float = DEFAULT_LEASE_TTL,
              now: float | None = None) -> int:
        """Extend the deadline of still-held leases (the pool's tick
        hook calls this while workers are executing)."""
        now = time.time() if now is None else now
        renewed = 0
        with self._lock:
            for task_id in task_ids:
                if task_id in self.leases:
                    record = {"op": "renew", "id": task_id,
                              "deadline": now + ttl}
                    self.wal.append(record, fsync=False)
                    self._apply(record)
                    renewed += 1
        return renewed

    def requeue_expired(self, now: float | None = None) -> list[str]:
        """Return every task whose lease deadline has passed to the
        queue (the holder died or wedged); at-least-once redelivery."""
        now = time.time() if now is None else now
        with self._lock:
            expired = [task_id for task_id, lease in self.leases.items()
                       if lease["deadline"] <= now]
            for task_id in sorted(expired,
                                  key=lambda t: self.seq_of.get(t, 0)):
                record = {"op": "requeue", "id": task_id}
                self.wal.append(record, fsync=False)
                self._apply(record)
        return expired

    def complete(self, task_id: str, record: dict) -> bool:
        """Durably mark ``task_id`` done.  Returns False (and writes
        nothing) when the task is already done — the idempotency gate
        for redelivered tasks."""
        with self._lock:
            if task_id not in self.tasks or \
                    self.status.get(task_id) == DONE:
                return False
            entry = {"op": "done", "id": task_id,
                     "record": slim_record(record)}
            self.wal.append(entry, fsync=True)
            crash_point("queue-complete", task_id)
            self._apply(entry)
            self.maybe_compact()
        return True

    # -- views --------------------------------------------------------------------

    def depth(self) -> int:
        """Incomplete work (queued + leased): the admission-control
        measure."""
        with self._lock:
            return sum(1 for state in self.status.values()
                       if state != DONE)

    def counts(self) -> dict:
        with self._lock:
            counts = {QUEUED: 0, LEASED: 0, DONE: 0}
            for state in self.status.values():
                counts[state] += 1
            counts["total"] = len(self.status)
        return counts

    def status_of(self, task_id: str) -> dict | None:
        with self._lock:
            state = self.status.get(task_id)
            if state is None:
                return None
            entry = {"id": task_id, "state": state,
                     "seq": self.seq_of.get(task_id, 0),
                     "deliveries": self.deliveries.get(task_id, 0)}
            if state == DONE:
                entry["record"] = self.results.get(task_id)
        return entry

    # -- compaction ---------------------------------------------------------------

    def _forgettable(self) -> set[str]:
        """Done tasks beyond the retention cap: compaction drops them
        entirely (a later resubmission of the same id re-runs)."""
        done_ids = [task_id for task_id, state in self.status.items()
                    if state == DONE]
        done_ids.sort(key=lambda t: self.seq_of.get(t, 0))
        return set(done_ids[:-self.keep_done]) if self.keep_done \
            else set(done_ids)

    def _compaction_records(self, forget: set[str]):
        for task_id in sorted(self.tasks,
                              key=lambda t: self.seq_of.get(t, 0)):
            if task_id in forget:
                continue
            yield {"op": "submit", "id": task_id,
                   "task": self.tasks[task_id],
                   "seq": self.seq_of.get(task_id, 0)}
            state = self.status.get(task_id)
            if state == LEASED:
                lease = self.leases[task_id]
                yield {"op": "lease", "id": task_id,
                       "worker": lease["worker"],
                       "deadline": lease["deadline"]}
            elif state == DONE:
                yield {"op": "done", "id": task_id,
                       "record": self.results.get(task_id) or {}}

    def maybe_compact(self) -> bool:
        with self._lock:
            if not self.wal.needs_compaction():
                return False
            forget = self._forgettable()
            self.wal.compact(self._compaction_records(forget))
            for task_id in forget:
                self.tasks.pop(task_id, None)
                self.status.pop(task_id, None)
                self.seq_of.pop(task_id, None)
                self.deliveries.pop(task_id, None)
                self.results.pop(task_id, None)
        return True

    def close(self) -> None:
        self.wal.close()
