"""JSON/HTTP face of the bug-hunting service (stdlib ``http.server``).

Five endpoints over one :class:`~.supervisor.Supervisor`:

``POST /submit``
    Body: a JSON task (``source`` or ``path``/``corpus_entry``, plus
    optional ``filename``, ``argv``, ``stdin_b64``, ``max_steps``,
    ``campaign``).  Admission control first: a shedding service answers
    ``429`` with a ``Retry-After`` header and writes nothing.  Admitted
    submissions are durably enqueued before the ``202`` response — an
    acknowledged submission survives ``kill -9``.  Ids are
    content-addressed, so resubmitting the same program returns the
    same job (``"fresh": false``), possibly already completed.
``GET /job/<id>``
    Streams JSONL: one status line per poll interval, then the final
    completion record.  ``?wait=<seconds>`` bounds how long the request
    follows an unfinished job (default: one snapshot and close).  The
    body is close-delimited, so a consumer can follow it line by line.
``GET /bugs``
    The deduplicated bug database (:meth:`~.bugdb.BugDatabase.
    snapshot`), serialized canonically — byte-identical across crash
    rebuilds, which the crash-consistency tests pin.
``GET /healthz``
    :meth:`~.supervisor.Supervisor.health`; ``200`` while the service
    accepts work (including degraded rungs), ``503`` once it sheds.
``GET /explain/<id>``
    Deterministically replays a completed task from the manifest on its
    completion record and answers the failure-slice packet
    (:mod:`repro.obs.replay`).  ``<id>`` is a task id or a
    URL-encoded triage signature (the first completed task reporting
    it); ``409`` when the job is unfinished or its record predates
    manifests, ``404`` when nothing matches.

:func:`serve` wires the stores + supervisor + HTTP server together and
announces the bound port by atomically writing ``serve.json`` into the
state directory — how a supervising process (or :func:`selftest`) finds
a server started with ``--port 0``.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .bugdb import BugDatabase
from .queue import DONE, JobQueue, task_id_for
from .supervisor import _TASK_KEYS, Supervisor

# Submission schema: the task keys a client may set (everything else —
# tool, options, faults — is the operator's, via the serve flags).
SUBMIT_KEYS = _TASK_KEYS + ("campaign",)
MAX_BODY_BYTES = 4 * 1024 * 1024
MAX_WAIT_SECONDS = 60.0
POLL_INTERVAL = 0.25


def canonical_task(body: dict) -> dict:
    """The submitted task reduced to its admissible keys, sorted — the
    form the content-addressed id hashes."""
    return {key: body[key] for key in sorted(SUBMIT_KEYS)
            if key in body and body[key] is not None}


class ServiceServer(ThreadingHTTPServer):
    """One HTTP server bound to one supervisor and its stores."""

    daemon_threads = True
    # Close-delimited bodies make /job streaming trivial: no chunked
    # framing, the connection close is the end-of-stream marker.
    protocol_version = "HTTP/1.0"

    def __init__(self, address, supervisor: Supervisor,
                 verbose: bool = False):
        super().__init__(address, ServiceHandler)
        self.supervisor = supervisor
        self.queue = supervisor.queue
        self.bugdb = supervisor.bugdb
        self.verbose = verbose


class ServiceHandler(BaseHTTPRequestHandler):
    server: ServiceServer

    # -- plumbing -----------------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: A003 — stdlib signature
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _send_json(self, status: int, payload,
                   headers: dict | None = None) -> None:
        body = payload if isinstance(payload, bytes) else \
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _error(self, status: int, message: str,
               headers: dict | None = None) -> None:
        self._send_json(status, {"error": message}, headers)

    # -- routes -------------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — stdlib dispatch name
        if self.path.rstrip("/") != "/submit":
            self._error(404, "unknown endpoint")
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(400, "body required (JSON task, <= 4 MiB)")
            return
        try:
            body = json.loads(self.rfile.read(length))
        except (ValueError, UnicodeError):
            self._error(400, "body is not valid JSON")
            return
        if not isinstance(body, dict):
            self._error(400, "task must be a JSON object")
            return
        task = canonical_task(body)
        if not any(key in task for key in ("source", "path",
                                           "corpus_entry")):
            self._error(400, "task needs source, path, or corpus_entry")
            return
        task_id = task_id_for(task)
        # Known ids (duplicates, possibly already done) bypass
        # admission control: answering about existing work is free.
        existing = self.server.queue.status_of(task_id)
        if existing is None:
            ok, retry_after = self.server.supervisor.admit()
            if not ok:
                self._error(
                    429, "service is shedding load",
                    {"Retry-After": str(max(1, int(retry_after + 0.5)))})
                return
        task_id, fresh = self.server.queue.submit(task, task_id)
        status = self.server.queue.status_of(task_id) or {}
        self._send_json(202, {"id": task_id, "fresh": fresh,
                              "state": status.get("state")})

    def do_GET(self) -> None:  # noqa: N802 — stdlib dispatch name
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/healthz":
            health = self.server.supervisor.health()
            ok = health["status"] in ("ok", "degraded")
            self._send_json(200 if ok else 503, health)
        elif path == "/bugs":
            self._send_json(200, self.server.bugdb.snapshot_bytes()
                            + b"\n")
        elif path.startswith("/job/"):
            self._stream_job(path[len("/job/"):], query)
        elif path.startswith("/explain/"):
            self._explain(path[len("/explain/"):])
        else:
            self._error(404, "unknown endpoint")

    def _explain(self, ident: str) -> None:
        from urllib.parse import unquote
        ident = unquote(ident)
        queue = self.server.queue
        task_id = ident
        entry = queue.status_of(ident)
        if entry is not None:
            if entry.get("state") != DONE:
                self._error(409, f"job {ident} has not finished "
                            f"(state: {entry.get('state')})")
                return
            record = entry.get("record") or {}
        else:
            # Triage-signature lookup: the earliest completed task that
            # reported it (deterministic across restarts — seq order).
            record = None
            with queue._lock:
                for tid in sorted(queue.results,
                                  key=lambda t: queue.seq_of.get(t, 0)):
                    candidate = queue.results[tid]
                    if ident in (candidate.get("signatures") or ()):
                        task_id, record = tid, candidate
                        break
            if record is None:
                self._error(404,
                            f"unknown job or bug signature {ident!r}")
                return
        if not record.get("manifest"):
            self._error(409, f"record for {task_id} carries no replay "
                        "manifest (recorded by an older engine?)")
            return
        with queue._lock:
            task = dict(queue.tasks.get(task_id) or {})
        from ..obs.replay import ReplayError, explain_record
        try:
            packet = explain_record(record, task.get("source"))
        except ReplayError as error:
            self._error(409, f"replay failed: {error}")
            return
        except Exception as error:  # noqa: BLE001 — HTTP boundary
            self._error(500, f"explain failed: "
                        f"{type(error).__name__}: {error}")
            return
        self._send_json(200, packet)

    def _stream_job(self, task_id: str, query: str) -> None:
        wait = 0.0
        for part in query.split("&"):
            name, _, value = part.partition("=")
            if name == "wait":
                try:
                    wait = min(MAX_WAIT_SECONDS, max(0.0, float(value)))
                except ValueError:
                    pass
        entry = self.server.queue.status_of(task_id)
        if entry is None:
            self._error(404, f"unknown job {task_id}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        self.end_headers()
        deadline = time.time() + wait
        try:
            while True:
                entry = self.server.queue.status_of(task_id) or {}
                line = json.dumps(entry, sort_keys=True) + "\n"
                self.wfile.write(line.encode("utf-8"))
                self.wfile.flush()
                if entry.get("state") == DONE \
                        or time.time() >= deadline:
                    return
                time.sleep(POLL_INTERVAL)
        except (BrokenPipeError, ConnectionResetError):
            return


# -- process wiring ---------------------------------------------------------------


def _announce(state_dir: str, payload: dict) -> str:
    """Atomically publish ``serve.json`` (port discovery for
    ``--port 0`` and for the selftest's restart)."""
    path = os.path.join(state_dir, "serve.json")
    fd, tmp = tempfile.mkstemp(dir=state_dir, prefix=".serve-")
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp, path)
    return path


def build_service(state_dir: str, **supervisor_kwargs):
    """The stores + supervisor for one state directory (shared by
    :func:`serve` and the in-process tests)."""
    os.makedirs(state_dir, exist_ok=True)
    queue = JobQueue(os.path.join(state_dir, "queue"))
    bugdb = BugDatabase(os.path.join(state_dir, "bugdb"))
    return Supervisor(queue, bugdb, **supervisor_kwargs)


def serve(state_dir: str, host: str = "127.0.0.1", port: int = 0,
          verbose: bool = False, ready=None, stop=None,
          **supervisor_kwargs) -> int:
    """Run the service until ``stop`` (or SIGTERM/SIGINT).  Returns an
    exit code.  ``ready(info)``, if given, fires after the port is
    bound and announced."""
    supervisor = build_service(state_dir, **supervisor_kwargs)
    stop = stop or threading.Event()
    server = ServiceServer((host, port), supervisor, verbose=verbose)
    info = {"host": host, "port": server.server_address[1],
            "pid": os.getpid(),
            "recovered_leases": supervisor.queue.recovered_leases}
    _announce(state_dir, info)

    # Only the main thread of a process may install signal handlers;
    # in-process tests drive `stop` directly instead.
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_args: stop.set())

    worker = threading.Thread(target=supervisor.run_forever,
                              args=(stop,), name="service-supervisor",
                              daemon=True)
    worker.start()
    listener = threading.Thread(target=server.serve_forever,
                                kwargs={"poll_interval": 0.2},
                                name="service-http", daemon=True)
    listener.start()
    if verbose:
        print(f"repro serve: listening on {host}:{info['port']} "
              f"(state: {state_dir})", flush=True)
    if ready is not None:
        ready(info)
    try:
        # Timeout-ed waits keep the main thread responsive to SIGTERM
        # (a bare Event.wait() can block signal delivery).
        while not stop.is_set():
            stop.wait(0.5)
    finally:
        stop.set()
        server.shutdown()
        server.server_close()
        worker.join(timeout=5.0)
        listener.join(timeout=5.0)
        supervisor.queue.close()
        supervisor.bugdb.close()
    return 0


# -- selftest ---------------------------------------------------------------------

_SELFTEST_UAF = (
    "#include <stdlib.h>\n"
    "int main(void) {\n"
    "    int *p = malloc(sizeof(int));\n"
    "    *p = 1;\n"
    "    free(p);\n"
    "    return *p;\n"
    "}\n")


def _http_json(method: str, url: str, body: dict | None = None,
               timeout: float = 10.0):
    import urllib.request
    data = None if body is None else \
        json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _follow_job(url: str, timeout: float = 30.0):
    """Read a /job JSONL stream to its end; returns the last record."""
    import urllib.request
    last = None
    with urllib.request.urlopen(url, timeout=timeout) as response:
        for line in response:
            line = line.strip()
            if line:
                last = json.loads(line)
    return last


def _spawn_server(state_dir: str, verbose: bool):
    """``repro serve`` as a real child process (the selftest must be
    able to SIGKILL it), announced via serve.json."""
    import subprocess
    import sys
    announce = os.path.join(state_dir, "serve.json")
    try:
        os.unlink(announce)
    except FileNotFoundError:
        pass
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))]
        + env.get("PYTHONPATH", "").split(os.pathsep))
    child = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", state_dir, "--port", "0", "--jobs", "1",
         "--timeout", "20", "--lease-ttl", "4"],
        env=env,
        stdout=None if verbose else subprocess.DEVNULL,
        stderr=None if verbose else subprocess.DEVNULL)
    deadline = time.time() + 30.0
    while time.time() < deadline:
        if child.poll() is not None:
            raise RuntimeError(
                f"serve exited early (rc={child.returncode})")
        try:
            with open(announce, "r", encoding="utf-8") as handle:
                info = json.load(handle)
            return child, f"http://127.0.0.1:{info['port']}"
        except (FileNotFoundError, ValueError):
            time.sleep(0.1)
    child.kill()
    raise RuntimeError("serve did not announce a port in 30s")


def selftest(verbose: bool = False) -> int:
    """End-to-end smoke for ``repro serve --selftest``: submit a known
    use-after-free, watch it complete, then SIGKILL the server and
    prove the bug database survived byte-identically."""

    def say(message: str) -> None:
        if verbose:
            print(f"serve-selftest: {message}", flush=True)

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as state:
        child, base = _spawn_server(state, verbose)
        try:
            accepted = _http_json("POST", base + "/submit",
                                  {"source": _SELFTEST_UAF,
                                   "filename": "uaf_selftest.c"})
            say(f"submitted job {accepted['id']} "
                f"(fresh={accepted['fresh']})")
            deadline = time.time() + 60.0
            entry = None
            while time.time() < deadline:
                entry = _follow_job(
                    f"{base}/job/{accepted['id']}?wait=5")
                if entry and entry.get("state") == DONE:
                    break
            if not entry or entry.get("state") != DONE:
                print("serve-selftest: FAIL — job never completed",
                      flush=True)
                return 1
            bugs = _http_json("GET", base + "/bugs")
            before = json.dumps(bugs, sort_keys=True)
            kinds = [row["kind"] for row in bugs["bugs"]]
            say(f"bug database: {bugs['distinct_bugs']} distinct "
                f"({', '.join(kinds) or 'none'})")
            if "use-after-free" not in kinds:
                print("serve-selftest: FAIL — use-after-free not in "
                      f"/bugs (got {kinds})", flush=True)
                return 1
            say("SIGKILL server, restarting from the WAL")
            child.kill()
            child.wait(timeout=10.0)
            child, base = _spawn_server(state, verbose)
            after = json.dumps(_http_json("GET", base + "/bugs"),
                               sort_keys=True)
            if before != after:
                print("serve-selftest: FAIL — bug database changed "
                      "across kill -9 + restart", flush=True)
                return 1
            health = _http_json("GET", base + "/healthz")
            say(f"restarted, health={health['status']}")
            print("serve-selftest: OK — submit, detect, kill -9, "
                  "recover byte-identical", flush=True)
            return 0
        finally:
            child.kill()
            try:
                child.wait(timeout=10.0)
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass
