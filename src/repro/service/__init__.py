"""Bug-hunting as a service (``repro serve``).

The batch harness (:mod:`repro.harness`) runs one campaign and exits;
this package keeps the machinery alive as a supervised, crash-safe
service with near-zero per-submission marginal cost (every submission
shares one warm compilation cache).  Four pieces:

* :mod:`.wal` — the shared durability primitive: an append-only
  segmented JSONL write-ahead log with atomic-rename compaction and
  torn-tail-tolerant replay.  Every byte of service state lives in a
  WAL; ``kill -9`` at any instant recovers to a consistent state.
* :mod:`.queue` — durable job queue: idempotent content-addressed task
  ids, at-least-once delivery with leases that expire and requeue when
  a worker (or the whole service) dies, FIFO scheduling, admission
  depth accounting.
* :mod:`.bugdb` — persistent bug database keyed by the triage
  signature ``(kind, fault site, alloc site)``: first-seen/last-seen
  tracking, occurrence counts, and regression flips (seen → absent
  under the same engine version → seen again).  Rebuilt from its WAL
  with byte-identical state.
* :mod:`.supervisor` — drives the existing :class:`~repro.harness.pool.
  WorkerPool` over leased batches, restarts crashed batches with
  exponential backoff behind a circuit breaker, enforces admission
  control (bounded queue depth, 429-style shedding with retry-after),
  and degrades gracefully under overload by descending the degradation
  ladder service-wide (elide → full-checks → interpreter) before
  shedding load.
* :mod:`.api` — the JSON/HTTP surface (stdlib ``http.server``, no new
  dependencies): ``POST /submit``, ``GET /job/<id>`` (JSONL stream),
  ``GET /bugs``, ``GET /healthz`` — plus ``serve()`` itself and the
  ``repro serve --selftest`` smoke.
"""

from .bugdb import BugDatabase
from .queue import JobQueue, task_id_for
from .supervisor import Supervisor
from .wal import WriteAheadLog

__all__ = [
    "BugDatabase", "JobQueue", "Supervisor", "WriteAheadLog",
    "task_id_for",
]
