"""Supervision: drive the pool, restart on failure, degrade, shed.

The supervisor is the loop between the durable stores and the existing
:class:`~repro.harness.pool.WorkerPool`:

* **lease → run → record → complete** — it leases queued tasks, fans
  them over a pool batch (every worker sharing the one warm
  compilation cache via ``options``), and on each completion first
  appends the findings to the bug database and then marks the queue
  entry done.  The write order is the crash-consistency contract: a
  ``kill -9`` between the two appends redelivers the task, whose
  re-recording is a no-op (both stores are idempotent per task id);
* **restart with backoff + circuit breaker** — a batch that dies
  (pool-level exception, not an individual worker death, which the
  pool already retries) is restarted after an exponentially growing
  delay; ``breaker_threshold`` consecutive failures open the breaker,
  which rejects new work for ``breaker_cooldown`` seconds before a
  half-open probe batch;
* **admission control** — the queue depth is bounded
  (``max_depth``); past it, :meth:`Supervisor.admit` rejects with a
  retry-after hint (the HTTP layer turns this into 429);
* **graceful degradation** — before shedding, sustained depth above
  ``degrade_depth`` walks the whole service down the existing
  degradation ladder (elide → full-checks → interpreter): new leases
  run at the cheaper-to-supervise, stricter-checked rung, and the
  service climbs back up when the queue drains.  Degrading can only
  make runs slower or stricter, never blinder — the same invariant
  the per-task ladder already guarantees.

Service fault kinds (``queue-stall``, ``db-torn-write``) are
interpreted here, keyed by the task's delivery count, so every
recovery path is testable deterministically.
"""

from __future__ import annotations

import os
import threading
import time

from ..harness import faults
from ..harness.pool import WorkerPool, WorkTask, build_ladder
from ..harness.quotas import DEFAULT_TIMEOUT, Quotas
from ..obs import Observer
from .bugdb import BugDatabase
from .queue import JobQueue

DEFAULT_MAX_DEPTH = 256
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_COOLDOWN = 10.0

# Task-payload keys a submission may set; everything else (tool,
# options, fault) is the service's to decide.
_TASK_KEYS = ("source", "path", "filename", "corpus_entry", "argv",
              "stdin_b64", "vfs_b64", "max_steps")


class Supervisor:
    def __init__(self, queue: JobQueue, bugdb: BugDatabase, *,
                 tool: str = "safe-sulong",
                 options: dict | None = None,
                 quotas: Quotas | None = None,
                 jobs: int = 2, timeout: float | None = None,
                 retries: int = 2, backoff: float = 0.1,
                 campaign: str = "serve",
                 max_depth: int = DEFAULT_MAX_DEPTH,
                 degrade_depth: int | None = None,
                 lease_ttl: float | None = None,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
                 restart_backoff: float = 0.25,
                 restart_backoff_max: float = 30.0,
                 cache_cap_bytes: int | None = None,
                 observer: Observer | None = None,
                 fault_plan: faults.FaultPlan | None = None):
        self.queue = queue
        self.bugdb = bugdb
        self.tool = tool
        self.quotas = quotas or Quotas()
        base_options = dict(options or {})
        if tool == "safe-sulong":
            base_options.update(self.quotas.engine_options())
            # The service's top rung runs optimized (elision + JIT) so
            # the degradation ladder has rungs to descend to; both are
            # correctness-preserving (elision is proof-based, the JIT
            # is the interpreter's semantic twin), so this changes
            # throughput, never what gets detected.
            if base_options.get("jit_threshold") is None:
                from ..obs.profile import DEFAULT_JIT_THRESHOLD
                base_options["jit_threshold"] = DEFAULT_JIT_THRESHOLD
            if not base_options.get("elide_checks"):
                base_options["elide_checks"] = True
        # The service-wide degradation ladder: index 0 is as-requested,
        # later rungs trade optimization for headroom under load.
        self.rungs = build_ladder(tool, base_options, True)
        self.rung_index = 0
        self.jobs = max(1, jobs)
        self.timeout = DEFAULT_TIMEOUT if timeout is None else timeout
        self.retries = retries
        self.backoff = backoff
        self.campaign = campaign
        self.max_depth = max_depth
        self.degrade_depth = degrade_depth \
            if degrade_depth is not None else max(4, max_depth // 4)
        self.lease_ttl = lease_ttl \
            if lease_ttl is not None else max(15.0, 2.0 * self.timeout)
        self.breaker_threshold = max(1, breaker_threshold)
        self.breaker_cooldown = breaker_cooldown
        self.restart_backoff = restart_backoff
        self.restart_backoff_max = restart_backoff_max
        self.cache_cap_bytes = cache_cap_bytes
        self.observer = observer or Observer(enabled=True)
        self.fault_plan = fault_plan
        self._consecutive_failures = 0
        self._breaker_open_until = 0.0
        self._restart_not_before = 0.0
        self._seq_by_id: dict[str, int] = {}
        self._torn_tasks: set[str] = set()
        self._steps = 0
        self.last_error: str | None = None

    # -- admission ----------------------------------------------------------------

    @property
    def rung(self):
        return self.rungs[self.rung_index]

    def breaker_state(self, now: float | None = None) -> str:
        now = time.time() if now is None else now
        if now < self._breaker_open_until:
            return "open"
        if self._consecutive_failures >= self.breaker_threshold:
            return "half-open"
        return "closed"

    def admit(self, now: float | None = None) -> tuple[bool, float]:
        """May a new submission enter?  ``(True, 0)`` or ``(False,
        retry_after_seconds)``.  Rejections are counted as shed
        requests — degradation has already been tried by the time
        depth reaches ``max_depth``."""
        now = time.time() if now is None else now
        if self.breaker_state(now) == "open":
            self.observer.count("service.shed")
            return False, max(0.5, self._breaker_open_until - now)
        depth = self.queue.depth()
        if depth >= self.max_depth:
            self.observer.count("service.shed")
            retry_after = max(1.0, (depth - self.max_depth + 1)
                              * self.timeout / self.jobs)
            return False, min(retry_after, 60.0)
        return True, 0.0

    # -- load policy --------------------------------------------------------------

    def _apply_load_policy(self) -> None:
        """One ladder step per scheduling turn: descend while the
        backlog is above the degrade threshold, climb back once it has
        drained below half of it."""
        depth = self.queue.depth()
        if depth >= self.degrade_depth \
                and self.rung_index + 1 < len(self.rungs):
            frm = self.rung.name
            self.rung_index += 1
            self.observer.count("service.degrade")
            self.observer.emit("rung-transition", scope="service",
                               frm=frm, to=self.rung.name, depth=depth)
        elif depth <= max(1, self.degrade_depth // 2) \
                and self.rung_index > 0:
            frm = self.rung.name
            self.rung_index -= 1
            self.observer.count("service.promote")
            self.observer.emit("rung-transition", scope="service",
                               frm=frm, to=self.rung.name, depth=depth)

    # -- the scheduling turn ------------------------------------------------------

    def step(self, now: float | None = None) -> int:
        """One scheduling turn: reclaim expired leases, adjust the
        rung, lease a batch, run it.  Returns the number of tasks
        completed this turn (0 when idle, backing off, or shedding)."""
        now = time.time() if now is None else now
        self._steps += 1
        expired = self.queue.requeue_expired(now)
        if expired:
            self.observer.count("service.lease.expired", len(expired))
            self.observer.emit("lease-expired", tasks=sorted(expired))
        self._apply_load_policy()
        if now < self._breaker_open_until \
                or now < self._restart_not_before:
            return 0
        batch = self.queue.lease(f"pool@{os.getpid()}",
                                 limit=self.jobs * 2,
                                 ttl=self.lease_ttl, now=now)
        if not batch:
            self._maybe_prune_cache()
            return 0

        tasks = []
        for item in batch:
            task_id, task = item["id"], item["task"]
            self._seq_by_id[task_id] = item["seq"]
            fault = None
            if self.fault_plan:
                fault = self.fault_plan.fault_for(
                    item["seq"], task_id, item["deliveries"] - 1)
            if fault == "queue-stall":
                # Take the lease and sit on it: the deadline must pass
                # and the task be redelivered — the at-least-once path.
                self.observer.count("service.fault.queue_stall")
                continue
            if fault == "db-torn-write":
                self._torn_tasks.add(task_id)
            payload = {key: task[key] for key in _TASK_KEYS
                       if key in task}
            payload.setdefault("max_steps", self.quotas.max_steps)
            tasks.append(WorkTask(task_id, payload,
                                  tool=self.rung.tool,
                                  options=self.rung.options,
                                  index=item["seq"]))
        if not tasks:
            return 0

        completed = [0]

        def on_complete(record: dict) -> None:
            if self._complete(record):
                completed[0] += 1

        pool = WorkerPool(
            jobs=self.jobs, timeout=self.timeout, retries=self.retries,
            backoff=self.backoff, use_ladder=True,
            fault_plan=self.fault_plan,
            on_tick=lambda ids: self.queue.renew(ids, self.lease_ttl))
        try:
            pool.run(tasks, on_complete=on_complete)
        except Exception as error:  # noqa: BLE001 — supervision point
            self._on_batch_failure(error)
            return completed[0]
        self._consecutive_failures = 0
        self.last_error = None
        self._maybe_prune_cache()
        return completed[0]

    def _on_batch_failure(self, error: BaseException) -> None:
        self._consecutive_failures += 1
        self.last_error = f"{type(error).__name__}: {error}"
        self.observer.count("service.restart")
        delay = min(self.restart_backoff_max, self.restart_backoff
                    * (2 ** (self._consecutive_failures - 1)))
        self._restart_not_before = time.time() + delay
        self.observer.emit("service-restart", error=self.last_error,
                           failures=self._consecutive_failures,
                           backoff_s=round(delay, 3))
        if self._consecutive_failures >= self.breaker_threshold:
            self._breaker_open_until = time.time() \
                + self.breaker_cooldown
            self.observer.count("service.breaker.open")
            self.observer.emit("breaker-open",
                               until=self._breaker_open_until)

    # -- completion plumbing ------------------------------------------------------

    def _complete(self, record: dict) -> bool:
        """Record one pool completion durably: bug database first, then
        the queue's done mark.  Returns True when this completion was
        fresh (not a redelivery replay)."""
        task_id = record["id"]
        seq = self._seq_by_id.get(task_id, 0)
        task = self.queue.tasks.get(task_id) or {}
        program = task.get("filename") or task.get("path") or task_id
        bugs = (record.get("result") or {}).get("bugs") or []
        db_args = dict(campaign=task.get("campaign") or self.campaign,
                       program=program,
                       engine=engine_version(), bugs=bugs)
        if task_id in self._torn_tasks:
            # db-torn-write: append the record, tear it mid-line (what
            # a crash during the append leaves), recover by re-folding
            # the WAL, and do NOT complete the queue entry — the lease
            # expires and redelivery repairs everything.
            self._torn_tasks.discard(task_id)
            self.bugdb.record_result(task_id, seq, **db_args)
            faults.torn_tail(self.bugdb.wal.active_path)
            self.bugdb.reload()
            self.observer.count("service.fault.db_torn")
            return False
        self.bugdb.record_result(task_id, seq, **db_args)
        faults.crash_point("serve-complete", task_id)
        fresh = self.queue.complete(task_id, record)
        if fresh:
            self.observer.count("service.complete")
            restarts = max(0, record.get("attempts", 1) - 1)
            if restarts:
                self.observer.count("service.worker.restart", restarts)
            if record.get("triage") == "bug":
                self.observer.count("service.bugs")
        return fresh

    def _maybe_prune_cache(self) -> None:
        if not self.cache_cap_bytes or self._steps % 50:
            return
        cache_dir = self.rungs[0].options.get("cache_dir")
        use_cache = self.rungs[0].options.get("use_cache", False)
        if not (cache_dir or use_cache):
            return
        from ..cache import resolve_cache
        cache = resolve_cache(cache_dir)
        if cache is not None:
            removed = cache.prune(self.cache_cap_bytes)
            if removed:
                self.observer.count("service.cache.pruned", removed)

    # -- service loop -------------------------------------------------------------

    def run_forever(self, stop: threading.Event,
                    idle_sleep: float = 0.2) -> None:
        while not stop.is_set():
            try:
                completed = self.step()
            except Exception as error:  # noqa: BLE001 — stay alive
                self._on_batch_failure(error)
                completed = 0
            if not completed:
                stop.wait(idle_sleep)

    # -- views --------------------------------------------------------------------

    def health(self, now: float | None = None) -> dict:
        now = time.time() if now is None else now
        counts = self.queue.counts()
        depth = counts["queued"] + counts["leased"]
        breaker = self.breaker_state(now)
        if breaker == "open":
            status = "breaker-open"
        elif depth >= self.max_depth:
            status = "overloaded"
        elif self.rung_index:
            status = "degraded"
        else:
            status = "ok"
        from ..obs.metrics import service_breakdown
        counters = {key: value for key, value
                    in sorted(self.observer.counters.items())
                    if key.startswith("service.")}
        return {
            "service": service_breakdown(self.observer.counters),
            "status": status,
            "queue": counts,
            "depth": depth,
            "max_depth": self.max_depth,
            "rung": self.rung.name,
            "rung_index": self.rung_index,
            "rungs": [rung.name for rung in self.rungs],
            "breaker": {"state": breaker,
                        "consecutive_failures":
                            self._consecutive_failures},
            "last_error": self.last_error,
            "engine": engine_version(),
            "bugdb": {"distinct_bugs": len(self.bugdb.sigs),
                      "recorded_tasks": len(self.bugdb.recorded)},
            "counters": counters,
        }


def engine_version() -> str:
    """The version string regression tracking keys on (re-exported via
    :mod:`repro.tools`)."""
    from ..tools import engine_version as tools_engine_version
    return tools_engine_version()
