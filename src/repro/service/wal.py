"""Append-only segmented write-ahead log (the service durability core).

Both service stores (:mod:`.queue`, :mod:`.bugdb`) persist *only*
through this log: every state change is one JSON object appended as one
line, and in-memory state is a pure fold over the record stream.  That
single discipline buys the whole crash-consistency contract:

* **atomic appends** — a record is one ``write()`` of one line followed
  by ``flush`` (+ ``fsync`` when the caller needs the record to survive
  power loss before acknowledging it).  A crash mid-write leaves at
  most one torn line, which replay skips — losing exactly the one
  update that was never acknowledged;
* **torn-tail-tolerant replay** — replay parses every line of every
  segment in order and silently drops lines that do not parse (the
  ``db-torn-write`` fault truncates mid-record to prove this path);
* **atomic-rename compaction** — when the log grows past
  ``segment_bytes``, the owner folds its state into a fresh record
  stream which is written to a temporary file, fsynced, and
  ``os.replace``\\ d into place as the next segment before the old
  segments are unlinked.  Every compacted stream starts with a
  ``{"op": "reset"}`` record, so a crash *between* the rename and the
  unlinks replays old segments first and then resets — the fold still
  lands on exactly the compacted state.

Segments are ``wal-<8-digit-index>.jsonl`` inside the log directory;
the highest index is the active segment.
"""

from __future__ import annotations

import json
import os
import re

DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
RESET_OP = "reset"

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.jsonl$")


def _fsync_directory(path: str) -> None:
    """Make a rename/creation in ``path`` durable (best-effort: some
    filesystems refuse O_RDONLY directory fsync — the data fsync has
    already happened by then)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """One durable record stream in ``directory``."""

    def __init__(self, directory: str,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        self.directory = directory
        self.segment_bytes = max(4096, segment_bytes)
        os.makedirs(directory, exist_ok=True)
        self._handle = None
        self._active_index = max(self._segment_indices(), default=0)
        self.torn_lines = 0

    # -- segments -----------------------------------------------------------------

    def _segment_indices(self) -> list[int]:
        indices = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            match = _SEGMENT_RE.match(name)
            if match:
                indices.append(int(match.group(1)))
        return sorted(indices)

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, f"wal-{index:08d}.jsonl")

    @property
    def active_path(self) -> str:
        return self._segment_path(max(self._active_index, 1))

    def size_bytes(self) -> int:
        total = 0
        for index in self._segment_indices():
            try:
                total += os.path.getsize(self._segment_path(index))
            except OSError:
                pass
        return total

    # -- replay -------------------------------------------------------------------

    def replay(self):
        """Yield every surviving record in append order.  A ``reset``
        record is yielded too — the owner clears its state on it."""
        self.torn_lines = 0
        for index in self._segment_indices():
            try:
                with open(self._segment_path(index), "r",
                          encoding="utf-8", errors="replace") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                        except ValueError:
                            # Torn by a crash mid-append (or a
                            # db-torn-write fault): the update was
                            # never acknowledged, so dropping it is
                            # the *correct* recovery.
                            self.torn_lines += 1
                            continue
                        if isinstance(record, dict):
                            yield record
            except OSError:
                continue

    # -- appends ------------------------------------------------------------------

    def _ensure_handle(self):
        if self._handle is None:
            if self._active_index == 0:
                self._active_index = 1
            path = self._segment_path(self._active_index)
            # A crash mid-append can leave the segment without a final
            # newline; appending straight after it would glue the new
            # record onto the torn line and corrupt both.  Start every
            # append session on a fresh line.
            try:
                with open(path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    torn_open = probe.read(1) != b"\n"
            except (OSError, ValueError):
                torn_open = False
            self._handle = open(path, "a", encoding="utf-8")
            if torn_open:
                self._handle.write("\n")
                self._handle.flush()
        return self._handle

    def append(self, record: dict, fsync: bool = True) -> None:
        """Append one record as one line.  ``fsync=True`` is the
        acknowledgement barrier: do not report an update as accepted
        until append returned.  Pass ``fsync=False`` for records whose
        loss is harmless (lease renewals)."""
        handle = self._ensure_handle()
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())

    def needs_compaction(self) -> bool:
        return self.size_bytes() > self.segment_bytes

    def compact(self, records) -> int:
        """Replace the whole log with ``reset`` + ``records`` as a new
        segment, atomically.  Returns the number of records written."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        old_indices = self._segment_indices()
        new_index = (max(old_indices, default=0)) + 1
        final_path = self._segment_path(new_index)
        tmp_path = final_path + ".tmp"
        written = 0
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"op": RESET_OP}) + "\n")
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                written += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, final_path)
        _fsync_directory(self.directory)
        for index in old_indices:
            try:
                os.unlink(self._segment_path(index))
            except OSError:
                pass
        self._active_index = new_index
        return written

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
