"""Synthetic CVE / ExploitDB corpus generator.

Generates records whose per-year category mix follows the shape of the
paper's Figures 1 and 2:

* spatial errors are by far the most common and are "currently on an
  all-time high" (rising through 2017);
* temporal errors (use-after-free) are second and also rising;
* NULL dereferences are third;
* the remaining categories ("other") are least common;
* categories with many vulnerabilities are also exploited more often.

The generator is deterministic (seeded); the *pipeline* — keyword
classification and per-year aggregation — is the paper's method, applied
to this corpus.
"""

from __future__ import annotations

import random

from .records import Category, VulnRecord

# Per-year expected counts for the CVE corpus (2012..2017).  2017 covers
# only through September, as in the paper (2012-03 to 2017-09).
_CVE_RATES = {
    Category.SPATIAL: [260, 280, 330, 310, 420, 520],
    Category.TEMPORAL: [90, 120, 170, 160, 220, 260],
    Category.NULL: [70, 85, 95, 105, 120, 135],
    Category.OTHER: [30, 35, 45, 40, 55, 60],
}

# ExploitDB: far fewer entries, same ordering.
_EXPLOIT_RATES = {
    Category.SPATIAL: [55, 60, 68, 62, 75, 88],
    Category.TEMPORAL: [18, 24, 33, 30, 42, 50],
    Category.NULL: [10, 12, 13, 15, 16, 18],
    Category.OTHER: [5, 6, 8, 7, 9, 11],
}

# Unrelated records the classifier must ignore.
_NOISE_RATE = 120

_SOFTWARE = [
    "libpng", "openssl", "tcpdump", "ffmpeg", "imagemagick", "binutils",
    "libxml2", "wireshark", "qemu", "php", "graphite2", "freetype",
    "libtiff", "dropbear", "ntp", "curl", "sqlite", "mupdf", "libarchive",
    "radare2",
]

_TEMPLATES = {
    Category.SPATIAL: [
        "Heap-based buffer overflow in {sw} allows remote attackers to "
        "execute arbitrary code via a crafted file.",
        "Stack-based buffer overflow in the {fn} function in {sw}.",
        "Out-of-bounds read in {sw} when parsing a malformed header.",
        "Out-of-bounds write in the {fn} function in {sw} via a long "
        "option string.",
        "Buffer underflow in {sw} caused by a negative length field.",
        "Global buffer overflow in {sw} while decoding crafted input.",
    ],
    Category.TEMPORAL: [
        "Use-after-free vulnerability in {sw} allows attackers to cause "
        "a denial of service via vectors involving the {fn} function.",
        "Use after free in the {fn} handler of {sw}.",
        "Dangling pointer dereference in {sw} after stream teardown.",
    ],
    Category.NULL: [
        "NULL pointer dereference in the {fn} function in {sw} allows "
        "remote attackers to crash the service.",
        "{sw} allows a NULL pointer dereference via a truncated packet.",
    ],
    Category.OTHER: [
        "Double free vulnerability in {sw} via duplicate close events.",
        "Invalid free in the {fn} function in {sw}.",
        "Format string vulnerability in the logging code of {sw} allows "
        "attackers to read stack memory.",
    ],
    Category.NONE: [
        "SQL injection in the admin panel of {sw}.",
        "Cross-site scripting (XSS) in the web interface of {sw}.",
        "Integer overflow in {sw} leads to an incorrect computation "
        "result.",
        "Directory traversal in {sw} file download endpoint.",
        "Improper certificate validation in {sw}.",
        "Privilege escalation in {sw} due to weak default permissions.",
    ],
}

_FUNCTIONS = [
    "parse_chunk", "read_header", "decode_frame", "handle_request",
    "load_config", "tokenize", "process_record", "render_glyph",
    "inflate_block", "update_cache",
]

YEARS = [2012, 2013, 2014, 2015, 2016, 2017]


def _make_record(rng: random.Random, source: str, index: int, year: int,
                 category: str) -> VulnRecord:
    template = rng.choice(_TEMPLATES[category])
    summary = template.format(sw=rng.choice(_SOFTWARE),
                              fn=rng.choice(_FUNCTIONS))
    first_month = 3 if year == 2012 else 1
    last_month = 9 if year == 2017 else 12
    month = rng.randint(first_month, last_month)
    prefix = "CVE" if source == "cve" else "EDB"
    identifier = f"{prefix}-{year}-{10000 + index}"
    return VulnRecord(identifier, year, month, summary, source)


def _generate(rng: random.Random, source: str,
              rates: dict[str, list[int]]) -> list[VulnRecord]:
    records: list[VulnRecord] = []
    index = 0
    for year_pos, year in enumerate(YEARS):
        for category, per_year in rates.items():
            expected = per_year[year_pos]
            # Jitter by up to ±8% to avoid a suspiciously smooth series.
            count = max(1, round(expected * rng.uniform(0.92, 1.08)))
            for _ in range(count):
                records.append(
                    _make_record(rng, source, index, year, category))
                index += 1
        noise = _NOISE_RATE if source == "cve" else _NOISE_RATE // 4
        for _ in range(noise):
            records.append(
                _make_record(rng, source, index, year, Category.NONE))
            index += 1
    rng.shuffle(records)
    return records


def generate_cve_records(seed: int = 20180324) -> list[VulnRecord]:
    """The synthetic CVE corpus (seed defaults to the ASPLOS'18 date)."""
    return _generate(random.Random(seed), "cve", _CVE_RATES)


def generate_exploitdb_records(seed: int = 20180325) -> list[VulnRecord]:
    return _generate(random.Random(seed), "exploitdb", _EXPLOIT_RATES)
