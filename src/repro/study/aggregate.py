"""Aggregation of classified records into the Figure 1 / Figure 2 series,
plus the shape checks used by the experiment harness."""

from __future__ import annotations

from .classify import classify
from .generate import YEARS
from .records import Category, VulnRecord


def yearly_series(records: list[VulnRecord]) -> dict[str, dict[int, int]]:
    """category -> {year -> count} (the plotted series of Figs. 1/2)."""
    series: dict[str, dict[int, int]] = {
        category: {year: 0 for year in YEARS}
        for category in Category.MEMORY
    }
    for record in records:
        category = classify(record)
        if category in series:
            series[category][record.year] += 1
    return series


def totals(series: dict[str, dict[int, int]]) -> dict[str, int]:
    return {category: sum(by_year.values())
            for category, by_year in series.items()}


def format_table(series: dict[str, dict[int, int]], title: str) -> str:
    lines = [title,
             f"{'category':12}" + "".join(f"{y:>8}" for y in YEARS)
             + f"{'total':>9}"]
    for category in Category.MEMORY:
        by_year = series[category]
        lines.append(
            f"{category:12}"
            + "".join(f"{by_year[y]:>8}" for y in YEARS)
            + f"{sum(by_year.values()):>9}")
    return "\n".join(lines)


def shape_report(series: dict[str, dict[int, int]]) -> dict[str, bool]:
    """The qualitative claims of §2.1, checked against a series."""
    spatial = series[Category.SPATIAL]
    temporal = series[Category.TEMPORAL]
    null = series[Category.NULL]
    other = series[Category.OTHER]
    by_total = totals(series)
    return {
        "spatial_most_common_every_year": all(
            spatial[y] >= max(temporal[y], null[y], other[y])
            for y in YEARS),
        "spatial_all_time_high": spatial[2017] == max(spatial.values()),
        "spatial_rising": spatial[2017] > spatial[2012],
        "temporal_second": by_total[Category.TEMPORAL]
        >= by_total[Category.NULL],
        "null_third": by_total[Category.NULL]
        >= by_total[Category.OTHER],
        "other_least": by_total[Category.OTHER]
        == min(by_total.values()),
    }
