"""Keyword classification of vulnerability records (the paper's §2.1
method: "we performed keyword searches of the CVE and the ExploitDB
databases ... we grouped the errors into different bug categories").

Order matters: a summary mentioning both a use-after-free and a crash is
temporal, and "NULL pointer dereference" must not be caught by the
"dereference" in a dangling-pointer summary — hence the first-match-wins
priority list below.
"""

from __future__ import annotations

from .records import Category, VulnRecord

# (category, keywords) in priority order; matching is case-insensitive.
_KEYWORDS: list[tuple[str, tuple[str, ...]]] = [
    (Category.TEMPORAL, (
        "use-after-free", "use after free", "dangling pointer",
        "stale pointer",
    )),
    (Category.NULL, (
        "null pointer dereference", "null dereference",
        "null-pointer dereference",
    )),
    (Category.OTHER, (
        "double free", "invalid free", "format string",
    )),
    (Category.SPATIAL, (
        "buffer overflow", "buffer underflow", "out-of-bounds",
        "out of bounds", "oob read", "oob write", "heap overflow",
        "stack overflow", "global buffer",
    )),
]


def classify(record: VulnRecord) -> str:
    summary = record.summary.lower()
    for category, keywords in _KEYWORDS:
        for keyword in keywords:
            if keyword in summary:
                return category
    return Category.NONE


def classify_all(records: list[VulnRecord]) -> dict[str, list[VulnRecord]]:
    groups: dict[str, list[VulnRecord]] = {
        category: [] for category in (*Category.MEMORY, Category.NONE)}
    for record in records:
        groups[classify(record)].append(record)
    return groups
