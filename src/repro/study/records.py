"""Vulnerability-record model for the §2.1 keyword study.

The paper performs keyword searches over the CVE and ExploitDB databases
(2012-03 to 2017-09) and groups memory errors into four categories:
spatial (out-of-bounds), temporal (use-after-free), NULL dereferences, and
"other" (invalid free, double free, variadic-argument errors).

Those databases are not available offline, so :mod:`repro.study.generate`
synthesizes a corpus of records whose *category mix per year* follows the
shape the paper reports; the classification and aggregation pipeline then
operates exactly as the paper describes.
"""

from __future__ import annotations


class Category:
    SPATIAL = "spatial"
    TEMPORAL = "temporal"
    NULL = "null-deref"
    OTHER = "other"
    NONE = "none"  # not a memory error

    MEMORY = (SPATIAL, TEMPORAL, NULL, OTHER)


class VulnRecord:
    """One CVE or ExploitDB entry: an identifier plus free-text summary."""

    __slots__ = ("identifier", "year", "month", "summary", "source")

    def __init__(self, identifier: str, year: int, month: int,
                 summary: str, source: str):
        self.identifier = identifier
        self.year = year
        self.month = month
        self.summary = summary
        self.source = source  # "cve" | "exploitdb"

    def __repr__(self) -> str:
        return f"<{self.identifier} {self.year}-{self.month:02d}>"
