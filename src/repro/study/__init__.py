"""The §2.1 vulnerability study (Figures 1 and 2): synthetic records,
keyword classification, yearly aggregation, and shape checks."""

from .aggregate import format_table, shape_report, totals, yearly_series
from .classify import classify, classify_all
from .generate import (YEARS, generate_cve_records,
                       generate_exploitdb_records)
from .records import Category, VulnRecord

__all__ = ["format_table", "shape_report", "totals", "yearly_series",
           "classify", "classify_all", "YEARS", "generate_cve_records",
           "generate_exploitdb_records", "Category", "VulnRecord"]
