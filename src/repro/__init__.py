"""Reproduction of "Sulong, and Thanks For All the Bugs" (ASPLOS 2018).

The subsystems are importable independently:

* ``repro.core`` — Safe Sulong, the managed bug-finding engine
* ``repro.cfront`` — the C front end (clang -O0 analogue)
* ``repro.ir`` — the shared LLVM-flavoured IR
* ``repro.native`` — the native execution model (baseline substrate)
* ``repro.opt`` — the UB-exploiting optimizer
* ``repro.sanitizers`` — ASan- and memcheck-style baselines
* ``repro.tools`` — one uniform runner per §4.1 configuration
* ``repro.corpus`` / ``repro.study`` / ``repro.bench`` — the experiments

Command line: ``python -m repro program.c`` (see ``--help``).
"""

__version__ = "1.0.0"
