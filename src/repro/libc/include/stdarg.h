#ifndef _STDARG_H
#define _STDARG_H

/* Variadic arguments, exactly as in Figure 9 of the paper.
 *
 * Under Safe Sulong (__SAFE_SULONG__), the interpreter knows how many
 * variadic arguments a call passed (count_varargs) and exposes a checked
 * managed pointer to each (get_vararg).  va_arg dereferences that pointer
 * with the user-specified type, so a wrong type or a non-existent argument
 * is detected automatically.
 *
 * Under the native execution model (__NATIVE__), va_arg walks the
 * caller-written argument area on the simulated stack with no checks —
 * reading a non-existent argument silently yields stale stack memory,
 * which is why native tools miss these bugs (§4.1 case 5).
 */

#ifdef __SAFE_SULONG__

void *malloc(unsigned long size);
void free(void *ptr);
int count_varargs(void);
void *get_vararg(int index);

struct __sulong_varargs {
    int counter;
    void **args;
};

#define va_list struct __sulong_varargs *

#define va_start(ap, last) \
    do { \
        ap = (va_list)malloc(sizeof(struct __sulong_varargs)); \
        ap->args = (void **)malloc(sizeof(void *) * count_varargs()); \
        for (ap->counter = count_varargs() - 1; \
             ap->counter != -1; \
             ap->counter--) { \
            ap->args[ap->counter] = get_vararg(ap->counter); \
        } \
        ap->counter = 0; \
    } while (0)

#define va_arg(ap, type) (*((type *)(ap->args[ap->counter++])))

#define va_end(ap) \
    do { \
        free((void *)ap->args); \
        free((void *)ap); \
        ap = (va_list)0; \
    } while (0)

#define va_copy(dst, src) \
    do { \
        dst = (va_list)malloc(sizeof(struct __sulong_varargs)); \
        dst->counter = src->counter; \
        dst->args = src->args; \
    } while (0)

#else /* __NATIVE__ */

long __native_va_area(void);

#define va_list long

#define va_start(ap, last) \
    do { ap = __native_va_area(); } while (0)

#define va_arg(ap, type) (*((type *)((ap += 8) - 8)))

#define va_end(ap) do { ap = 0; } while (0)

#define va_copy(dst, src) do { dst = src; } while (0)

#endif

#endif
