#ifndef _STDIO_H
#define _STDIO_H

#include <stdarg.h>
#include <stddef.h>

#define EOF (-1)
#define SEEK_SET 0
#define SEEK_CUR 1
#define SEEK_END 2
#define BUFSIZ 1024
#define FILENAME_MAX 256

struct __FILE;
typedef struct __FILE FILE;

extern FILE *stdin;
extern FILE *stdout;
extern FILE *stderr;

int printf(const char *format, ...);
int fprintf(FILE *stream, const char *format, ...);
int sprintf(char *buffer, const char *format, ...);
int snprintf(char *buffer, size_t size, const char *format, ...);
int vfprintf(FILE *stream, const char *format, va_list ap);
int vsnprintf(char *buffer, size_t size, const char *format, va_list ap);

int scanf(const char *format, ...);
int fscanf(FILE *stream, const char *format, ...);
int sscanf(const char *input, const char *format, ...);

int putchar(int c);
int puts(const char *s);
int fputc(int c, FILE *stream);
int putc(int c, FILE *stream);
int fputs(const char *s, FILE *stream);

int getchar(void);
int fgetc(FILE *stream);
int getc(FILE *stream);
int ungetc(int c, FILE *stream);
char *fgets(char *buffer, int size, FILE *stream);
char *gets(char *buffer);

FILE *fopen(const char *path, const char *mode);
int fclose(FILE *stream);
int fflush(FILE *stream);
int feof(FILE *stream);
int ferror(FILE *stream);
size_t fread(void *buffer, size_t size, size_t count, FILE *stream);
size_t fwrite(const void *buffer, size_t size, size_t count, FILE *stream);

void perror(const char *prefix);

int fseek(FILE *stream, long offset, int whence);
long ftell(FILE *stream);
void rewind(FILE *stream);
int remove(const char *path);

#endif
