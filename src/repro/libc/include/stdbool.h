#ifndef _STDBOOL_H
#define _STDBOOL_H

#define bool _Bool
#define true 1
#define false 0
#define __bool_true_false_are_defined 1

#endif
