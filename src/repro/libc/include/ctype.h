#ifndef _CTYPE_H
#define _CTYPE_H

int isalpha(int c);
int isdigit(int c);
int isalnum(int c);
int isspace(int c);
int isupper(int c);
int islower(int c);
int ispunct(int c);
int isprint(int c);
int isgraph(int c);
int iscntrl(int c);
int isxdigit(int c);
int isblank(int c);
int toupper(int c);
int tolower(int c);

#endif
