#ifndef _MATH_H
#define _MATH_H

#define M_PI 3.14159265358979323846
#define M_E 2.7182818284590452354
#define HUGE_VAL (1.0e308 * 10.0)
#define INFINITY HUGE_VAL
#define NAN (HUGE_VAL - HUGE_VAL)

double sqrt(double x);
double sin(double x);
double cos(double x);
double tan(double x);
double asin(double x);
double acos(double x);
double atan(double x);
double atan2(double y, double x);
double sinh(double x);
double cosh(double x);
double tanh(double x);
double exp(double x);
double log(double x);
double log2(double x);
double log10(double x);
double pow(double base, double exponent);
double floor(double x);
double ceil(double x);
double fabs(double x);
double fmod(double x, double y);
double hypot(double x, double y);
double ldexp(double x, int exponent);
double fmin(double x, double y);
double fmax(double x, double y);
double round(double x);
double trunc(double x);

float sqrtf(float x);
float sinf(float x);
float cosf(float x);
float fabsf(float x);
float powf(float base, float exponent);

#endif
