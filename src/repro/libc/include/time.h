#ifndef _TIME_H
#define _TIME_H

typedef long time_t;
typedef long clock_t;

#define CLOCKS_PER_SEC 1000000

time_t time(time_t *out);
clock_t clock(void);

#endif
