#ifndef _ERRNO_H
#define _ERRNO_H

extern int errno;

#define EDOM 33
#define ERANGE 34
#define ENOENT 2
#define EINVAL 22

#endif
