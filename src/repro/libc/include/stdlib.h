#ifndef _STDLIB_H
#define _STDLIB_H

#include <stddef.h>

#define EXIT_SUCCESS 0
#define EXIT_FAILURE 1
#define RAND_MAX 2147483647

void *malloc(size_t size);
void *calloc(size_t count, size_t size);
void *realloc(void *ptr, size_t size);
void free(void *ptr);

void exit(int status);
void _Exit(int status);
void abort(void);
int atexit(void (*handler)(void));

int atoi(const char *s);
long atol(const char *s);
double atof(const char *s);
long strtol(const char *s, char **end, int base);
unsigned long strtoul(const char *s, char **end, int base);
double strtod(const char *s, char **end);

int abs(int value);
long labs(long value);
long long llabs(long long value);

int rand(void);
void srand(unsigned int seed);

void qsort(void *base, size_t count, size_t size,
           int (*compare)(const void *, const void *));
void *bsearch(const void *key, const void *base, size_t count, size_t size,
              int (*compare)(const void *, const void *));

char *getenv(const char *name);

#endif
