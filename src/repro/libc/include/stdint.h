#ifndef _STDINT_H
#define _STDINT_H

typedef signed char int8_t;
typedef unsigned char uint8_t;
typedef short int16_t;
typedef unsigned short uint16_t;
typedef int int32_t;
typedef unsigned int uint32_t;
typedef long int64_t;
typedef unsigned long uint64_t;

typedef long intptr_t;
typedef unsigned long uintptr_t;
typedef long intmax_t;
typedef unsigned long uintmax_t;

#define INT8_MIN (-128)
#define INT8_MAX 127
#define UINT8_MAX 255
#define INT16_MIN (-32768)
#define INT16_MAX 32767
#define UINT16_MAX 65535
#define INT32_MIN (-2147483647 - 1)
#define INT32_MAX 2147483647
#define UINT32_MAX 4294967295u
#define INT64_MIN (-9223372036854775807L - 1)
#define INT64_MAX 9223372036854775807L
#define UINT64_MAX 18446744073709551615uL
#define SIZE_MAX UINT64_MAX

#endif
