#ifndef _ASSERT_H
#define _ASSERT_H

void __sulong_assert_fail(const char *expression, const char *file,
                          int line);

#ifdef NDEBUG
#define assert(expression) ((void)0)
#else
#define assert(expression) \
    ((expression) ? (void)0 \
                  : __sulong_assert_fail(#expression, __FILE__, __LINE__))
#endif

#endif
