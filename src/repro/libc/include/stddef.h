#ifndef _STDDEF_H
#define _STDDEF_H

typedef unsigned long size_t;
typedef long ptrdiff_t;
typedef int wchar_t;

#define NULL ((void *)0)
#define offsetof(type, member) ((size_t)&(((type *)0)->member))

#endif
