/* Character classification, straightforward ASCII implementations. */

#include <ctype.h>

int isdigit(int c) {
    return c >= '0' && c <= '9';
}

int isupper(int c) {
    return c >= 'A' && c <= 'Z';
}

int islower(int c) {
    return c >= 'a' && c <= 'z';
}

int isalpha(int c) {
    return isupper(c) || islower(c);
}

int isalnum(int c) {
    return isalpha(c) || isdigit(c);
}

int isspace(int c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
        || c == '\v';
}

int isprint(int c) {
    return c >= 32 && c < 127;
}

int isgraph(int c) {
    return c > 32 && c < 127;
}

int iscntrl(int c) {
    return (c >= 0 && c < 32) || c == 127;
}

int ispunct(int c) {
    return isgraph(c) && !isalnum(c);
}

int isxdigit(int c) {
    return isdigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

int toupper(int c) {
    if (islower(c)) {
        return c - 'a' + 'A';
    }
    return c;
}

int tolower(int c) {
    if (isupper(c)) {
        return c - 'A' + 'a';
    }
    return c;
}

int isblank(int c) {
    return c == ' ' || c == '\t';
}
