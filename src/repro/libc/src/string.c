/* String and memory functions, written in plain standard C.
 *
 * The paper (P4, §3.1): production libcs use word-wise tricks (e.g. the
 * Hacker's Delight strlen) that read out of bounds and defeat bug-finding
 * tools.  This libc is "optimized for safety instead of performance":
 * every function is a simple byte loop, so the managed engine checks every
 * access automatically.
 */

#include <stddef.h>
#include <stdlib.h>
#include <string.h>

size_t strlen(const char *s) {
    size_t n = 0;
    while (s[n] != '\0') {
        n++;
    }
    return n;
}

char *strcpy(char *dst, const char *src) {
    size_t i = 0;
    while (src[i] != '\0') {
        dst[i] = src[i];
        i++;
    }
    dst[i] = '\0';
    return dst;
}

char *strncpy(char *dst, const char *src, size_t n) {
    size_t i = 0;
    while (i < n && src[i] != '\0') {
        dst[i] = src[i];
        i++;
    }
    while (i < n) {
        dst[i] = '\0';
        i++;
    }
    return dst;
}

char *strcat(char *dst, const char *src) {
    size_t base = strlen(dst);
    size_t i = 0;
    while (src[i] != '\0') {
        dst[base + i] = src[i];
        i++;
    }
    dst[base + i] = '\0';
    return dst;
}

char *strncat(char *dst, const char *src, size_t n) {
    size_t base = strlen(dst);
    size_t i = 0;
    while (i < n && src[i] != '\0') {
        dst[base + i] = src[i];
        i++;
    }
    dst[base + i] = '\0';
    return dst;
}

int strcmp(const char *a, const char *b) {
    size_t i = 0;
    while (a[i] != '\0' && a[i] == b[i]) {
        i++;
    }
    return (unsigned char)a[i] - (unsigned char)b[i];
}

int strncmp(const char *a, const char *b, size_t n) {
    size_t i = 0;
    if (n == 0) {
        return 0;
    }
    while (i + 1 < n && a[i] != '\0' && a[i] == b[i]) {
        i++;
    }
    return (unsigned char)a[i] - (unsigned char)b[i];
}

static int __lower(int c) {
    if (c >= 'A' && c <= 'Z') {
        return c - 'A' + 'a';
    }
    return c;
}

int strcasecmp(const char *a, const char *b) {
    size_t i = 0;
    while (a[i] != '\0' && __lower((unsigned char)a[i]) ==
           __lower((unsigned char)b[i])) {
        i++;
    }
    return __lower((unsigned char)a[i]) - __lower((unsigned char)b[i]);
}

char *strchr(const char *s, int c) {
    size_t i = 0;
    char target = (char)c;
    while (s[i] != '\0') {
        if (s[i] == target) {
            return (char *)(s + i);
        }
        i++;
    }
    if (target == '\0') {
        return (char *)(s + i);
    }
    return NULL;
}

char *strrchr(const char *s, int c) {
    char target = (char)c;
    char *found = NULL;
    size_t i = 0;
    while (s[i] != '\0') {
        if (s[i] == target) {
            found = (char *)(s + i);
        }
        i++;
    }
    if (target == '\0') {
        return (char *)(s + i);
    }
    return found;
}

char *strstr(const char *haystack, const char *needle) {
    size_t i;
    size_t j;
    if (needle[0] == '\0') {
        return (char *)haystack;
    }
    for (i = 0; haystack[i] != '\0'; i++) {
        for (j = 0; needle[j] != '\0'; j++) {
            if (haystack[i + j] != needle[j]) {
                break;
            }
        }
        if (needle[j] == '\0') {
            return (char *)(haystack + i);
        }
    }
    return NULL;
}

static int __in_set(char c, const char *set) {
    size_t i;
    for (i = 0; set[i] != '\0'; i++) {
        if (set[i] == c) {
            return 1;
        }
    }
    return 0;
}

size_t strspn(const char *s, const char *accept) {
    size_t i = 0;
    while (s[i] != '\0' && __in_set(s[i], accept)) {
        i++;
    }
    return i;
}

size_t strcspn(const char *s, const char *reject) {
    size_t i = 0;
    while (s[i] != '\0' && !__in_set(s[i], reject)) {
        i++;
    }
    return i;
}

char *strpbrk(const char *s, const char *accept) {
    size_t i;
    for (i = 0; s[i] != '\0'; i++) {
        if (__in_set(s[i], accept)) {
            return (char *)(s + i);
        }
    }
    return NULL;
}

/* strtok keeps its continuation state in a static pointer, like glibc.
 * ASan's missing interceptor for this function is §4.1 case 2. */
static char *__strtok_state = NULL;

char *strtok(char *s, const char *delim) {
    char *start;
    if (s == NULL) {
        s = __strtok_state;
        if (s == NULL) {
            return NULL;
        }
    }
    while (*s != '\0' && __in_set(*s, delim)) {
        s++;
    }
    if (*s == '\0') {
        __strtok_state = NULL;
        return NULL;
    }
    start = s;
    while (*s != '\0' && !__in_set(*s, delim)) {
        s++;
    }
    if (*s != '\0') {
        *s = '\0';
        __strtok_state = s + 1;
    } else {
        __strtok_state = NULL;
    }
    return start;
}

char *strdup(const char *s) {
    size_t n = strlen(s);
    char *copy = (char *)malloc(n + 1);
    size_t i;
    if (copy == NULL) {
        return NULL;
    }
    for (i = 0; i < n; i++) {
        copy[i] = s[i];
    }
    copy[n] = '\0';
    return copy;
}

char *strerror(int errnum) {
    if (errnum == 0) {
        return (char *)"Success";
    }
    return (char *)"Unknown error";
}

void *memcpy(void *dst, const void *src, size_t n) {
    unsigned char *d = (unsigned char *)dst;
    const unsigned char *s = (const unsigned char *)src;
    size_t i;
    for (i = 0; i < n; i++) {
        d[i] = s[i];
    }
    return dst;
}

void *memmove(void *dst, const void *src, size_t n) {
    unsigned char *d = (unsigned char *)dst;
    const unsigned char *s = (const unsigned char *)src;
    size_t i;
    if (d < s) {
        for (i = 0; i < n; i++) {
            d[i] = s[i];
        }
    } else {
        for (i = n; i > 0; i--) {
            d[i - 1] = s[i - 1];
        }
    }
    return dst;
}

void *memset(void *s, int c, size_t n) {
    unsigned char *p = (unsigned char *)s;
    size_t i;
    for (i = 0; i < n; i++) {
        p[i] = (unsigned char)c;
    }
    return s;
}

int memcmp(const void *a, const void *b, size_t n) {
    const unsigned char *x = (const unsigned char *)a;
    const unsigned char *y = (const unsigned char *)b;
    size_t i;
    for (i = 0; i < n; i++) {
        if (x[i] != y[i]) {
            return x[i] - y[i];
        }
    }
    return 0;
}

void *memchr(const void *s, int c, size_t n) {
    const unsigned char *p = (const unsigned char *)s;
    size_t i;
    for (i = 0; i < n; i++) {
        if (p[i] == (unsigned char)c) {
            return (void *)(p + i);
        }
    }
    return NULL;
}

int strncasecmp(const char *a, const char *b, size_t n) {
    size_t i;
    for (i = 0; i < n; i++) {
        int x = __lower((unsigned char)a[i]);
        int y = __lower((unsigned char)b[i]);
        if (x != y || x == 0) {
            return x - y;
        }
    }
    return 0;
}

size_t strnlen(const char *s, size_t max) {
    size_t n = 0;
    while (n < max && s[n] != '\0') {
        n++;
    }
    return n;
}
