/* stdio: FILE streams, printf/scanf families.
 *
 * printf parses the format string in C and calls interpreter intrinsics
 * only to render numbers to text (the paper's example: printf("%p") calls
 * a Java function to obtain the textual representation of a pointer).
 * Every variadic argument access goes through va_arg from Figure 9, so a
 * wrong format specifier (e.g. "%ld" for an int) or a missing argument is
 * detected by the managed engine's automatic checks (§4.1 cases 2 and 5).
 */

#include <stdarg.h>
#include <stddef.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

long __sulong_write(int fd, const void *buffer, long count);
long __sulong_read(int fd, void *buffer, long count);
int __sulong_open(const char *path, const char *mode);
int __sulong_close(int fd);
long __sulong_format_long(char *buffer, long size, long value, int base,
                          int is_unsigned, int uppercase);
long __sulong_format_double(char *buffer, long size, double value,
                            int precision, int style);
long __sulong_format_pointer(char *buffer, long size, const void *value);
double __sulong_parse_double(const char *text, long *consumed);

struct __FILE {
    int fd;
    int ungot_valid;
    char ungot;
    int eof;
    int err;
};

static FILE __stdin_file = {0, 0, 0, 0, 0};
static FILE __stdout_file = {1, 0, 0, 0, 0};
static FILE __stderr_file = {2, 0, 0, 0, 0};

FILE *stdin = &__stdin_file;
FILE *stdout = &__stdout_file;
FILE *stderr = &__stderr_file;

/* -- character I/O --------------------------------------------------------- */

int fputc(int c, FILE *stream) {
    char byte = (char)c;
    if (__sulong_write(stream->fd, &byte, 1) != 1) {
        stream->err = 1;
        return EOF;
    }
    return (unsigned char)byte;
}

int putc(int c, FILE *stream) {
    return fputc(c, stream);
}

int putchar(int c) {
    return fputc(c, stdout);
}

int fputs(const char *s, FILE *stream) {
    size_t n = strlen(s);
    if (__sulong_write(stream->fd, s, (long)n) != (long)n) {
        stream->err = 1;
        return EOF;
    }
    return 0;
}

int puts(const char *s) {
    if (fputs(s, stdout) == EOF) {
        return EOF;
    }
    return fputc('\n', stdout);
}

int fgetc(FILE *stream) {
    char byte;
    if (stream->ungot_valid) {
        stream->ungot_valid = 0;
        return (unsigned char)stream->ungot;
    }
    if (__sulong_read(stream->fd, &byte, 1) != 1) {
        stream->eof = 1;
        return EOF;
    }
    return (unsigned char)byte;
}

int getc(FILE *stream) {
    return fgetc(stream);
}

int getchar(void) {
    return fgetc(stdin);
}

int ungetc(int c, FILE *stream) {
    if (c == EOF || stream->ungot_valid) {
        return EOF;
    }
    stream->ungot = (char)c;
    stream->ungot_valid = 1;
    stream->eof = 0;
    return c;
}

char *fgets(char *buffer, int size, FILE *stream) {
    int i = 0;
    int c;
    if (size <= 0) {
        return NULL;
    }
    while (i < size - 1) {
        c = fgetc(stream);
        if (c == EOF) {
            break;
        }
        buffer[i] = (char)c;
        i++;
        if (c == '\n') {
            break;
        }
    }
    if (i == 0) {
        return NULL;
    }
    buffer[i] = '\0';
    return buffer;
}

/* gets() has no bound by design — under Safe Sulong an overflowing line is
 * still detected, because the destination object itself is checked. */
char *gets(char *buffer) {
    int i = 0;
    int c;
    while (1) {
        c = fgetc(stdin);
        if (c == EOF || c == '\n') {
            break;
        }
        buffer[i] = (char)c;
        i++;
    }
    if (i == 0 && c == EOF) {
        return NULL;
    }
    buffer[i] = '\0';
    return buffer;
}

/* -- streams ---------------------------------------------------------------- */

FILE *fopen(const char *path, const char *mode) {
    int fd = __sulong_open(path, mode);
    FILE *stream;
    if (fd < 0) {
        return NULL;
    }
    stream = (FILE *)malloc(sizeof(FILE));
    if (stream == NULL) {
        return NULL;
    }
    stream->fd = fd;
    stream->ungot_valid = 0;
    stream->ungot = 0;
    stream->eof = 0;
    stream->err = 0;
    return stream;
}

int fclose(FILE *stream) {
    int result = __sulong_close(stream->fd);
    if (stream != stdin && stream != stdout && stream != stderr) {
        free(stream);
    }
    return result;
}

int fflush(FILE *stream) {
    (void)stream;
    return 0;
}

int feof(FILE *stream) {
    return stream->eof;
}

int ferror(FILE *stream) {
    return stream->err;
}

size_t fread(void *buffer, size_t size, size_t count, FILE *stream) {
    long wanted = (long)(size * count);
    long got = 0;
    char *out = (char *)buffer;
    int c;
    while (got < wanted) {
        c = fgetc(stream);
        if (c == EOF) {
            break;
        }
        out[got] = (char)c;
        got++;
    }
    if (size == 0) {
        return 0;
    }
    return (size_t)got / size;
}

size_t fwrite(const void *buffer, size_t size, size_t count, FILE *stream) {
    long wanted = (long)(size * count);
    long written = __sulong_write(stream->fd, buffer, wanted);
    if (written < 0) {
        stream->err = 1;
        return 0;
    }
    if (size == 0) {
        return 0;
    }
    return (size_t)written / size;
}

void perror(const char *prefix) {
    if (prefix != NULL && prefix[0] != '\0') {
        fputs(prefix, stderr);
        fputs(": ", stderr);
    }
    fputs("error\n", stderr);
}

/* -- printf ------------------------------------------------------------------ */

struct __sink {
    FILE *stream;
    char *buffer;
    long capacity;
    long length;
};

static void __sink_putc(struct __sink *sink, char c) {
    if (sink->stream != NULL) {
        fputc(c, sink->stream);
    } else if (sink->capacity < 0 || sink->length < sink->capacity - 1) {
        sink->buffer[sink->length] = c;
    }
    sink->length++;
}

static void __sink_pad(struct __sink *sink, char pad, long count) {
    long i;
    for (i = 0; i < count; i++) {
        __sink_putc(sink, pad);
    }
}

static void __sink_text(struct __sink *sink, const char *text, long length,
                        long width, int left, char pad) {
    long deficit = width - length;
    long i;
    if (!left && deficit > 0) {
        __sink_pad(sink, pad, deficit);
    }
    for (i = 0; i < length; i++) {
        __sink_putc(sink, text[i]);
    }
    if (left && deficit > 0) {
        __sink_pad(sink, ' ', deficit);
    }
}

static int __format_core(struct __sink *sink, const char *format,
                         va_list ap) {
    long i = 0;
    char tmp[96];

    while (format[i] != '\0') {
        char c = format[i];
        int left = 0;
        int zero = 0;
        int plus = 0;
        int space = 0;
        int alt = 0;
        long width = 0;
        long precision = -1;
        int longs = 0;
        char conv;
        long length;
        char pad;

        if (c != '%') {
            __sink_putc(sink, c);
            i++;
            continue;
        }
        i++;
        /* flags */
        while (1) {
            c = format[i];
            if (c == '-') { left = 1; }
            else if (c == '0') { zero = 1; }
            else if (c == '+') { plus = 1; }
            else if (c == ' ') { space = 1; }
            else if (c == '#') { alt = 1; }
            else { break; }
            i++;
        }
        /* width */
        if (format[i] == '*') {
            width = va_arg(ap, int);
            if (width < 0) {
                left = 1;
                width = -width;
            }
            i++;
        } else {
            while (format[i] >= '0' && format[i] <= '9') {
                width = width * 10 + (format[i] - '0');
                i++;
            }
        }
        /* precision */
        if (format[i] == '.') {
            i++;
            precision = 0;
            if (format[i] == '*') {
                precision = va_arg(ap, int);
                i++;
            } else {
                while (format[i] >= '0' && format[i] <= '9') {
                    precision = precision * 10 + (format[i] - '0');
                    i++;
                }
            }
        }
        /* length modifiers */
        while (format[i] == 'l' || format[i] == 'h' || format[i] == 'z') {
            if (format[i] == 'l' || format[i] == 'z') {
                longs++;
            }
            i++;
        }
        conv = format[i];
        if (conv == '\0') {
            break;
        }
        i++;
        pad = (zero && !left) ? '0' : ' ';

        if (conv == '%') {
            __sink_putc(sink, '%');
        } else if (conv == 'c') {
            tmp[0] = (char)va_arg(ap, int);
            __sink_text(sink, tmp, 1, width, left, ' ');
        } else if (conv == 's') {
            const char *s = va_arg(ap, const char *);
            if (s == NULL) {
                s = "(null)";
            }
            length = (long)strlen(s);
            if (precision >= 0 && length > precision) {
                length = precision;
            }
            __sink_text(sink, s, length, width, left, ' ');
        } else if (conv == 'd' || conv == 'i') {
            long value;
            long start = 0;
            if (longs > 0) {
                value = va_arg(ap, long);
            } else {
                value = va_arg(ap, int);
            }
            if (value >= 0 && plus) {
                tmp[0] = '+';
                start = 1;
            } else if (value >= 0 && space) {
                tmp[0] = ' ';
                start = 1;
            }
            length = start + __sulong_format_long(tmp + start,
                                                  96 - start, value, 10,
                                                  0, 0);
            __sink_text(sink, tmp, length, width, left, pad);
        } else if (conv == 'u' || conv == 'x' || conv == 'X'
                   || conv == 'o') {
            unsigned long value;
            int base = 10;
            long start = 0;
            if (conv == 'x' || conv == 'X') {
                base = 16;
            } else if (conv == 'o') {
                base = 8;
            }
            if (longs > 0) {
                value = va_arg(ap, unsigned long);
            } else {
                value = va_arg(ap, unsigned int);
            }
            if (alt && base == 16 && value != 0) {
                tmp[0] = '0';
                tmp[1] = (conv == 'X') ? 'X' : 'x';
                start = 2;
            }
            length = start + __sulong_format_long(
                tmp + start, 96 - start, (long)value, base, 1,
                conv == 'X');
            __sink_text(sink, tmp, length, width, left, pad);
        } else if (conv == 'f' || conv == 'F' || conv == 'e'
                   || conv == 'E' || conv == 'g' || conv == 'G') {
            double value = va_arg(ap, double);
            int style = 'f';
            if (conv == 'e' || conv == 'E') {
                style = 'e';
            } else if (conv == 'g' || conv == 'G') {
                style = 'g';
            }
            length = __sulong_format_double(tmp, 96, value,
                                            (int)precision, style);
            __sink_text(sink, tmp, length, width, left, pad);
        } else if (conv == 'p') {
            void *value = va_arg(ap, void *);
            length = __sulong_format_pointer(tmp, 96, value);
            __sink_text(sink, tmp, length, width, left, ' ');
        } else {
            /* Unknown conversion: emit it literally, like glibc. */
            __sink_putc(sink, '%');
            __sink_putc(sink, conv);
        }
    }
    return (int)sink->length;
}

int vfprintf(FILE *stream, const char *format, va_list ap) {
    struct __sink sink;
    sink.stream = stream;
    sink.buffer = NULL;
    sink.capacity = 0;
    sink.length = 0;
    return __format_core(&sink, format, ap);
}

int vsnprintf(char *buffer, size_t size, const char *format, va_list ap) {
    struct __sink sink;
    int total;
    sink.stream = NULL;
    sink.buffer = buffer;
    sink.capacity = (long)size;
    sink.length = 0;
    total = __format_core(&sink, format, ap);
    if (size > 0) {
        long end = sink.length;
        if (end > (long)size - 1) {
            end = (long)size - 1;
        }
        buffer[end] = '\0';
    }
    return total;
}

int printf(const char *format, ...) {
    va_list ap;
    int n;
    va_start(ap, format);
    n = vfprintf(stdout, format, ap);
    va_end(ap);
    return n;
}

int fprintf(FILE *stream, const char *format, ...) {
    va_list ap;
    int n;
    va_start(ap, format);
    n = vfprintf(stream, format, ap);
    va_end(ap);
    return n;
}

int sprintf(char *buffer, const char *format, ...) {
    va_list ap;
    int n;
    struct __sink sink;
    va_start(ap, format);
    sink.stream = NULL;
    sink.buffer = buffer;
    sink.capacity = -1; /* unbounded, like the real (unsafe) sprintf */
    sink.length = 0;
    n = __format_core(&sink, format, ap);
    buffer[n] = '\0';
    va_end(ap);
    return n;
}

int snprintf(char *buffer, size_t size, const char *format, ...) {
    va_list ap;
    int n;
    va_start(ap, format);
    n = vsnprintf(buffer, size, format, ap);
    va_end(ap);
    return n;
}

/* -- scanf ------------------------------------------------------------------- */

struct __scan_source {
    FILE *stream;
    const char *text;
    long pos;
};

static int __scan_getc(struct __scan_source *src) {
    if (src->stream != NULL) {
        return fgetc(src->stream);
    }
    if (src->text[src->pos] == '\0') {
        return EOF;
    }
    return (unsigned char)src->text[src->pos++];
}

static void __scan_ungetc(struct __scan_source *src, int c) {
    if (c == EOF) {
        return;
    }
    if (src->stream != NULL) {
        ungetc(c, src->stream);
    } else {
        src->pos--;
    }
}

static int __scan_skip_space(struct __scan_source *src) {
    int c;
    do {
        c = __scan_getc(src);
    } while (c == ' ' || c == '\t' || c == '\n' || c == '\r');
    return c;
}

static int __scan_core(struct __scan_source *src, const char *format,
                       va_list ap) {
    int assigned = 0;
    long i = 0;
    int c;
    char buf[128];

    while (format[i] != '\0') {
        char f = format[i];
        if (f == ' ' || f == '\t' || f == '\n') {
            c = __scan_skip_space(src);
            __scan_ungetc(src, c);
            i++;
            continue;
        }
        if (f != '%') {
            c = __scan_getc(src);
            if (c != (unsigned char)f) {
                __scan_ungetc(src, c);
                return assigned;
            }
            i++;
            continue;
        }
        i++;
        {
            long width = 0;
            int longs = 0;
            char conv;
            while (format[i] >= '0' && format[i] <= '9') {
                width = width * 10 + (format[i] - '0');
                i++;
            }
            while (format[i] == 'l' || format[i] == 'h'
                   || format[i] == 'z') {
                if (format[i] == 'l' || format[i] == 'z') {
                    longs++;
                }
                i++;
            }
            conv = format[i];
            i++;
            if (conv == '%') {
                c = __scan_getc(src);
                if (c != '%') {
                    __scan_ungetc(src, c);
                    return assigned;
                }
                continue;
            }
            if (conv == 'c') {
                char *out = va_arg(ap, char *);
                long n = (width > 0) ? width : 1;
                long k;
                for (k = 0; k < n; k++) {
                    c = __scan_getc(src);
                    if (c == EOF) {
                        return assigned;
                    }
                    out[k] = (char)c;
                }
                assigned++;
                continue;
            }
            if (conv == 's') {
                char *out = va_arg(ap, char *);
                long k = 0;
                c = __scan_skip_space(src);
                if (c == EOF) {
                    return assigned;
                }
                while (c != EOF && c != ' ' && c != '\t' && c != '\n'
                       && c != '\r' && (width == 0 || k < width)) {
                    out[k] = (char)c;
                    k++;
                    c = __scan_getc(src);
                }
                __scan_ungetc(src, c);
                out[k] = '\0';
                assigned++;
                continue;
            }
            if (conv == 'd' || conv == 'i' || conv == 'u' || conv == 'x') {
                long k = 0;
                long value;
                int base = (conv == 'x') ? 16 : 10;
                c = __scan_skip_space(src);
                if (c == '-' || c == '+') {
                    buf[k] = (char)c;
                    k++;
                    c = __scan_getc(src);
                }
                while (c != EOF && k < 126
                       && ((c >= '0' && c <= '9')
                           || (base == 16
                               && ((c >= 'a' && c <= 'f')
                                   || (c >= 'A' && c <= 'F'))))) {
                    buf[k] = (char)c;
                    k++;
                    c = __scan_getc(src);
                }
                __scan_ungetc(src, c);
                if (k == 0 || (k == 1 && (buf[0] == '-' || buf[0] == '+'))) {
                    return assigned;
                }
                buf[k] = '\0';
                value = strtol(buf, NULL, base);
                if (longs > 0) {
                    long *out = va_arg(ap, long *);
                    *out = value;
                } else {
                    int *out = va_arg(ap, int *);
                    *out = (int)value;
                }
                assigned++;
                continue;
            }
            if (conv == 'f' || conv == 'e' || conv == 'g') {
                long k = 0;
                double value;
                c = __scan_skip_space(src);
                while (c != EOF && k < 126
                       && ((c >= '0' && c <= '9') || c == '-' || c == '+'
                           || c == '.' || c == 'e' || c == 'E')) {
                    buf[k] = (char)c;
                    k++;
                    c = __scan_getc(src);
                }
                __scan_ungetc(src, c);
                if (k == 0) {
                    return assigned;
                }
                buf[k] = '\0';
                value = __sulong_parse_double(buf, NULL);
                if (longs > 0) {
                    double *out = va_arg(ap, double *);
                    *out = value;
                } else {
                    float *out = va_arg(ap, float *);
                    *out = (float)value;
                }
                assigned++;
                continue;
            }
            /* Unknown conversion: stop scanning. */
            return assigned;
        }
    }
    return assigned;
}

int fscanf(FILE *stream, const char *format, ...) {
    va_list ap;
    int n;
    struct __scan_source src;
    va_start(ap, format);
    src.stream = stream;
    src.text = NULL;
    src.pos = 0;
    n = __scan_core(&src, format, ap);
    va_end(ap);
    return n;
}

int scanf(const char *format, ...) {
    va_list ap;
    int n;
    struct __scan_source src;
    va_start(ap, format);
    src.stream = stdin;
    src.text = NULL;
    src.pos = 0;
    n = __scan_core(&src, format, ap);
    va_end(ap);
    return n;
}

int sscanf(const char *input, const char *format, ...) {
    va_list ap;
    int n;
    struct __scan_source src;
    va_start(ap, format);
    src.stream = NULL;
    src.text = input;
    src.pos = 0;
    n = __scan_core(&src, format, ap);
    va_end(ap);
    return n;
}

/* -- positioning --------------------------------------------------------- */

long __sulong_lseek(int fd, long offset, int whence);
int __sulong_remove(const char *path);

int fseek(FILE *stream, long offset, int whence) {
    if (__sulong_lseek(stream->fd, offset, whence) < 0) {
        return -1;
    }
    stream->ungot_valid = 0;
    stream->eof = 0;
    return 0;
}

long ftell(FILE *stream) {
    long pos = __sulong_lseek(stream->fd, 0, SEEK_CUR);
    if (stream->ungot_valid && pos > 0) {
        return pos - 1;
    }
    return pos;
}

void rewind(FILE *stream) {
    fseek(stream, 0L, SEEK_SET);
    stream->err = 0;
}

int remove(const char *path) {
    return __sulong_remove(path);
}
