/* stdlib: conversions, PRNG, sorting, process exit.
 *
 * malloc/calloc/realloc/free and _Exit are interpreter intrinsics (the
 * "system call" layer of §3.1); everything else here is plain C.
 */

#include <ctype.h>
#include <stddef.h>
#include <stdlib.h>
#include <string.h>

int errno = 0;

double __sulong_parse_double(const char *text, long *consumed);

/* -- integer parsing ----------------------------------------------------- */

static int __digit_value(char c, int base) {
    int value;
    if (c >= '0' && c <= '9') {
        value = c - '0';
    } else if (c >= 'a' && c <= 'z') {
        value = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'Z') {
        value = c - 'A' + 10;
    } else {
        return -1;
    }
    if (value >= base) {
        return -1;
    }
    return value;
}

long strtol(const char *s, char **end, int base) {
    long result = 0;
    int negative = 0;
    size_t i = 0;
    int digit;
    int any = 0;

    while (isspace((unsigned char)s[i])) {
        i++;
    }
    if (s[i] == '-') {
        negative = 1;
        i++;
    } else if (s[i] == '+') {
        i++;
    }
    if ((base == 0 || base == 16) && s[i] == '0'
            && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
        i += 2;
        base = 16;
    } else if (base == 0 && s[i] == '0') {
        base = 8;
    } else if (base == 0) {
        base = 10;
    }
    while ((digit = __digit_value(s[i], base)) >= 0) {
        result = result * base + digit;
        any = 1;
        i++;
    }
    if (end != NULL) {
        *end = (char *)(any ? s + i : s);
    }
    if (negative) {
        return -result;
    }
    return result;
}

unsigned long strtoul(const char *s, char **end, int base) {
    return (unsigned long)strtol(s, end, base);
}

int atoi(const char *s) {
    return (int)strtol(s, NULL, 10);
}

long atol(const char *s) {
    return strtol(s, NULL, 10);
}

double strtod(const char *s, char **end) {
    long consumed = 0;
    double value = __sulong_parse_double(s, &consumed);
    if (end != NULL) {
        *end = (char *)(s + consumed);
    }
    return value;
}

double atof(const char *s) {
    return strtod(s, NULL);
}

int abs(int value) {
    if (value < 0) {
        return -value;
    }
    return value;
}

long labs(long value) {
    if (value < 0) {
        return -value;
    }
    return value;
}

/* -- PRNG: the classic POSIX example LCG --------------------------------- */

static unsigned long __rand_state = 1;

int rand(void) {
    __rand_state = __rand_state * 6364136223846793005uL
        + 1442695040888963407uL;
    return (int)((__rand_state >> 33) & 0x7fffffff);
}

void srand(unsigned int seed) {
    __rand_state = seed;
}

/* -- qsort / bsearch ------------------------------------------------------ */

static void __swap_bytes(char *a, char *b, size_t size) {
    size_t i;
    for (i = 0; i < size; i++) {
        char tmp = a[i];
        a[i] = b[i];
        b[i] = tmp;
    }
}

static void __qsort_range(char *base, long lo, long hi, size_t size,
                          int (*compare)(const void *, const void *)) {
    long i;
    long store;
    char *pivot;
    if (lo >= hi) {
        return;
    }
    pivot = base + hi * size;
    store = lo;
    for (i = lo; i < hi; i++) {
        if (compare(base + i * size, pivot) < 0) {
            __swap_bytes(base + i * size, base + store * size, size);
            store++;
        }
    }
    __swap_bytes(base + store * size, pivot, size);
    __qsort_range(base, lo, store - 1, size, compare);
    __qsort_range(base, store + 1, hi, size, compare);
}

void qsort(void *base, size_t count, size_t size,
           int (*compare)(const void *, const void *)) {
    if (count > 1) {
        __qsort_range((char *)base, 0, (long)count - 1, size, compare);
    }
}

void *bsearch(const void *key, const void *base, size_t count, size_t size,
              int (*compare)(const void *, const void *)) {
    size_t lo = 0;
    size_t hi = count;
    while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        const char *probe = (const char *)base + mid * size;
        int order = compare(key, probe);
        if (order == 0) {
            return (void *)probe;
        }
        if (order < 0) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return NULL;
}

/* -- exit with atexit handlers -------------------------------------------- */

#define ATEXIT_MAX 32

static void (*__atexit_handlers[ATEXIT_MAX])(void);
static int __atexit_count = 0;

int atexit(void (*handler)(void)) {
    if (__atexit_count >= ATEXIT_MAX) {
        return -1;
    }
    __atexit_handlers[__atexit_count] = handler;
    __atexit_count++;
    return 0;
}

void exit(int status) {
    while (__atexit_count > 0) {
        __atexit_count--;
        __atexit_handlers[__atexit_count]();
    }
    _Exit(status);
}

char *getenv(const char *name) {
    (void)name;
    return NULL;
}

long long llabs(long long value) {
    if (value < 0) {
        return -value;
    }
    return value;
}
