"""Compiles and caches the bundled safety-first libc (paper §3.1).

The libc is written in standard C (``src/*.c``), performs no unsafe
word-size tricks, and sits on top of the interpreter's intrinsics.  It is
compiled once per process with ``__SAFE_SULONG__`` defined and linked into
every program the managed engine runs.
"""

from __future__ import annotations

import hashlib
import os

from .. import ir
from ..cfront import compile_file

_CACHED: ir.Module | None = None


def libc_dir() -> str:
    return os.path.dirname(os.path.abspath(__file__))


def include_dir() -> str:
    return os.path.join(libc_dir(), "include")


def source_files() -> list[str]:
    src = os.path.join(libc_dir(), "src")
    return sorted(
        os.path.join(src, name) for name in os.listdir(src)
        if name.endswith(".c"))


def _bundle_inputs() -> list[list[str]]:
    """(relative path, sha256) for every file that feeds the libc build
    — the key of the bundle artifact, so any source or header edit is a
    miss by construction (no separate manifest check needed)."""
    include = include_dir()
    paths = list(source_files())
    paths += sorted(os.path.join(include, name)
                    for name in os.listdir(include)
                    if name.endswith(".h"))
    root = libc_dir()
    entries = []
    for path in paths:
        with open(path, "rb") as handle:
            digest = hashlib.sha256(handle.read()).hexdigest()
        entries.append([os.path.relpath(path, root), digest])
    return entries


def _load_bundle(cache) -> ir.Module | None:
    """Fetch the combined+linked libc as one frontend-class artifact."""
    from ..cache.store import FRONTEND, hash_key
    from ..ir.parser import IRParseError, parse_module

    key = hash_key("libc-bundle", _bundle_inputs())
    value, outcome, tier = cache.store.fetch(FRONTEND, key)
    if outcome == "hit":
        if tier == "memory":
            cache.store.note("hit", FRONTEND, key, tier)
            return value
        try:
            module = parse_module(value["ir"])
            module.name = "libc"
        except (IRParseError, KeyError, TypeError):
            cache.store.note("reject", FRONTEND, key, tier)
            return None
        cache.store.note("hit", FRONTEND, key, tier)
        cache.store.memory_put(FRONTEND, key, module)
        return module
    cache.store.note(outcome, FRONTEND, key, tier)
    return None


def _store_bundle(cache, module: ir.Module) -> None:
    from ..cache.store import FRONTEND, hash_key
    from ..ir.printer import print_module

    key = hash_key("libc-bundle", _bundle_inputs())
    cache.store.put(FRONTEND, key, {"ir": print_module(module)},
                    memory_value=module)


def libc_module(force_reload: bool = False, cache=None) -> ir.Module:
    global _CACHED
    if _CACHED is not None and not force_reload:
        return _CACHED
    if cache is not None:
        loaded = _load_bundle(cache)
        if loaded is not None:
            _CACHED = loaded
            return _CACHED
    combined: ir.Module | None = None
    for path in source_files():
        module = compile_file(path, include_dirs=[include_dir()],
                              defines={"__SAFE_SULONG__": "1"})
        combined = module if combined is None else combined.link(module)
    if combined is None:
        raise RuntimeError("libc has no source files")
    combined.name = "libc"
    if cache is not None:
        _store_bundle(cache, combined)
    _CACHED = combined
    return _CACHED


def function_count() -> int:
    """Number of libc functions we provide (the paper reports 126)."""
    module = libc_module()
    return sum(1 for f in module.functions.values() if f.is_definition)
