"""Compiles and caches the bundled safety-first libc (paper §3.1).

The libc is written in standard C (``src/*.c``), performs no unsafe
word-size tricks, and sits on top of the interpreter's intrinsics.  It is
compiled once per process with ``__SAFE_SULONG__`` defined and linked into
every program the managed engine runs.
"""

from __future__ import annotations

import os

from .. import ir
from ..cfront import compile_file

_CACHED: ir.Module | None = None


def libc_dir() -> str:
    return os.path.dirname(os.path.abspath(__file__))


def include_dir() -> str:
    return os.path.join(libc_dir(), "include")


def source_files() -> list[str]:
    src = os.path.join(libc_dir(), "src")
    return sorted(
        os.path.join(src, name) for name in os.listdir(src)
        if name.endswith(".c"))


def libc_module(force_reload: bool = False) -> ir.Module:
    global _CACHED
    if _CACHED is not None and not force_reload:
        return _CACHED
    combined: ir.Module | None = None
    for path in source_files():
        module = compile_file(path, include_dirs=[include_dir()],
                              defines={"__SAFE_SULONG__": "1"})
        combined = module if combined is None else combined.link(module)
    if combined is None:
        raise RuntimeError("libc has no source files")
    combined.name = "libc"
    _CACHED = combined
    return _CACHED


def function_count() -> int:
    """Number of libc functions we provide (the paper reports 126)."""
    module = libc_module()
    return sum(1 for f in module.functions.values() if f.is_definition)
