"""The bundled safety-first libc (C sources + loader)."""

from .loader import function_count, include_dir, libc_module, source_files

__all__ = ["function_count", "include_dir", "libc_module", "source_files"]
