"""Five-way differential driver for generated programs.

Each program runs on five backends — the pure interpreter, the JIT
(forced on from the first call), the check-elided configuration, the
simulated native machine, and the ASan instrumentation — and the
outcomes are compared under the paper's model:

- a **clean** program (nothing planted) is well-defined, so all five
  executions must agree on exit status and output and none may report
  a bug.  Any disagreement is an engine bug: verdict ``divergence``.
- a **planted** program carries one known memory-safety fault.  The
  managed tiers must all detect it, with byte-identical pre-fault
  output and the same triage signature (the tiers promise identical
  reports): verdict ``planted-caught``.  If the full-check tier runs
  past the fault the detector has a hole: verdict ``planted-missed``.
  The native machine is *expected* to run off the rails silently —
  that is the paper's point — so its outcome is recorded but never
  compared for planted programs; ASan's catch rate is recorded too.
- everything agreeing is verdict ``agree``.

Verdicts are mechanical, so sweeps run unattended: any ``divergence``
or ``planted-missed`` is reduced to a minimal repro and filed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .generator import GenConfig, GeneratedProgram, choose_plant, generate

TIER_NAMES = ("interp", "jit", "elide", "native", "asan")
MANAGED_TIERS = ("interp", "jit", "elide")

AGREE = "agree"
PLANTED_CAUGHT = "planted-caught"
PLANTED_MISSED = "planted-missed"
DIVERGENCE = "divergence"


def make_tiers(cache_dir: str | None = None) -> dict:
    """The five oracle backends.  A shared ``cache_dir`` keeps the
    compilation/analysis cache warm across a sweep (the elision tier's
    interprocedural libc summaries dominate the cold cost)."""
    from ..tools import AsanRunner, NativeRunner, SafeSulongRunner
    use_cache = cache_dir is not None
    return {
        "interp": SafeSulongRunner(
            cache_dir=cache_dir, use_cache=use_cache),
        "jit": SafeSulongRunner(
            jit_threshold=1, cache_dir=cache_dir, use_cache=use_cache),
        "elide": SafeSulongRunner(
            elide_checks=True, cache_dir=cache_dir, use_cache=use_cache),
        "native": NativeRunner(0),
        "asan": AsanRunner(0),
    }


def managed_tiers(cache_dir: str | None = None,
                  speculate: bool = True) -> dict:
    """The managed subset of the oracle matrix, plus the speculative
    tier: the drivers ``repro explain`` runs its divergence bisection
    over.  Order matters — the first tier (the pure interpreter) is the
    reference the others are compared against."""
    from ..tools import SafeSulongRunner
    everything = make_tiers(cache_dir)
    tiers = {name: everything[name] for name in MANAGED_TIERS}
    if speculate:
        tiers["speculate"] = SafeSulongRunner(
            speculate=True, cache_dir=cache_dir,
            use_cache=cache_dir is not None)
    return tiers


@dataclass
class TierOutcome:
    tier: str
    status: int | None
    stdout: bytes
    detected: bool
    signatures: tuple[str, ...]
    crashed: bool
    crash_message: str | None
    internal_error: str | None
    limit_exceeded: bool
    timed_out: bool

    def comparable(self) -> tuple:
        """The fields two agreeing executions must share."""
        return (self.status, self.stdout, self.detected)


@dataclass
class OracleReport:
    verdict: str
    detail: str
    seed: int | None
    manifest: dict
    outcomes: dict[str, TierOutcome]
    asan_caught: bool = False

    @property
    def is_bug(self) -> bool:
        return self.verdict in (DIVERGENCE, PLANTED_MISSED)

    def summary_line(self) -> str:
        tag = f"seed {self.seed}" if self.seed is not None else "program"
        line = f"{tag}: {self.verdict}"
        if self.detail:
            line += f" ({self.detail})"
        return line


def run_tier(runner, source: str, filename: str,
             max_steps: int | None = 5_000_000) -> TierOutcome:
    from ..harness.triage import bug_signature
    from ..tools import detected as tool_detected
    result = runner.run(source, filename=filename, max_steps=max_steps)
    signatures = tuple(sorted({
        bug_signature({
            "kind": bug.kind,
            "location": str(bug.location) if bug.location else None,
            "alloc_site": (str(bug.alloc_site)
                           if getattr(bug, "alloc_site", None) else None),
        })
        for bug in result.bugs}))
    return TierOutcome(
        tier=getattr(runner, "name", "?"),
        status=result.status,
        stdout=bytes(result.stdout),
        detected=tool_detected(result),
        signatures=signatures,
        crashed=result.crashed,
        crash_message=result.crash_message,
        internal_error=getattr(result, "internal_error", None),
        limit_exceeded=bool(result.limit_exceeded),
        timed_out=bool(getattr(result, "timed_out", False)),
    )


def run_oracle(source: str, manifest: dict | None = None,
               filename: str | None = None,
               tiers: dict | None = None,
               cache_dir: str | None = None,
               seed: int | None = None) -> OracleReport:
    """Run one program across all five tiers and classify."""
    manifest = manifest or {}
    filename = filename or manifest.get("filename") or "gen-program.c"
    if tiers is None:
        tiers = make_tiers(cache_dir)
    outcomes = {}
    for name in TIER_NAMES:
        if name not in tiers:
            continue
        try:
            outcomes[name] = run_tier(tiers[name], source, filename)
        except Exception as error:  # a tier crashing IS the finding
            outcomes[name] = TierOutcome(
                tier=name, status=None, stdout=b"", detected=False,
                signatures=(), crashed=False, crash_message=None,
                internal_error=f"{type(error).__name__}: {error}",
                limit_exceeded=False, timed_out=False)
    if seed is None:
        seed = manifest.get("seed")
    return classify(manifest, outcomes, seed=seed)


def classify(manifest: dict, outcomes: dict[str, TierOutcome],
             seed: int | None = None) -> OracleReport:
    planted = manifest.get("planted") or []
    asan = outcomes.get("asan")
    asan_caught = bool(asan and asan.detected)

    def report(verdict: str, detail: str = "") -> OracleReport:
        return OracleReport(verdict=verdict, detail=detail, seed=seed,
                            manifest=manifest, outcomes=outcomes,
                            asan_caught=asan_caught)

    # An internal engine error in any managed tier is always an engine
    # bug, planted or not.
    for name in MANAGED_TIERS:
        outcome = outcomes.get(name)
        if outcome is not None and outcome.internal_error:
            return report(DIVERGENCE,
                          f"{name} internal error: "
                          f"{outcome.internal_error}")

    managed = [outcomes[n] for n in MANAGED_TIERS if n in outcomes]
    if not managed:
        raise ValueError("oracle needs at least one managed tier")

    if planted:
        reference = managed[0]
        for outcome in managed[1:]:
            if outcome.comparable() != reference.comparable() or \
                    outcome.signatures != reference.signatures:
                return report(
                    DIVERGENCE,
                    f"managed tiers disagree on planted program: "
                    f"{reference.tier} vs {outcome.tier}")
        if not reference.detected:
            kinds = ", ".join(entry["kind"] for entry in planted)
            return report(PLANTED_MISSED,
                          f"planted {kinds} ran to completion undetected")
        expected_kinds = {entry["kind"] for entry in planted}
        seen_kinds = {sig.split("@", 1)[0] for sig in reference.signatures}
        if not expected_kinds & seen_kinds:
            return report(
                PLANTED_MISSED,
                f"detected {sorted(seen_kinds)} but planted "
                f"{sorted(expected_kinds)}")
        return report(PLANTED_CAUGHT,
                      "; ".join(reference.signatures))

    # Clean program: every tier must finish without a report and all
    # five executions must be indistinguishable.
    for name, outcome in outcomes.items():
        if outcome.detected:
            return report(
                DIVERGENCE,
                f"false positive on well-defined program: {name} "
                f"reported {outcome.signatures or outcome.crash_message}")
        if outcome.internal_error:
            return report(DIVERGENCE,
                          f"{name} internal error: "
                          f"{outcome.internal_error}")
        if outcome.limit_exceeded or outcome.timed_out:
            return report(
                DIVERGENCE,
                f"{name} hit a resource quota on a bounded program")
    reference = next(iter(outcomes.values()))
    for outcome in outcomes.values():
        if outcome.comparable() != reference.comparable():
            return report(
                DIVERGENCE,
                f"{reference.tier} and {outcome.tier} disagree: "
                f"status {reference.status} vs {outcome.status}, "
                f"stdout {reference.stdout[:64]!r} vs "
                f"{outcome.stdout[:64]!r}")
    return report(AGREE)


@dataclass
class SweepSummary:
    count: int = 0
    verdicts: dict = field(default_factory=dict)
    reports: list = field(default_factory=list)
    bugs: list = field(default_factory=list)
    asan_caught: int = 0
    asan_planted: int = 0

    def add(self, report: OracleReport) -> None:
        self.count += 1
        self.verdicts[report.verdict] = \
            self.verdicts.get(report.verdict, 0) + 1
        if report.manifest.get("planted"):
            self.asan_planted += 1
            if report.asan_caught:
                self.asan_caught += 1
        if report.is_bug:
            self.bugs.append(report)
        self.reports.append(report)

    @property
    def ok(self) -> bool:
        return not self.bugs

    def table(self) -> str:
        lines = [f"programs: {self.count}"]
        for verdict in (AGREE, PLANTED_CAUGHT, PLANTED_MISSED,
                        DIVERGENCE):
            lines.append(f"  {verdict}: {self.verdicts.get(verdict, 0)}")
        if self.asan_planted:
            lines.append(f"  asan caught {self.asan_caught}/"
                         f"{self.asan_planted} planted")
        return "\n".join(lines)


def sweep(count: int, base_seed: int = 0,
          config: GenConfig | None = None, plant_mode: str = "mixed",
          cache_dir: str | None = None, tiers: dict | None = None,
          on_report=None, keep_reports: bool = False) -> SweepSummary:
    """Generate ``count`` programs from consecutive seeds and run the
    oracle on each.  ``on_report`` (if given) sees every report as it
    lands; the returned summary keeps only the bug reports unless
    ``keep_reports``."""
    base_config = config or GenConfig()
    if tiers is None:
        tiers = make_tiers(cache_dir)
    summary = SweepSummary()
    for seed in range(base_seed, base_seed + count):
        plant = choose_plant(seed, plant_mode)
        program = generate(seed, _with_plant(base_config, plant))
        report = run_oracle(program.source, program.manifest,
                            tiers=tiers, seed=seed)
        summary.add(report)
        if not keep_reports and not report.is_bug:
            summary.reports[-1] = None
        if on_report is not None:
            on_report(report)
    if not keep_reports:
        summary.reports = [r for r in summary.reports if r is not None]
    return summary


def _with_plant(config: GenConfig, plant: str) -> GenConfig:
    if config.plant == plant:
        return config
    from dataclasses import replace
    return replace(config, plant=plant)


def selftest(count: int = 200, base_seed: int = 0,
             cache_dir: str | None = None,
             verbose: bool = True) -> tuple[bool, list[str]]:
    """Fixed-seed acceptance sweep: ≥1 planted bug caught, zero
    divergences, zero planted misses."""
    import shutil
    import tempfile
    problems: list[str] = []
    own_cache = cache_dir is None
    if own_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-gen-selftest-")
    try:
        def progress(report):
            if verbose and report.is_bug:
                print("  " + report.summary_line())

        summary = sweep(count, base_seed=base_seed, cache_dir=cache_dir,
                        plant_mode="mixed", on_report=progress)
    finally:
        if own_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)
    caught = summary.verdicts.get(PLANTED_CAUGHT, 0)
    if caught < 1:
        problems.append("no planted bug was caught")
    for report in summary.bugs:
        problems.append(report.summary_line())
    if verbose:
        print(summary.table())
    return not problems, problems
