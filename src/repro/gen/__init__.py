"""Generative differential oracle (ROADMAP item 5).

A seeded Csmith-lite generator of C programs that are well-defined by
construction (`generator`), a five-way differential driver comparing
interpreter / JIT / elided / native / asan executions (`oracle`), and
a pass-based delta-debugging reducer that minimizes interesting
programs while re-checking an oracle predicate (`reduce`).

Any disagreement between tiers on a clean generated program is an
engine bug; any planted memory-safety bug the full-check tier misses
is a detection regression.  Both classifications are mechanical, so
the whole loop — generate, compare, reduce, file — runs unattended.
"""

from .generator import GenConfig, GeneratedProgram, choose_plant, generate
from .oracle import (OracleReport, SweepSummary, classify, run_oracle,
                     selftest, sweep)
from .reduce import ReduceResult, reduce_source

__all__ = [
    "GenConfig", "GeneratedProgram", "generate", "choose_plant",
    "OracleReport", "SweepSummary", "classify", "run_oracle", "sweep",
    "selftest", "ReduceResult", "reduce_source",
]
