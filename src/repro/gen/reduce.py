"""Pass-based delta-debugging reducer for interesting programs.

Given a program and a predicate ("this still compiles and the oracle
still gives the same verdict"), shrink the program while the predicate
holds.  Three deterministic passes run in rotation to a fixpoint:

- **drop-lines** — classic ddmin over source lines: try removing
  contiguous chunks, halving the chunk size down to single lines;
- **inline-calls** — replace generated-helper call expressions
  (``fnN(...)``, ``vsum(...)``, ``plant_*(...)``) with the constant
  ``1u``, killing whole call trees at once;
- **shrink-constants** — replace multi-digit literals with smaller
  values (0, 1, then half), shrinking magnitudes monotonically.

Every candidate is validated by the predicate before being accepted,
so reduction preserves the verdict by construction.  All passes are
pure functions of the source (no randomness), so the result is a
fixpoint: reducing an already-reduced program is a no-op.  The
``max_steps`` budget caps predicate evaluations — the expensive part —
and reduction stops mid-pass when it runs out.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_CALL_HEAD = re.compile(r"\b(?:fn\d+|vsum|plant_[a-z]+)\(")
_NUMBER = re.compile(r"\b\d{2,}\b")


def _find_calls(source: str):
    """Spans of generated-helper call expressions, arguments included
    (balanced-paren scan — arguments routinely nest parentheses)."""
    for match in _CALL_HEAD.finditer(source):
        depth = 1
        position = match.end()
        while position < len(source) and depth:
            char = source[position]
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            position += 1
        if depth == 0:
            yield match.start(), position


class _Budget:
    def __init__(self, predicate, max_steps: int):
        self.predicate = predicate
        self.max_steps = max_steps
        self.steps = 0

    @property
    def exhausted(self) -> bool:
        return self.steps >= self.max_steps

    def check(self, candidate: str) -> bool:
        if self.exhausted:
            return False
        self.steps += 1
        try:
            return bool(self.predicate(candidate))
        except Exception:
            # A predicate blowing up on a candidate means the candidate
            # is not interesting, not that reduction should die.
            return False


@dataclass
class ReduceResult:
    source: str
    steps: int
    original_lines: int
    reduced_lines: int
    passes: list[str] = field(default_factory=list)
    exhausted: bool = False

    @property
    def removed_lines(self) -> int:
        return self.original_lines - self.reduced_lines


def _pass_drop_lines(source: str, budget: _Budget) -> str:
    """ddmin over source lines."""
    lines = source.split("\n")
    chunk = max(1, len(lines) // 2)
    while chunk >= 1 and not budget.exhausted:
        start = 0
        removed_any = False
        while start < len(lines) and not budget.exhausted:
            candidate_lines = lines[:start] + lines[start + chunk:]
            candidate = "\n".join(candidate_lines)
            if candidate != "" and budget.check(candidate):
                lines = candidate_lines
                removed_any = True
                # Same start: the next chunk slid into this position.
            else:
                start += chunk
        if not removed_any:
            chunk //= 2
    return "\n".join(lines)


def _pass_inline_calls(source: str, budget: _Budget) -> str:
    """Replace helper call expressions with the constant ``1u``."""
    while not budget.exhausted:
        replaced = False
        for start, end in _find_calls(source):
            candidate = source[:start] + "1u" + source[end:]
            if budget.check(candidate):
                source = candidate
                replaced = True
                break  # offsets moved; rescan
        if not replaced:
            return source
    return source


def _pass_shrink_constants(source: str, budget: _Budget) -> str:
    """Shrink multi-digit literals; each accepted replacement strictly
    reduces the literal's value, so this terminates."""
    position = 0
    while not budget.exhausted:
        match = _NUMBER.search(source, position)
        if match is None:
            return source
        value = int(match.group())
        shrunk = False
        for replacement in ("0", "1", str(value // 2)):
            if int(replacement) >= value:
                continue
            candidate = (source[:match.start()] + replacement
                         + source[match.end():])
            if budget.check(candidate):
                source = candidate
                shrunk = True
                break
        if not shrunk:
            position = match.end()
        # On success keep position: rescan from the same offset — the
        # replacement is shorter, so the next literal is at or after it.
    return source


_PASSES = (
    ("drop-lines", _pass_drop_lines),
    ("inline-calls", _pass_inline_calls),
    ("shrink-constants", _pass_shrink_constants),
)


def reduce_source(source: str, predicate,
                  max_steps: int = 2000) -> ReduceResult:
    """Minimize ``source`` while ``predicate(source)`` stays true.

    The input must itself satisfy the predicate; if it does not, the
    input is returned unchanged (steps=1).
    """
    budget = _Budget(predicate, max_steps)
    original_lines = source.count("\n") + 1
    if not budget.check(source):
        return ReduceResult(source=source, steps=budget.steps,
                            original_lines=original_lines,
                            reduced_lines=original_lines,
                            exhausted=budget.exhausted)
    applied: list[str] = []
    changed = True
    while changed and not budget.exhausted:
        changed = False
        for name, pass_fn in _PASSES:
            shrunk = pass_fn(source, budget)
            if shrunk != source:
                source = shrunk
                changed = True
                if name not in applied:
                    applied.append(name)
    return ReduceResult(
        source=source, steps=budget.steps,
        original_lines=original_lines,
        reduced_lines=source.count("\n") + 1,
        passes=applied, exhausted=budget.exhausted)


def oracle_predicate(manifest: dict | None = None,
                     expected_verdict: str | None = None,
                     cache_dir: str | None = None,
                     tiers: dict | None = None):
    """Predicate factory: candidate still gets ``expected_verdict``
    from the differential oracle.  When ``expected_verdict`` is None
    it is locked in from the first evaluation (the original program),
    so callers can say "whatever this is, keep it"."""
    from .oracle import make_tiers, run_oracle
    if tiers is None:
        tiers = make_tiers(cache_dir)
    state = {"expected": expected_verdict}

    def predicate(source: str) -> bool:
        report = run_oracle(source, manifest, tiers=tiers)
        if state["expected"] is None:
            state["expected"] = report.verdict
            return True
        return report.verdict == state["expected"]

    return predicate
