"""Recursive-descent C parser.

Consumes the preprocessed token stream and produces the AST of
:mod:`repro.cfront.ast`.  Typedef names, struct/union/enum tags and
enumeration constants are tracked in lexical scopes (the "lexer hack" in its
parser-side form) so declarations and expressions can be disambiguated.
"""

from __future__ import annotations

from ..source import SourceLocation
from . import ast
from . import ctypes as ct
from .errors import ParseError
from .lexer import (CHAR_CONST, EOF, FLOAT_CONST, IDENT, INT_CONST, KEYWORD,
                    PUNCT, STRING, Token)

_TYPE_KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "float", "double", "signed",
    "unsigned", "_Bool", "struct", "union", "enum", "const", "volatile",
    "restrict",
})
_STORAGE_KEYWORDS = frozenset({
    "typedef", "extern", "static", "auto", "register", "inline",
})

_ASSIGN_OPS = frozenset({
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
})


class _Scope:
    """Parser-side scope: typedef names, tags, and enum constants."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.typedefs: dict[str, ct.CType] = {}
        self.tags: dict[str, ct.CType] = {}
        self.enum_consts: dict[str, int] = {}
        # Identifiers declared as ordinary objects, which shadow typedefs.
        self.ordinary: set[str] = set()

    def lookup_typedef(self, name: str) -> ct.CType | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.ordinary:
                return None
            if name in scope.typedefs:
                return scope.typedefs[name]
            scope = scope.parent
        return None

    def lookup_tag(self, name: str) -> ct.CType | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.tags:
                return scope.tags[name]
            scope = scope.parent
        return None

    def lookup_enum_const(self, name: str) -> int | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.ordinary:
                return None
            if name in scope.enum_consts:
                return scope.enum_consts[name]
            scope = scope.parent
        return None


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self.scope = _Scope()

    # -- token plumbing -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = self.pos + offset
        if index < len(self.tokens):
            return self.tokens[index]
        last_loc = (self.tokens[-1].loc if self.tokens
                    else SourceLocation("<empty>", 0))
        return Token(EOF, None, "<eof>", last_loc)

    def _next(self) -> Token:
        token = self._peek()
        self.pos += 1
        return token

    def _at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def _accept(self, text: str) -> Token | None:
        token = self._peek()
        if token.kind in (PUNCT, KEYWORD) and token.text == text:
            self.pos += 1
            return token
        return None

    def _expect(self, text: str) -> Token:
        token = self._peek()
        if token.kind in (PUNCT, KEYWORD) and token.text == text:
            self.pos += 1
            return token
        raise ParseError(f"expected {text!r}, found {token.text!r}",
                         token.loc)

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind != IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}",
                             token.loc)
        self.pos += 1
        return token

    def _push_scope(self) -> None:
        self.scope = _Scope(self.scope)

    def _pop_scope(self) -> None:
        assert self.scope.parent is not None
        self.scope = self.scope.parent

    # -- type recognition ---------------------------------------------------

    def _starts_type(self, token: Token) -> bool:
        if token.kind == KEYWORD:
            return token.text in _TYPE_KEYWORDS or token.text in _STORAGE_KEYWORDS
        if token.kind == IDENT:
            return self.scope.lookup_typedef(token.text) is not None
        return False

    # -- entry point ----------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        decls: list[ast.Node] = []
        start = self._peek().loc
        while not self._at_end():
            if self._accept(";"):
                continue
            decls.extend(self._external_declaration())
        return ast.TranslationUnit(decls, start)

    def _external_declaration(self) -> list[ast.Node]:
        loc = self._peek().loc
        base, storage = self._declaration_specifiers()
        # `struct foo { ... };` or `enum e {...};` with no declarator.
        if self._accept(";"):
            return []

        name, ctype, params = self._declarator(base)
        if isinstance(ctype, ct.CFunc) and self._peek().is_punct("{"):
            return [self._function_definition(name, ctype, params,
                                              storage, loc)]

        out: list[ast.Node] = []
        while True:
            out.append(self._finish_top_level_declarator(
                name, ctype, storage, loc))
            if self._accept(","):
                name, ctype, params = self._declarator(base)
                continue
            self._expect(";")
            break
        return out

    def _finish_top_level_declarator(self, name: str, ctype: ct.CType,
                                     storage: str,
                                     loc: SourceLocation) -> ast.Node:
        if storage == "typedef":
            self.scope.typedefs[name] = ctype
            return ast.VarDecl(name, ctype, None, "typedef", loc)
        if isinstance(ctype, ct.CFunc):
            return ast.FunctionDecl(name, ctype, loc)
        init = None
        if self._accept("="):
            init = self._initializer()
            ctype = self._complete_array_from_init(ctype, init)
        self.scope.ordinary.add(name)
        return ast.VarDecl(name, ctype, init, storage, loc)

    def _function_definition(self, name: str, ctype: ct.CFunc,
                             params: list[ast.ParamDecl], storage: str,
                             loc: SourceLocation) -> ast.FunctionDef:
        self.scope.ordinary.add(name)
        self._push_scope()
        for param in params:
            self.scope.ordinary.add(param.name)
        body = self._block()
        self._pop_scope()
        return ast.FunctionDef(name, ctype, params, body,
                               storage == "static", loc)

    # -- declaration specifiers ------------------------------------------------

    def _declaration_specifiers(self) -> tuple[ct.CType, str]:
        storage = "auto"
        signedness: bool | None = None
        base_kind: str | None = None
        long_count = 0
        seen_short = False
        explicit_type: ct.CType | None = None
        loc = self._peek().loc

        while True:
            token = self._peek()
            text = token.text
            if token.kind == KEYWORD and text in _STORAGE_KEYWORDS:
                self.pos += 1
                if text in ("typedef", "extern", "static"):
                    storage = text
                continue
            if token.kind == KEYWORD and text in ("const", "volatile",
                                                  "restrict"):
                self.pos += 1
                continue
            if token.kind == KEYWORD and text == "unsigned":
                self.pos += 1
                signedness = False
                continue
            if token.kind == KEYWORD and text == "signed":
                self.pos += 1
                signedness = True
                continue
            if token.kind == KEYWORD and text == "short":
                self.pos += 1
                seen_short = True
                continue
            if token.kind == KEYWORD and text == "long":
                self.pos += 1
                long_count += 1
                continue
            if token.kind == KEYWORD and text in ("void", "char", "int",
                                                  "float", "double", "_Bool"):
                self.pos += 1
                base_kind = text
                continue
            if token.kind == KEYWORD and text in ("struct", "union"):
                explicit_type = self._struct_or_union()
                continue
            if token.kind == KEYWORD and text == "enum":
                explicit_type = self._enum()
                continue
            if (token.kind == IDENT and explicit_type is None
                    and base_kind is None and long_count == 0
                    and not seen_short and signedness is None):
                typedef_type = self.scope.lookup_typedef(text)
                if typedef_type is not None:
                    self.pos += 1
                    explicit_type = typedef_type
                    continue
            break

        if explicit_type is not None:
            return explicit_type, storage

        if base_kind is None and signedness is None and long_count == 0 \
                and not seen_short:
            raise ParseError("expected type specifier", loc)

        return self._combine_base(base_kind, signedness, long_count,
                                  seen_short, loc), storage

    def _combine_base(self, base_kind: str | None, signedness: bool | None,
                      long_count: int, seen_short: bool,
                      loc: SourceLocation) -> ct.CType:
        if base_kind == "void":
            return ct.VOID
        if base_kind == "float":
            return ct.FLOAT
        if base_kind == "double":
            return ct.DOUBLE
        if base_kind == "_Bool":
            return ct.BOOL
        if base_kind == "char":
            if signedness is None:
                return ct.CHAR
            return ct.CHAR if signedness else ct.UCHAR
        # ints
        signed = signedness is not False
        if seen_short:
            return ct.CInt("short", signed)
        if long_count >= 2:
            return ct.CInt("longlong", signed)
        if long_count == 1:
            return ct.CInt("long", signed)
        return ct.CInt("int", signed)

    # -- struct/union/enum -----------------------------------------------------

    def _struct_or_union(self) -> ct.CStruct:
        keyword = self._next()
        is_union = keyword.text == "union"
        tag: str | None = None
        if self._peek().kind == IDENT:
            tag = self._next().text
        if self._peek().is_punct("{"):
            if tag is not None:
                existing = self.scope.tags.get(tag)
                if existing is None or (isinstance(existing, ct.CStruct)
                                        and existing.is_complete):
                    struct = ct.CStruct(tag, is_union)
                    self.scope.tags[tag] = struct
                else:
                    struct = existing  # complete a forward declaration
            else:
                struct = ct.CStruct(None, is_union)
            self._struct_body(struct)
            return struct
        if tag is None:
            raise ParseError("expected struct tag or body", keyword.loc)
        existing = self.scope.lookup_tag(tag)
        if isinstance(existing, ct.CStruct) and existing.is_union == is_union:
            return existing
        struct = ct.CStruct(tag, is_union)
        self.scope.tags[tag] = struct
        return struct

    def _struct_body(self, struct: ct.CStruct) -> None:
        self._expect("{")
        fields: list[ct.CStructField] = []
        while not self._accept("}"):
            base, _ = self._declaration_specifiers()
            if self._accept(";"):
                continue  # anonymous member of a tagged struct: skip
            while True:
                name, ctype, _ = self._declarator(base)
                if self._accept(":"):
                    self._conditional_expr()  # bit-fields: width ignored
                fields.append(ct.CStructField(name, ctype))
                if not self._accept(","):
                    break
            self._expect(";")
        struct.complete(fields)

    def _enum(self) -> ct.CEnum:
        keyword = self._next()
        tag: str | None = None
        if self._peek().kind == IDENT:
            tag = self._next().text
        enum_type = ct.CEnum(tag)
        if self._peek().is_punct("{"):
            self._expect("{")
            next_value = 0
            while not self._accept("}"):
                name_token = self._expect_ident()
                if self._accept("="):
                    expr = self._conditional_expr()
                    next_value = self._const_int(expr)
                self.scope.enum_consts[name_token.text] = next_value
                next_value += 1
                if not self._accept(","):
                    self._expect("}")
                    break
            if tag is not None:
                self.scope.tags[tag] = enum_type
            return enum_type
        if tag is not None:
            existing = self.scope.lookup_tag(tag)
            if isinstance(existing, ct.CEnum):
                return existing
            self.scope.tags[tag] = enum_type
        return enum_type

    # -- declarators -------------------------------------------------------------

    def _declarator(self, base: ct.CType) -> tuple[str, ct.CType,
                                                   list[ast.ParamDecl]]:
        """Parse a declarator; returns (name, full type, function params)."""
        name, ctype, params = self._declarator_inner(base, allow_abstract=False)
        assert name is not None
        return name, ctype, params

    def _abstract_declarator(self, base: ct.CType) -> ct.CType:
        _, ctype, _ = self._declarator_inner(base, allow_abstract=True)
        return ctype

    def _declarator_inner(self, base: ct.CType, allow_abstract: bool):
        # pointer prefix
        while self._accept("*"):
            while self._peek().kind == KEYWORD and self._peek().text in (
                    "const", "volatile", "restrict"):
                self.pos += 1
            base = ct.CPointer(base)

        name: str | None = None
        params: list[ast.ParamDecl] = []
        inner_tokens_start = None

        token = self._peek()
        if token.kind == IDENT:
            name = self._next().text
        elif token.is_punct("(") and self._is_nested_declarator():
            # Parenthesized declarator, e.g. (*fp)(int).  Parse it *after*
            # the suffixes by recording the position and re-parsing.
            self._expect("(")
            inner_tokens_start = self.pos
            self._skip_balanced_parens()
        elif not allow_abstract and not token.is_punct("("):
            raise ParseError(
                f"expected declarator, found {token.text!r}", token.loc)

        base, params = self._declarator_suffixes(base)

        if inner_tokens_start is not None:
            saved = self.pos
            self.pos = inner_tokens_start
            name, base, inner_params = self._declarator_inner(
                base, allow_abstract)
            if inner_params:
                params = inner_params
            self._expect(")")
            self.pos = saved
        return name, base, params

    def _is_nested_declarator(self) -> bool:
        """Distinguish `(*x)` / `(x)` declarators from parameter lists."""
        token = self._peek(1)
        if token.is_punct("*") or token.is_punct("("):
            return True
        if token.kind == IDENT and self.scope.lookup_typedef(token.text) is None:
            return True
        return False

    def _skip_balanced_parens(self) -> None:
        depth = 1
        while depth:
            token = self._next()
            if token.kind == EOF:
                raise ParseError("unbalanced parentheses", token.loc)
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1

    def _declarator_suffixes(self, base: ct.CType):
        """Parse array/function suffixes; returns (type, params)."""
        suffixes: list[tuple] = []
        params: list[ast.ParamDecl] = []
        while True:
            if self._accept("["):
                if self._accept("]"):
                    suffixes.append(("array", None))
                else:
                    size_expr = self._conditional_expr()
                    self._expect("]")
                    suffixes.append(("array", self._const_int(size_expr)))
            elif self._peek().is_punct("(") and self._looks_like_params():
                self._expect("(")
                sig_params, is_varargs = self._parameter_list()
                suffixes.append(("func", sig_params, is_varargs))
                params = sig_params
            else:
                break
        # Suffixes apply outside-in: int a[2][3] is array(2, array(3, int)).
        ctype = base
        for suffix in reversed(suffixes):
            if suffix[0] == "array":
                ctype = ct.CArray(ctype, suffix[1])
            else:
                _, sig_params, is_varargs = suffix
                ctype = ct.CFunc(ctype, [p.ctype for p in sig_params],
                                 is_varargs)
        return ctype, params

    def _looks_like_params(self) -> bool:
        token = self._peek(1)
        if token.is_punct(")") or token.is_punct("..."):
            return True
        return self._starts_type(token)

    def _parameter_list(self) -> tuple[list[ast.ParamDecl], bool]:
        params: list[ast.ParamDecl] = []
        is_varargs = False
        if self._accept(")"):
            return params, True  # `()` — unspecified params, treat as varargs
        # `(void)`
        if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
            self.pos += 2
            return params, False
        while True:
            if self._accept("..."):
                is_varargs = True
                self._expect(")")
                break
            loc = self._peek().loc
            base, _ = self._declaration_specifiers()
            pname, ctype, _ = self._declarator_inner(base,
                                                     allow_abstract=True)
            ctype = _decay_param_type(ctype)
            params.append(ast.ParamDecl(pname or f".param{len(params)}",
                                        ctype, loc))
            if self._accept(","):
                continue
            self._expect(")")
            break
        return params, is_varargs

    # -- initializers ---------------------------------------------------------

    def _initializer(self):
        if self._peek().is_punct("{"):
            loc = self._expect("{").loc
            items: list = []
            if not self._accept("}"):
                while True:
                    items.append(self._initializer())
                    if self._accept(","):
                        if self._accept("}"):
                            break
                        continue
                    self._expect("}")
                    break
            return ast.InitList(items, loc)
        return self._assignment_expr()

    def _complete_array_from_init(self, ctype: ct.CType, init) -> ct.CType:
        if isinstance(ctype, ct.CArray) and ctype.count is None:
            if isinstance(init, ast.InitList):
                return ct.CArray(ctype.elem, len(init.items))
            if isinstance(init, ast.StringLit):
                return ct.CArray(ctype.elem, len(init.data) + 1)
        return ctype

    # -- statements -------------------------------------------------------------

    def _block(self) -> ast.Block:
        open_tok = self._expect("{")
        self._push_scope()
        items: list[ast.Stmt] = []
        while not self._accept("}"):
            items.append(self._block_item())
        self._pop_scope()
        return ast.Block(items, open_tok.loc)

    def _block_item(self) -> ast.Stmt:
        token = self._peek()
        if self._starts_type(token):
            return self._local_declaration()
        return self._statement()

    def _local_declaration(self) -> ast.Stmt:
        loc = self._peek().loc
        base, storage = self._declaration_specifiers()
        if self._accept(";"):
            return ast.EmptyStmt(loc)
        decls: list[ast.VarDecl] = []
        while True:
            name, ctype, _ = self._declarator(base)
            if storage == "typedef":
                self.scope.typedefs[name] = ctype
                if not self._accept(","):
                    break
                continue
            init = None
            if self._accept("="):
                init = self._initializer()
                ctype = self._complete_array_from_init(ctype, init)
            self.scope.ordinary.add(name)
            decls.append(ast.VarDecl(name, ctype, init, storage, loc))
            if not self._accept(","):
                break
        self._expect(";")
        return ast.DeclStmt(decls, loc) if decls else ast.EmptyStmt(loc)

    def _statement(self) -> ast.Stmt:
        token = self._peek()
        loc = token.loc

        if token.is_punct("{"):
            return self._block()
        if self._accept(";"):
            return ast.EmptyStmt(loc)

        if token.kind == KEYWORD:
            text = token.text
            if text == "if":
                return self._if_stmt()
            if text == "while":
                return self._while_stmt()
            if text == "do":
                return self._do_stmt()
            if text == "for":
                return self._for_stmt()
            if text == "switch":
                return self._switch_stmt()
            if text == "case":
                self.pos += 1
                value = self._conditional_expr()
                self._expect(":")
                return _case_with_body(ast.Case(value, loc),
                                       self._statement(), loc)
            if text == "default":
                self.pos += 1
                self._expect(":")
                return _case_with_body(ast.Default(loc), self._statement(),
                                       loc)
            if text == "break":
                self.pos += 1
                self._expect(";")
                return ast.Break(loc)
            if text == "continue":
                self.pos += 1
                self._expect(";")
                return ast.Continue(loc)
            if text == "return":
                self.pos += 1
                value = None
                if not self._peek().is_punct(";"):
                    value = self._expression()
                self._expect(";")
                return ast.Return(value, loc)
            if text == "goto":
                self.pos += 1
                label = self._expect_ident().text
                self._expect(";")
                return ast.Goto(label, loc)

        # label:
        if token.kind == IDENT and self._peek(1).is_punct(":"):
            self.pos += 2
            return ast.Label(token.text, self._statement(), loc)

        expr = self._expression()
        self._expect(";")
        return ast.ExprStmt(expr, loc)

    def _paren_expr(self) -> ast.Expr:
        self._expect("(")
        expr = self._expression()
        self._expect(")")
        return expr

    def _if_stmt(self) -> ast.Stmt:
        loc = self._expect("if").loc
        condition = self._paren_expr()
        then_body = self._statement()
        else_body = self._statement() if self._accept("else") else None
        return ast.If(condition, then_body, else_body, loc)

    def _while_stmt(self) -> ast.Stmt:
        loc = self._expect("while").loc
        condition = self._paren_expr()
        return ast.While(condition, self._statement(), loc)

    def _do_stmt(self) -> ast.Stmt:
        loc = self._expect("do").loc
        body = self._statement()
        self._expect("while")
        condition = self._paren_expr()
        self._expect(";")
        return ast.DoWhile(body, condition, loc)

    def _for_stmt(self) -> ast.Stmt:
        loc = self._expect("for").loc
        self._expect("(")
        self._push_scope()
        init: ast.Stmt | None = None
        if not self._accept(";"):
            if self._starts_type(self._peek()):
                init = self._local_declaration()
            else:
                expr = self._expression()
                self._expect(";")
                init = ast.ExprStmt(expr, expr.loc)
        condition = None
        if not self._peek().is_punct(";"):
            condition = self._expression()
        self._expect(";")
        advance = None
        if not self._peek().is_punct(")"):
            advance = self._expression()
        self._expect(")")
        body = self._statement()
        self._pop_scope()
        return ast.For(init, condition, advance, body, loc)

    def _switch_stmt(self) -> ast.Stmt:
        loc = self._expect("switch").loc
        value = self._paren_expr()
        body = self._statement()
        return ast.Switch(value, body, loc)

    # -- expressions --------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        expr = self._assignment_expr()
        while True:
            comma = self._peek()
            if comma.is_punct(","):
                self.pos += 1
                rhs = self._assignment_expr()
                expr = ast.Comma(expr, rhs, comma.loc)
            else:
                return expr

    def _assignment_expr(self) -> ast.Expr:
        lhs = self._conditional_expr()
        token = self._peek()
        if token.kind == PUNCT and token.text in _ASSIGN_OPS:
            self.pos += 1
            rhs = self._assignment_expr()
            return ast.Assign(token.text, lhs, rhs, token.loc)
        return lhs

    def _conditional_expr(self) -> ast.Expr:
        condition = self._binary_expr(0)
        question = self._peek()
        if question.is_punct("?"):
            self.pos += 1
            if_true = self._expression()
            self._expect(":")
            if_false = self._conditional_expr()
            return ast.Conditional(condition, if_true, if_false, question.loc)
        return condition

    _BINARY_LEVELS = [
        ("||",), ("&&",), ("|",), ("^",), ("&",), ("==", "!="),
        ("<", ">", "<=", ">="), ("<<", ">>"), ("+", "-"), ("*", "/", "%"),
    ]

    def _binary_expr(self, level: int) -> ast.Expr:
        if level == len(self._BINARY_LEVELS):
            return self._cast_expr()
        lhs = self._binary_expr(level + 1)
        ops = self._BINARY_LEVELS[level]
        while True:
            token = self._peek()
            if token.kind != PUNCT or token.text not in ops:
                return lhs
            self.pos += 1
            rhs = self._binary_expr(level + 1)
            lhs = ast.Binary(token.text, lhs, rhs, token.loc)

    def _cast_expr(self) -> ast.Expr:
        token = self._peek()
        if token.is_punct("(") and self._starts_type(self._peek(1)):
            loc = self._next().loc  # '('
            base, _ = self._declaration_specifiers()
            target = self._abstract_declarator(base)
            self._expect(")")
            operand = self._cast_expr()
            return ast.Cast(target, operand, loc)
        return self._unary_expr()

    def _unary_expr(self) -> ast.Expr:
        token = self._peek()
        loc = token.loc
        if token.kind == PUNCT and token.text in ("-", "+", "!", "~", "*",
                                                  "&"):
            self.pos += 1
            return ast.Unary(token.text, self._cast_expr(), loc)
        if token.is_punct("++") or token.is_punct("--"):
            self.pos += 1
            return ast.Unary(token.text, self._unary_expr(), loc)
        if token.is_keyword("sizeof"):
            self.pos += 1
            if self._peek().is_punct("(") and self._starts_type(self._peek(1)):
                self._expect("(")
                base, _ = self._declaration_specifiers()
                target = self._abstract_declarator(base)
                self._expect(")")
                return ast.SizeofType(target, loc)
            return ast.SizeofExpr(self._unary_expr(), loc)
        return self._postfix_expr()

    def _postfix_expr(self) -> ast.Expr:
        expr = self._primary_expr()
        while True:
            token = self._peek()
            if token.is_punct("["):
                self.pos += 1
                index = self._expression()
                self._expect("]")
                expr = ast.Index(expr, index, token.loc)
            elif token.is_punct("("):
                self.pos += 1
                args: list[ast.Expr] = []
                if not self._accept(")"):
                    while True:
                        args.append(self._assignment_expr())
                        if self._accept(","):
                            continue
                        self._expect(")")
                        break
                expr = ast.Call(expr, args, token.loc)
            elif token.is_punct("."):
                self.pos += 1
                name = self._expect_ident().text
                expr = ast.Member(expr, name, False, token.loc)
            elif token.is_punct("->"):
                self.pos += 1
                name = self._expect_ident().text
                expr = ast.Member(expr, name, True, token.loc)
            elif token.is_punct("++") or token.is_punct("--"):
                self.pos += 1
                expr = ast.Postfix(token.text, expr, token.loc)
            else:
                return expr

    def _primary_expr(self) -> ast.Expr:
        token = self._next()
        loc = token.loc
        if token.kind == INT_CONST:
            value, _unsigned, _longs = token.value
            lit = ast.IntLit(value, loc)
            lit.ctype = _int_literal_type(token.value)
            return lit
        if token.kind == FLOAT_CONST:
            value, is_single = token.value
            return ast.FloatLit(value, is_single, loc)
        if token.kind == CHAR_CONST:
            return ast.CharLit(token.value, loc)
        if token.kind == STRING:
            data = token.value
            # Adjacent string literals concatenate.
            while self._peek().kind == STRING:
                data += self._next().value
            return ast.StringLit(data, loc)
        if token.kind == IDENT:
            enum_value = self.scope.lookup_enum_const(token.text)
            if enum_value is not None:
                lit = ast.IntLit(enum_value, loc)
                lit.ctype = ct.INT
                return lit
            return ast.Ident(token.text, loc)
        if token.is_punct("("):
            expr = self._expression()
            self._expect(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", loc)

    # -- constant expression evaluation (parser-level, for array sizes) ------------

    def _const_int(self, expr: ast.Expr) -> int:
        value = _eval_const(expr)
        if value is None:
            raise ParseError("expected integer constant expression",
                             expr.loc)
        return value


def _case_with_body(marker: ast.Stmt, body: ast.Stmt,
                    loc: SourceLocation) -> ast.Stmt:
    """`case N: stmt` becomes a two-element block so cases stay ordinary
    statements inside the switch body."""
    return ast.Block([marker, body], loc)


def _decay_param_type(ctype: ct.CType) -> ct.CType:
    if isinstance(ctype, ct.CArray):
        return ct.CPointer(ctype.elem)
    if isinstance(ctype, ct.CFunc):
        return ct.CPointer(ctype)
    return ctype


def _int_literal_type(value_tuple) -> ct.CType:
    value, unsigned, longs = value_tuple
    if longs >= 1 or value > ct.INT.max_value:
        return ct.ULONG if unsigned or value > ct.LONG.max_value else ct.LONG
    return ct.UINT if unsigned else ct.INT


def _eval_const(expr: ast.Expr) -> int | None:
    """Fold an integer constant expression at parse time (array sizes,
    enum values, case labels)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.CharLit):
        return expr.value
    if isinstance(expr, ast.SizeofType):
        return expr.target.size
    if isinstance(expr, ast.Unary):
        inner = _eval_const(expr.operand)
        if inner is None:
            return None
        return {"-": lambda v: -v, "+": lambda v: v,
                "~": lambda v: ~v, "!": lambda v: int(not v)}.get(
                    expr.op, lambda v: None)(inner)
    if isinstance(expr, ast.Binary):
        lhs = _eval_const(expr.lhs)
        rhs = _eval_const(expr.rhs)
        if lhs is None or rhs is None:
            return None
        try:
            return {
                "+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
                "/": lhs // rhs if rhs else None,
                "%": lhs % rhs if rhs else None,
                "<<": lhs << rhs, ">>": lhs >> rhs,
                "&": lhs & rhs, "|": lhs | rhs, "^": lhs ^ rhs,
                "==": int(lhs == rhs), "!=": int(lhs != rhs),
                "<": int(lhs < rhs), ">": int(lhs > rhs),
                "<=": int(lhs <= rhs), ">=": int(lhs >= rhs),
                "&&": int(bool(lhs and rhs)), "||": int(bool(lhs or rhs)),
            }[expr.op]
        except KeyError:
            return None
    if isinstance(expr, ast.Conditional):
        condition = _eval_const(expr.condition)
        if condition is None:
            return None
        return _eval_const(expr.if_true if condition else expr.if_false)
    if isinstance(expr, ast.Cast):
        return _eval_const(expr.operand)
    if isinstance(expr, ast.ImplicitCast):
        # Post-sema callers (constant initializers) see conversion
        # nodes around literal indices; fold through them.
        return _eval_const(expr.operand)
    return None


def parse(tokens: list[Token]) -> ast.TranslationUnit:
    return Parser(tokens).parse_translation_unit()
