"""Diagnostics for the C front end."""

from __future__ import annotations

from ..source import SourceLocation


class CompileError(Exception):
    """A fatal diagnostic from any front-end stage."""

    def __init__(self, message: str, loc: SourceLocation | None = None):
        self.loc = loc
        self.message = message
        if loc is not None:
            super().__init__(f"{loc}: {message}")
        else:
            super().__init__(message)


class LexError(CompileError):
    pass


class PreprocessorError(CompileError):
    pass


class ParseError(CompileError):
    pass


class TypeCheckError(CompileError):
    pass
