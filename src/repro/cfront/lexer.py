"""C lexer.

Produces the token stream consumed by the preprocessor and parser.  Keyword
recognition happens here; typedef-name recognition happens in the parser
(the classic "lexer hack" lives on the parser side so the preprocessor can
treat all identifiers uniformly).
"""

from __future__ import annotations

from ..source import SourceLocation
from .errors import LexError

KEYWORDS = frozenset({
    "auto", "break", "case", "char", "const", "continue", "default", "do",
    "double", "else", "enum", "extern", "float", "for", "goto", "if",
    "inline", "int", "long", "register", "restrict", "return", "short",
    "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
    "unsigned", "void", "volatile", "while", "_Bool",
})

# Longest-match-first punctuation table.
PUNCTUATION = (
    "...", "<<=", ">>=",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "##",
    "[", "]", "(", ")", "{", "}", ".", "&", "*", "+", "-", "~", "!",
    "/", "%", "<", ">", "^", "|", "?", ":", ";", "=", ",", "#",
)

# Token kinds.
IDENT = "ident"
KEYWORD = "keyword"
INT_CONST = "int"
FLOAT_CONST = "float"
CHAR_CONST = "char"
STRING = "string"
PUNCT = "punct"
EOF = "eof"


class Token:
    __slots__ = ("kind", "value", "text", "loc", "space_before",
                 "start_of_line", "hide_set")

    def __init__(self, kind: str, value, text: str, loc: SourceLocation,
                 space_before: bool = False, start_of_line: bool = False):
        self.kind = kind
        self.value = value
        self.text = text
        self.loc = loc
        self.space_before = space_before
        self.start_of_line = start_of_line
        # Macro names this token must not be re-expanded as (hide set).
        self.hide_set: frozenset[str] = frozenset()

    def is_punct(self, text: str) -> bool:
        return self.kind == PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == KEYWORD and self.text == text

    def copy(self) -> "Token":
        tok = Token(self.kind, self.value, self.text, self.loc,
                    self.space_before, self.start_of_line)
        tok.hide_set = self.hide_set
        return tok

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.loc})"


_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11, "?": 63,
}


def _decode_escape(text: str, i: int, loc: SourceLocation) -> tuple[int, int]:
    """Decode the escape sequence starting after a backslash at ``text[i]``.
    Returns (byte value, next index)."""
    c = text[i]
    if c == "x":
        j = i + 1
        value = 0
        if j >= len(text) or text[j] not in "0123456789abcdefABCDEF":
            raise LexError("invalid hex escape", loc)
        while j < len(text) and text[j] in "0123456789abcdefABCDEF":
            value = value * 16 + int(text[j], 16)
            j += 1
        return value & 0xFF, j
    if c in "01234567":
        j = i
        value = 0
        while j < len(text) and j < i + 3 and text[j] in "01234567":
            value = value * 8 + int(text[j], 8)
            j += 1
        return value & 0xFF, j
    if c in _ESCAPES:
        return _ESCAPES[c], i + 1
    raise LexError(f"unknown escape sequence \\{c}", loc)


def decode_string_literal(text: str, loc: SourceLocation) -> bytes:
    """Decode the contents (without quotes) of a string literal to bytes."""
    out = bytearray()
    i = 0
    while i < len(text):
        c = text[i]
        if c == "\\":
            value, i = _decode_escape(text, i + 1, loc)
            out.append(value)
        else:
            out.extend(c.encode("utf-8"))
            i += 1
    return bytes(out)


class Lexer:
    def __init__(self, text: str, filename: str, first_line: int = 1):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = first_line
        self.column = 1

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def tokens(self) -> list[Token]:
        result = []
        space = False
        line_start = True
        text = self.text
        n = len(text)
        while self.pos < n:
            c = text[self.pos]
            if c == "\n":
                self._advance(1)
                line_start = True
                space = False
                continue
            if c in " \t\r\f\v":
                self._advance(1)
                space = True
                continue
            token = self._next_token()
            token.space_before = space
            token.start_of_line = line_start
            result.append(token)
            space = False
            line_start = False
        return result

    def _next_token(self) -> Token:
        text = self.text
        pos = self.pos
        loc = self._loc()
        c = text[pos]

        if c.isalpha() or c == "_":
            end = pos + 1
            while end < len(text) and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[pos:end]
            self._advance(end - pos)
            kind = KEYWORD if word in KEYWORDS else IDENT
            return Token(kind, word, word, loc)

        if c.isdigit() or (c == "." and pos + 1 < len(text)
                           and text[pos + 1].isdigit()):
            return self._number(loc)

        if c == '"':
            return self._string(loc)

        if c == "'":
            return self._char(loc)

        for punct in PUNCTUATION:
            if text.startswith(punct, pos):
                self._advance(len(punct))
                return Token(PUNCT, punct, punct, loc)

        raise LexError(f"stray character {c!r}", loc)

    def _number(self, loc: SourceLocation) -> Token:
        text = self.text
        pos = self.pos
        end = pos
        is_float = False
        if text.startswith(("0x", "0X"), pos):
            end = pos + 2
            while end < len(text) and (text[end].isalnum()):
                end += 1
        else:
            while end < len(text) and (text[end].isalnum() or text[end] == "."
                                       or (text[end] in "+-"
                                           and text[end - 1] in "eE")):
                if text[end] == "." or text[end] in "eE":
                    is_float = text[end] == "." or (
                        text[end] in "eE" and not text[pos:end].startswith(("0x", "0X")))
                end += 1
        spelling = text[pos:end]
        self._advance(end - pos)
        if is_float or (("." in spelling or "e" in spelling or "E" in spelling)
                        and not spelling.startswith(("0x", "0X"))):
            return self._parse_float(spelling, loc)
        return self._parse_int(spelling, loc)

    def _parse_int(self, spelling: str, loc: SourceLocation) -> Token:
        body = spelling
        unsigned = False
        long_count = 0
        while body and body[-1] in "uUlL":
            if body[-1] in "uU":
                unsigned = True
            else:
                long_count += 1
            body = body[:-1]
        try:
            if body.startswith(("0x", "0X")):
                value = int(body, 16)
            elif body.startswith("0") and len(body) > 1:
                value = int(body, 8)
            else:
                value = int(body, 10)
        except ValueError:
            raise LexError(f"invalid integer constant {spelling!r}", loc)
        token = Token(INT_CONST, value, spelling, loc)
        token.value = (value, unsigned, min(long_count, 2))
        return token

    def _parse_float(self, spelling: str, loc: SourceLocation) -> Token:
        body = spelling
        is_single = False
        if body and body[-1] in "fF":
            is_single = True
            body = body[:-1]
        if body and body[-1] in "lL":
            body = body[:-1]
        try:
            value = float(body)
        except ValueError:
            raise LexError(f"invalid float constant {spelling!r}", loc)
        token = Token(FLOAT_CONST, (value, is_single), spelling, loc)
        return token

    def _string(self, loc: SourceLocation) -> Token:
        text = self.text
        end = self.pos + 1
        while end < len(text):
            if text[end] == "\\":
                end += 2
                continue
            if text[end] == '"':
                break
            if text[end] == "\n":
                raise LexError("unterminated string literal", loc)
            end += 1
        else:
            raise LexError("unterminated string literal", loc)
        contents = text[self.pos + 1:end]
        spelling = text[self.pos:end + 1]
        self._advance(end + 1 - self.pos)
        return Token(STRING, decode_string_literal(contents, loc),
                     spelling, loc)

    def _char(self, loc: SourceLocation) -> Token:
        text = self.text
        end = self.pos + 1
        while end < len(text):
            if text[end] == "\\":
                end += 2
                continue
            if text[end] == "'":
                break
            if text[end] == "\n":
                raise LexError("unterminated character constant", loc)
            end += 1
        else:
            raise LexError("unterminated character constant", loc)
        contents = text[self.pos + 1:end]
        spelling = text[self.pos:end + 1]
        self._advance(end + 1 - self.pos)
        data = decode_string_literal(contents, loc)
        if len(data) != 1:
            raise LexError("multi-character constant not supported", loc)
        value = data[0]
        # Character constants have type int; plain char is signed.
        if value > 127:
            value -= 256
        return Token(CHAR_CONST, value, spelling, loc)


def strip_comments(text: str, filename: str) -> str:
    """Replace comments with spaces, preserving line structure."""
    out = []
    i = 0
    n = len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated comment",
                               SourceLocation(filename, line))
            comment = text[i:end + 2]
            out.append(" ")
            out.append("\n" * comment.count("\n"))
            line += comment.count("\n")
            i = end + 2
            continue
        if c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            out.append(text[i:j + 1])
            if j < n and text[j] == "\n":
                line += 1
            i = j + 1
            continue
        if c == "\n":
            line += 1
        out.append(c)
        i += 1
    return "".join(out)


def splice_continuations(text: str) -> str:
    r"""Join lines ending in a backslash, keeping the newline count stable by
    appending blank lines (so downstream line numbers stay correct)."""
    lines = text.split("\n")
    out: list[str] = []
    buffered = ""
    pending_blanks = 0
    for raw in lines:
        if raw.endswith("\\"):
            buffered += raw[:-1]
            pending_blanks += 1
            continue
        out.append(buffered + raw)
        out.extend([""] * pending_blanks)
        buffered = ""
        pending_blanks = 0
    if buffered:
        out.append(buffered)
        out.extend([""] * pending_blanks)
    return "\n".join(out)


def tokenize(text: str, filename: str) -> list[Token]:
    """Full lexing pipeline for one file: comments, continuations, tokens."""
    cleaned = strip_comments(text, filename)
    cleaned = splice_continuations(cleaned)
    return Lexer(cleaned, filename).tokens()
