"""C abstract syntax tree.

The parser produces untyped nodes; :mod:`repro.cfront.sema` annotates each
expression with its C type (``.ctype``) and inserts explicit
:class:`ImplicitCast` nodes so the IR generator never has to re-derive
conversion rules.
"""

from __future__ import annotations

from ..source import SourceLocation
from . import ctypes as ct


class Node:
    __slots__ = ("loc",)

    def __init__(self, loc: SourceLocation):
        self.loc = loc

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for name in getattr(self, "__slots__", ())
            if name not in ("loc", "ctype"))
        return f"{type(self).__name__}({fields})"


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr(Node):
    __slots__ = ("ctype", "is_lvalue")

    def __init__(self, loc: SourceLocation):
        super().__init__(loc)
        self.ctype: ct.CType | None = None
        self.is_lvalue = False


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, loc: SourceLocation):
        super().__init__(loc)
        self.value = value


class FloatLit(Expr):
    __slots__ = ("value", "is_single")

    def __init__(self, value: float, is_single: bool, loc: SourceLocation):
        super().__init__(loc)
        self.value = value
        self.is_single = is_single


class CharLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, loc: SourceLocation):
        super().__init__(loc)
        self.value = value


class StringLit(Expr):
    __slots__ = ("data",)

    def __init__(self, data: bytes, loc: SourceLocation):
        super().__init__(loc)
        self.data = data  # without the trailing NUL


class Ident(Expr):
    __slots__ = ("name", "decl")

    def __init__(self, name: str, loc: SourceLocation):
        super().__init__(loc)
        self.name = name
        self.decl = None  # resolved by sema


class Unary(Expr):
    """Prefix operators: - + ! ~ * & ++ --"""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.op = op
        self.operand = operand


class Postfix(Expr):
    """Postfix ++ and --."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.op = op
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Assign(Expr):
    """Assignment; ``op`` is '=', '+=', '-=', etc."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Conditional(Expr):
    __slots__ = ("condition", "if_true", "if_false")

    def __init__(self, condition: Expr, if_true: Expr, if_false: Expr,
                 loc: SourceLocation):
        super().__init__(loc)
        self.condition = condition
        self.if_true = if_true
        self.if_false = if_false


class Cast(Expr):
    __slots__ = ("target", "operand")

    def __init__(self, target: ct.CType, operand: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.target = target
        self.operand = operand


class ImplicitCast(Expr):
    """Inserted by sema: conversions, array/function decay, lvalue loads are
    implicit in the tree, but explicit to the IR generator."""

    __slots__ = ("kind", "operand")

    def __init__(self, kind: str, target: ct.CType, operand: Expr):
        super().__init__(operand.loc)
        self.kind = kind  # "convert" | "decay" | "fn-decay"
        self.ctype = target
        self.operand = operand


class SizeofExpr(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.operand = operand


class SizeofType(Expr):
    __slots__ = ("target",)

    def __init__(self, target: ct.CType, loc: SourceLocation):
        super().__init__(loc)
        self.target = target


class Call(Expr):
    __slots__ = ("callee", "args")

    def __init__(self, callee: Expr, args: list[Expr], loc: SourceLocation):
        super().__init__(loc)
        self.callee = callee
        self.args = args


class Index(Expr):
    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.base = base
        self.index = index


class Member(Expr):
    __slots__ = ("base", "name", "arrow")

    def __init__(self, base: Expr, name: str, arrow: bool,
                 loc: SourceLocation):
        super().__init__(loc)
        self.base = base
        self.name = name
        self.arrow = arrow


class Comma(Expr):
    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Expr, rhs: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.lhs = lhs
        self.rhs = rhs


# --------------------------------------------------------------------------
# Initializers
# --------------------------------------------------------------------------

class InitList(Node):
    """A braced initializer ``{1, 2, {3}}``."""

    __slots__ = ("items",)

    def __init__(self, items: list, loc: SourceLocation):
        super().__init__(loc)
        self.items = items  # Expr | InitList


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

class Stmt(Node):
    __slots__ = ()


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.expr = expr


class EmptyStmt(Stmt):
    __slots__ = ()


class DeclStmt(Stmt):
    """One or more local variable declarations."""

    __slots__ = ("decls",)

    def __init__(self, decls: list["VarDecl"], loc: SourceLocation):
        super().__init__(loc)
        self.decls = decls


class Block(Stmt):
    __slots__ = ("items",)

    def __init__(self, items: list[Stmt], loc: SourceLocation):
        super().__init__(loc)
        self.items = items


class If(Stmt):
    __slots__ = ("condition", "then_body", "else_body")

    def __init__(self, condition: Expr, then_body: Stmt,
                 else_body: Stmt | None, loc: SourceLocation):
        super().__init__(loc)
        self.condition = condition
        self.then_body = then_body
        self.else_body = else_body


class While(Stmt):
    __slots__ = ("condition", "body")

    def __init__(self, condition: Expr, body: Stmt, loc: SourceLocation):
        super().__init__(loc)
        self.condition = condition
        self.body = body


class DoWhile(Stmt):
    __slots__ = ("body", "condition")

    def __init__(self, body: Stmt, condition: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.body = body
        self.condition = condition


class For(Stmt):
    __slots__ = ("init", "condition", "advance", "body")

    def __init__(self, init: Stmt | None, condition: Expr | None,
                 advance: Expr | None, body: Stmt, loc: SourceLocation):
        super().__init__(loc)
        self.init = init
        self.condition = condition
        self.advance = advance
        self.body = body


class Switch(Stmt):
    __slots__ = ("value", "body")

    def __init__(self, value: Expr, body: Stmt, loc: SourceLocation):
        super().__init__(loc)
        self.value = value
        self.body = body


class Case(Stmt):
    __slots__ = ("value", "resolved")

    def __init__(self, value: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.value = value
        self.resolved: int | None = None


class Default(Stmt):
    __slots__ = ()


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Expr | None, loc: SourceLocation):
        super().__init__(loc)
        self.value = value


class Goto(Stmt):
    __slots__ = ("label",)

    def __init__(self, label: str, loc: SourceLocation):
        super().__init__(loc)
        self.label = label


class Label(Stmt):
    __slots__ = ("name", "body")

    def __init__(self, name: str, body: Stmt, loc: SourceLocation):
        super().__init__(loc)
        self.name = name
        self.body = body


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------

class VarDecl(Node):
    __slots__ = ("name", "ctype", "init", "storage", "ir_slot")

    def __init__(self, name: str, ctype: ct.CType, init,
                 storage: str, loc: SourceLocation):
        super().__init__(loc)
        self.name = name
        self.ctype = ctype
        self.init = init  # Expr | InitList | None
        self.storage = storage  # "auto" | "static" | "extern" | "typedef"
        self.ir_slot = None  # filled by irgen


class ParamDecl(Node):
    __slots__ = ("name", "ctype", "ir_slot")

    def __init__(self, name: str, ctype: ct.CType, loc: SourceLocation):
        super().__init__(loc)
        self.name = name
        self.ctype = ctype
        self.ir_slot = None


class FunctionDef(Node):
    __slots__ = ("name", "ctype", "params", "body", "is_static", "ir_slot")

    def __init__(self, name: str, ctype: ct.CFunc,
                 params: list[ParamDecl], body: Block, is_static: bool,
                 loc: SourceLocation):
        super().__init__(loc)
        self.name = name
        self.ctype = ctype
        self.params = params
        self.body = body
        self.is_static = is_static


class FunctionDecl(Node):
    """A prototype without a body."""

    __slots__ = ("name", "ctype", "ir_slot")

    def __init__(self, name: str, ctype: ct.CFunc, loc: SourceLocation):
        super().__init__(loc)
        self.name = name
        self.ctype = ctype


class TranslationUnit(Node):
    __slots__ = ("decls",)

    def __init__(self, decls: list[Node], loc: SourceLocation):
        super().__init__(loc)
        self.decls = decls  # FunctionDef | FunctionDecl | VarDecl
