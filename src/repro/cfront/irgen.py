"""IR generation: lowers the typed C AST to the IR, clang -O0 style.

Every local lives in an ``alloca``; no optimization happens here (the paper
compiles all code with Clang -O0 "to lower the risk that bugs are optimized
away", §3.1).  UB-exploiting transformations live in :mod:`repro.opt` and
are only applied when a baseline explicitly requests them.
"""

from __future__ import annotations

from .. import ir
from ..ir import types as irt
from . import ast
from . import ctypes as ct
from .errors import CompileError

# Runtime-support routines emitted by the front end itself (struct copies,
# zero-fill of partial initializers).  Both executors implement them.
ZERO_MEMORY = "__sulong_zero_memory"
COPY_MEMORY = "__sulong_copy_memory"

# Process-wide counter so private globals (string literals, function-local
# statics) never collide when modules are linked together.
_private_counter = iter(range(1, 1 << 62)).__next__


class IRGen:
    def __init__(self, module_name: str = "module"):
        self.module = ir.Module(module_name)
        self._struct_cache: dict[int, irt.StructType] = {}
        self._completing: set[int] = set()
        self._string_cache: dict[bytes, ir.GlobalVariable] = {}
        self._static_counter = 0
        self.builder: ir.IRBuilder | None = None
        self._function: ir.Function | None = None
        self._break_stack: list[ir.Block] = []
        self._continue_stack: list[ir.Block] = []
        self._switch_stack: list[dict] = []
        self._labels: dict[str, ir.Block] = {}
        self._value_overrides: dict[int, ir.Value] = {}
        self._sret: ir.Value | None = None

    # -- type lowering -------------------------------------------------------

    def lower_type(self, ctype: ct.CType) -> irt.IRType:
        if isinstance(ctype, ct.CVoid):
            return irt.VOID
        if isinstance(ctype, ct.CInt):
            return irt.int_type(8 if ctype.kind == "bool" else ctype.bits)
        if isinstance(ctype, ct.CEnum):
            return irt.I32
        if isinstance(ctype, ct.CFloat):
            return irt.F32 if ctype.bits == 32 else irt.F64
        if isinstance(ctype, ct.CPointer):
            target = ctype.target
            if isinstance(target, ct.CVoid):
                return irt.ptr(irt.I8)
            if isinstance(target, ct.CStruct) and not target.is_complete:
                return irt.ptr(self._opaque_struct(target))
            return irt.ptr(self.lower_type(target))
        if isinstance(ctype, ct.CArray):
            if ctype.count is None:
                raise CompileError("cannot lower incomplete array")
            return irt.ArrayType(self.lower_type(ctype.elem), ctype.count)
        if isinstance(ctype, ct.CStruct):
            return self._lower_struct(ctype)
        if isinstance(ctype, ct.CFunc):
            # Aggregate ABI: a struct parameter is lowered to a pointer
            # to a caller-made copy, and a struct return to a hidden
            # leading "sret" pointer the caller allocates — both
            # machines then move aggregates only through explicit
            # memory copies, never as register values.
            params = [irt.ptr(self.lower_type(p))
                      if isinstance(p, ct.CStruct) else self.lower_type(p)
                      for p in ctype.params]
            if isinstance(ctype.ret, ct.CStruct):
                params.insert(0, irt.ptr(self.lower_type(ctype.ret)))
                return irt.FunctionType(irt.VOID, params,
                                        ctype.is_varargs)
            return irt.FunctionType(
                self.lower_type(ctype.ret), params, ctype.is_varargs)
        raise CompileError(f"cannot lower type {ctype}")

    def _opaque_struct(self, cstruct: ct.CStruct) -> irt.StructType:
        cached = self._struct_cache.get(id(cstruct))
        if cached is None:
            cached = irt.StructType(cstruct.tag, None, cstruct.is_union)
            self._struct_cache[id(cstruct)] = cached
            self.module.structs.setdefault(cstruct.tag, cached)
        return cached

    def _lower_struct(self, cstruct: ct.CStruct) -> irt.StructType:
        cached = self._struct_cache.get(id(cstruct))
        if cached is None:
            cached = irt.StructType(cstruct.tag, None, cstruct.is_union)
            self._struct_cache[id(cstruct)] = cached
            self.module.structs.setdefault(cstruct.tag, cached)
        # Complete lazily, guarding against self-referential structs
        # (struct node { struct node *next; }).
        if cached.is_opaque and cstruct.is_complete \
                and id(cstruct) not in self._completing:
            self._completing.add(id(cstruct))
            try:
                cached.set_fields([
                    _mk_field(f.name, self.lower_type(f.type))
                    for f in cstruct.fields
                ])
            finally:
                self._completing.discard(id(cstruct))
        return cached

    # -- module-level --------------------------------------------------------

    def run(self, unit: ast.TranslationUnit) -> ir.Module:
        # Declare functions and globals first so forward references resolve.
        for decl in unit.decls:
            if isinstance(decl, (ast.FunctionDecl, ast.FunctionDef)):
                self._declare_function(decl)
            elif isinstance(decl, ast.VarDecl) and decl.storage != "typedef":
                self._declare_global(decl)
        for decl in unit.decls:
            if isinstance(decl, ast.FunctionDef):
                self._define_function(decl)
        return self.module

    def _declare_function(self, decl) -> ir.Function:
        existing = self.module.functions.get(decl.name)
        ftype = self.lower_type(decl.ctype)
        has_sret = isinstance(decl.ctype.ret, ct.CStruct)
        if existing is not None:
            if isinstance(decl, ast.FunctionDef) and not existing.is_definition:
                # A prototype preceded the definition: define in place so
                # already-emitted call sites keep referencing this object.
                named = existing.params[1:] if has_sret \
                    else existing.params
                for param, pdecl in zip(named, decl.params):
                    param.name = pdecl.name
                existing.ftype = ftype
            decl.ir_slot = existing
            return existing
        param_names = None
        name = decl.name
        if isinstance(decl, ast.FunctionDef):
            param_names = [p.name for p in decl.params]
            if has_sret:
                param_names.insert(0, ".sret")
            if decl.is_static:
                # Internal linkage: avoid collisions across linked modules.
                name = f"{name}.static.{_private_counter()}"
        func = ir.Function(name, ftype, param_names, loc=decl.loc)
        self.module.add_function(func)
        decl.ir_slot = func
        return func

    def _declare_global(self, decl: ast.VarDecl) -> None:
        existing = self.module.globals.get(decl.name)
        if existing is not None:
            is_definition = decl.init is not None or decl.storage not in (
                "extern",)
            if not (existing.is_external and is_definition):
                decl.ir_slot = existing
                return
            # extern declaration earlier in this unit; the definition
            # replaces it (lookups are by name, so references stay valid).
            del self.module.globals[decl.name]
        name = decl.name
        if decl.storage == "static":
            name = f"{name}.static.{_private_counter()}"
        value_type = self.lower_type(decl.ctype)
        initializer = None
        zero_initialized = False
        is_external = False
        if decl.init is not None:
            initializer = self._const_init(decl.init, decl.ctype)
        elif decl.storage == "extern":
            is_external = True
        else:
            # Tentative definition: a zero-initialized "common" symbol.
            zero_initialized = True
        gvar = ir.GlobalVariable(name, value_type, initializer,
                                 zero_initialized=zero_initialized,
                                 is_external=is_external, loc=decl.loc)
        self.module.add_global(gvar)
        decl.ir_slot = gvar

    # -- constant initializers ------------------------------------------------

    def _const_init(self, init, ctype: ct.CType) -> ir.Constant:
        ir_type = self.lower_type(ctype)
        if isinstance(init, ast.InitList):
            return self._const_init_list(init, ctype)
        if isinstance(init, ast.StringLit) and isinstance(ctype, ct.CArray):
            data = init.data + b"\x00"
            if ctype.count is not None:
                if len(data) > ctype.count + 1:
                    raise CompileError("string too long for array", init.loc)
                data = data[:ctype.count].ljust(ctype.count, b"\x00")
            return ir.ConstString(data)
        value = self._const_expr(init)
        if value is None:
            raise CompileError("initializer is not a constant expression",
                               getattr(init, "loc", None))
        return _coerce_const(value, ir_type)

    def _const_init_list(self, init: ast.InitList,
                         ctype: ct.CType) -> ir.Constant:
        ir_type = self.lower_type(ctype)
        if isinstance(ctype, ct.CArray):
            elements = [self._const_init(item, ctype.elem)
                        for item in init.items]
            while len(elements) < ctype.count:
                elements.append(ir.ConstZero(self.lower_type(ctype.elem)))
            return ir.ConstArray(ir_type, elements)
        if isinstance(ctype, ct.CStruct):
            fields = ctype.fields or []
            elements = []
            for i, field in enumerate(fields):
                if i < len(init.items):
                    elements.append(self._const_init(init.items[i],
                                                     field.type))
                else:
                    elements.append(
                        ir.ConstZero(self.lower_type(field.type)))
            return ir.ConstStruct(ir_type, elements)
        if len(init.items) == 1:
            return self._const_init(init.items[0], ctype)
        raise CompileError("invalid constant initializer", init.loc)

    def _const_expr(self, expr: ast.Expr) -> ir.Constant | None:
        """Fold a constant expression into an IR constant, handling the
        address-of-global patterns global initializers need."""
        if isinstance(expr, ast.IntLit):
            return ir.ConstInt(self.lower_type(expr.ctype), expr.value)
        if isinstance(expr, ast.CharLit):
            return ir.ConstInt(irt.I32, expr.value)
        if isinstance(expr, ast.FloatLit):
            return ir.ConstFloat(self.lower_type(expr.ctype), expr.value)
        if isinstance(expr, (ast.SizeofType,)):
            return ir.ConstInt(irt.I64, expr.target.size)
        if isinstance(expr, ast.SizeofExpr):
            return ir.ConstInt(irt.I64, expr.operand.ctype.size)
        if isinstance(expr, ast.ImplicitCast):
            inner = self._const_expr(expr.operand)
            if expr.kind == "decay":
                if isinstance(expr.operand, ast.StringLit):
                    gvar = self._string_global(expr.operand.data)
                    return ir.ConstGEP(irt.ptr(irt.I8), gvar, 0)
                addr = self._const_addr(expr.operand)
                if addr is not None:
                    return ir.ConstGEP(
                        self.lower_type(expr.ctype), addr[0], addr[1])
                return None
            if expr.kind == "fn-decay":
                if isinstance(expr.operand, ast.Ident):
                    return expr.operand.decl.ir_slot
                return None
            if inner is None:
                return None
            return _coerce_const(inner, self.lower_type(expr.ctype))
        if isinstance(expr, ast.Cast):
            inner = self._const_expr(expr.operand)
            if inner is None:
                return None
            return _coerce_const(inner, self.lower_type(expr.ctype))
        if isinstance(expr, ast.Unary) and expr.op == "&":
            addr = self._const_addr(expr.operand)
            if addr is not None:
                return ir.ConstGEP(self.lower_type(expr.ctype),
                                   addr[0], addr[1])
            return None
        if isinstance(expr, ast.Ident) and isinstance(expr.decl,
                                                      (ast.FunctionDecl,
                                                       ast.FunctionDef)):
            return expr.decl.ir_slot
        if isinstance(expr, ast.Binary):
            lhs = self._const_expr(expr.lhs)
            rhs = self._const_expr(expr.rhs)
            folded = _fold_const_binary(expr.op, lhs, rhs,
                                        self.lower_type(expr.ctype))
            if folded is not None:
                return folded
        if isinstance(expr, ast.Unary) and expr.op in ("-", "+"):
            inner = self._const_expr(expr.operand)
            if isinstance(inner, ir.ConstFloat):
                value = -inner.value if expr.op == "-" else inner.value
                return ir.ConstFloat(self.lower_type(expr.ctype), value)
            if isinstance(inner, ir.ConstInt):
                value = -inner.signed_value if expr.op == "-" \
                    else inner.signed_value
                return ir.ConstInt(self.lower_type(expr.ctype), value)
        # Generic integer folding.
        from .parser import _eval_const
        value = _eval_const(expr)
        if value is not None and expr.ctype is not None:
            lowered = self.lower_type(expr.ctype)
            if isinstance(lowered, irt.IntType):
                return ir.ConstInt(lowered, value)
            if isinstance(lowered, irt.PointerType) and value == 0:
                return ir.ConstNull(lowered)
        return None

    def _const_addr(self, expr: ast.Expr):
        """Resolve a constant lvalue path into a global aggregate to a
        (global, byte offset) pair — the link-time address constants C
        allows in initializers: ``&g``, ``&arr[i]``, ``&s.field``,
        array decay, and nestings thereof.  Returns None when the path
        is not a compile-time constant."""
        if isinstance(expr, ast.Ident) and isinstance(expr.decl,
                                                      ast.VarDecl):
            slot = expr.decl.ir_slot
            if isinstance(slot, ir.GlobalVariable):
                return slot, 0
            return None
        if isinstance(expr, ast.ImplicitCast) and expr.kind == "decay":
            return self._const_addr(expr.operand)
        if isinstance(expr, ast.Index):
            base = self._const_addr(expr.base)
            from .parser import _eval_const
            index = _eval_const(expr.index)
            if base is None or index is None:
                return None
            return base[0], base[1] + index * expr.ctype.size
        if isinstance(expr, ast.Member) and not expr.arrow:
            base = self._const_addr(expr.base)
            if base is None:
                return None
            struct = expr.base.ctype
            if not isinstance(struct, ct.CStruct):
                return None
            return base[0], base[1] + struct.field_offset(expr.name)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            # *&x and *(arr + k) style paths fold through the pointer.
            inner = self._const_expr(expr.operand)
            if isinstance(inner, ir.ConstGEP):
                return inner.base, inner.byte_offset
            return None
        return None

    def _string_global(self, data: bytes) -> ir.GlobalVariable:
        cached = self._string_cache.get(data)
        if cached is not None:
            return cached
        name = f".str.{_private_counter()}"
        const = ir.ConstString(data + b"\x00")
        gvar = ir.GlobalVariable(name, const.type, const, is_constant=True)
        self.module.add_global(gvar)
        self._string_cache[data] = gvar
        return gvar

    # -- function bodies -------------------------------------------------------

    def _define_function(self, decl: ast.FunctionDef) -> None:
        func = decl.ir_slot
        self._function = func
        builder = ir.IRBuilder(func)
        self.builder = builder
        entry = builder.new_block("entry")
        builder.set_block(entry)
        builder.set_loc(decl.loc)
        self._labels = {}
        self._value_overrides = {}

        # Parameters: clang -O0 stores each into its own alloca.  A
        # struct parameter arrives as a pointer to the caller's copy,
        # which already IS the parameter's storage; a struct return
        # writes through the hidden leading sret pointer.
        ir_params = func.params
        self._sret = None
        if isinstance(decl.ctype.ret, ct.CStruct):
            self._sret = ir_params[0]
            ir_params = ir_params[1:]
        for param_decl, param_reg in zip(decl.params, ir_params):
            if isinstance(param_decl.ctype, ct.CStruct):
                param_decl.ir_slot = param_reg
                continue
            slot = builder.alloca(param_reg.type, param_decl.name)
            builder.store(param_reg, slot)
            param_decl.ir_slot = slot

        self._collect_labels(decl.body)
        self._stmt(decl.body)

        if not builder.terminated:
            ret = func.ftype.ret
            if isinstance(ret, irt.VoidType):
                builder.ret()
            elif decl.name == "main" and isinstance(ret, irt.IntType):
                builder.ret(ir.ConstInt(ret, 0))
            elif isinstance(ret, irt.IntType):
                builder.ret(ir.ConstUndef(ret))
            elif isinstance(ret, irt.FloatType):
                builder.ret(ir.ConstUndef(ret))
            elif isinstance(ret, irt.PointerType):
                builder.ret(ir.ConstNull(ret))
            else:
                builder.unreachable()
        self.builder = None
        self._function = None

    def _collect_labels(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Label) and stmt.name:
            self._labels[stmt.name] = self.builder.new_block(
                f"label.{stmt.name}")
            self._collect_labels(stmt.body)
        elif isinstance(stmt, ast.Block):
            for item in stmt.items:
                self._collect_labels(item)
        elif isinstance(stmt, ast.If):
            self._collect_labels(stmt.then_body)
            if stmt.else_body:
                self._collect_labels(stmt.else_body)
        elif isinstance(stmt, (ast.While, ast.Switch)):
            self._collect_labels(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._collect_labels(stmt.body)
        elif isinstance(stmt, ast.For):
            self._collect_labels(stmt.body)

    # -- statements ---------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        builder = self.builder
        builder.set_loc(stmt.loc)
        if isinstance(stmt, ast.Block):
            for item in stmt.items:
                self._stmt(item)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._local_decl(decl)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._switch(stmt)
        elif isinstance(stmt, ast.Case):
            self._case_marker(stmt)
        elif isinstance(stmt, ast.Default):
            self._default_marker(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._break_stack:
                raise CompileError("break outside loop/switch", stmt.loc)
            builder.br(self._break_stack[-1])
            builder.set_block(builder.new_block("after.break"))
        elif isinstance(stmt, ast.Continue):
            if not self._continue_stack:
                raise CompileError("continue outside loop", stmt.loc)
            builder.br(self._continue_stack[-1])
            builder.set_block(builder.new_block("after.continue"))
        elif isinstance(stmt, ast.Return):
            if self._sret is not None and stmt.value is not None:
                # Struct return: copy the value into the caller's
                # result object through the hidden sret pointer.
                source = self._struct_addr(stmt.value)
                self._emit_copy(self._sret, source,
                                stmt.value.ctype.size)
                builder.ret()
            else:
                value = None
                if stmt.value is not None:
                    value = self._expr(stmt.value)
                builder.ret(value)
            builder.set_block(builder.new_block("after.ret"))
        elif isinstance(stmt, ast.Goto):
            target = self._labels.get(stmt.label)
            if target is None:
                raise CompileError(f"unknown label {stmt.label!r}", stmt.loc)
            builder.br(target)
            builder.set_block(builder.new_block("after.goto"))
        elif isinstance(stmt, ast.Label):
            if stmt.name:
                target = self._labels[stmt.name]
                builder.br(target)
                builder.set_block(target)
            self._stmt(stmt.body)
        else:
            raise CompileError(f"unhandled statement {type(stmt).__name__}",
                               stmt.loc)

    def _local_decl(self, decl: ast.VarDecl) -> None:
        builder = self.builder
        builder.set_loc(decl.loc)
        if decl.storage == "static":
            name = f"{self._function.name}.{decl.name}.{_private_counter()}"
            initializer = None
            zero = True
            if decl.init is not None:
                initializer = self._const_init(decl.init, decl.ctype)
                zero = False
            gvar = ir.GlobalVariable(name, self.lower_type(decl.ctype),
                                     initializer, zero_initialized=zero,
                                     loc=decl.loc)
            self.module.add_global(gvar)
            decl.ir_slot = gvar
            return
        ir_type = self.lower_type(decl.ctype)
        slot = builder.alloca(ir_type, decl.name)
        decl.ir_slot = slot
        if decl.init is None:
            return
        if isinstance(decl.init, ast.InitList):
            self._init_aggregate(slot, decl.init, decl.ctype)
        elif isinstance(decl.init, ast.StringLit) \
                and isinstance(decl.ctype, ct.CArray):
            self._init_char_array(slot, decl.init, decl.ctype)
        elif isinstance(decl.ctype, ct.CStruct):
            # struct p = other; (or = make()) — a memberwise copy.
            source_addr = self._struct_addr(decl.init)
            self._emit_copy(slot, source_addr, decl.ctype.size)
        else:
            value = self._expr(decl.init)
            builder.store(value, slot)

    def _init_char_array(self, slot: ir.Value, init: ast.StringLit,
                         ctype: ct.CArray) -> None:
        builder = self.builder
        data = init.data + b"\x00"
        count = ctype.count
        data = data[:count].ljust(count, b"\x00") if count >= len(data) \
            else data[:count]
        for i, byte in enumerate(data):
            dest = builder.gep(slot, [ir.ConstInt(irt.I64, 0),
                                      ir.ConstInt(irt.I64, i)],
                               irt.ptr(irt.I8))
            builder.store(ir.ConstInt(irt.I8, byte), dest)

    def _init_aggregate(self, slot: ir.Value, init: ast.InitList,
                        ctype: ct.CType) -> None:
        builder = self.builder
        if isinstance(ctype, ct.CArray):
            items = init.items
            # Zero-fill when the initializer does not cover the array.
            if len(items) < ctype.count:
                self._zero_fill(slot, ctype.size)
            for i, item in enumerate(items):
                dest = builder.gep(slot, [ir.ConstInt(irt.I64, 0),
                                          ir.ConstInt(irt.I64, i)],
                                   irt.ptr(self.lower_type(ctype.elem)))
                self._store_init(dest, item, ctype.elem)
        elif isinstance(ctype, ct.CStruct):
            fields = ctype.fields or []
            if len(init.items) < len(fields):
                self._zero_fill(slot, ctype.size)
            for i, item in enumerate(init.items):
                dest = builder.gep(slot, [ir.ConstInt(irt.I64, 0),
                                          ir.ConstInt(irt.I64, i)],
                                   irt.ptr(self.lower_type(fields[i].type)))
                self._store_init(dest, item, fields[i].type)
        else:
            self._store_init(slot, init.items[0] if init.items else None,
                             ctype)

    def _store_init(self, dest: ir.Value, item, ctype: ct.CType) -> None:
        if item is None:
            return
        if isinstance(item, ast.InitList):
            self._init_aggregate(dest, item, ctype)
        elif isinstance(item, ast.StringLit) and isinstance(ctype, ct.CArray):
            self._init_char_array(dest, item, ctype)
        else:
            self.builder.store(self._expr(item), dest)

    def _emit_copy(self, dst: ir.Value, src: ir.Value, size: int) -> None:
        builder = self.builder
        copy_fn = self._support_function(
            COPY_MEMORY,
            irt.FunctionType(irt.VOID, [irt.ptr(irt.I8), irt.ptr(irt.I8),
                                        irt.I64]))
        raw_dst = builder.cast("bitcast", dst, irt.ptr(irt.I8))
        raw_src = builder.cast("bitcast", src, irt.ptr(irt.I8))
        builder.call(copy_fn, [raw_dst, raw_src,
                               ir.ConstInt(irt.I64, size)])

    def _zero_fill(self, slot: ir.Value, size: int) -> None:
        builder = self.builder
        zero_fn = self._support_function(
            ZERO_MEMORY,
            irt.FunctionType(irt.VOID, [irt.ptr(irt.I8), irt.I64]))
        raw = builder.cast("bitcast", slot, irt.ptr(irt.I8))
        builder.call(zero_fn, [raw, ir.ConstInt(irt.I64, size)])

    def _support_function(self, name: str,
                          ftype: irt.FunctionType) -> ir.Function:
        existing = self.module.functions.get(name)
        if existing is not None:
            return existing
        func = ir.Function(name, ftype)
        self.module.add_function(func)
        return func

    # -- control flow ------------------------------------------------------------

    def _if(self, stmt: ast.If) -> None:
        builder = self.builder
        condition = self._truth(self._expr(stmt.condition),
                                stmt.condition.ctype)
        then_block = builder.new_block("if.then")
        end_block = builder.new_block("if.end")
        else_block = builder.new_block("if.else") if stmt.else_body \
            else end_block
        builder.cond_br(condition, then_block, else_block)
        builder.set_block(then_block)
        self._stmt(stmt.then_body)
        if not builder.terminated:
            builder.br(end_block)
        if stmt.else_body is not None:
            builder.set_block(else_block)
            self._stmt(stmt.else_body)
            if not builder.terminated:
                builder.br(end_block)
        builder.set_block(end_block)

    def _while(self, stmt: ast.While) -> None:
        builder = self.builder
        cond_block = builder.new_block("while.cond")
        body_block = builder.new_block("while.body")
        end_block = builder.new_block("while.end")
        builder.br(cond_block)
        builder.set_block(cond_block)
        condition = self._truth(self._expr(stmt.condition),
                                stmt.condition.ctype)
        builder.cond_br(condition, body_block, end_block)
        builder.set_block(body_block)
        self._break_stack.append(end_block)
        self._continue_stack.append(cond_block)
        self._stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if not builder.terminated:
            builder.br(cond_block)
        builder.set_block(end_block)

    def _do_while(self, stmt: ast.DoWhile) -> None:
        builder = self.builder
        body_block = builder.new_block("do.body")
        cond_block = builder.new_block("do.cond")
        end_block = builder.new_block("do.end")
        builder.br(body_block)
        builder.set_block(body_block)
        self._break_stack.append(end_block)
        self._continue_stack.append(cond_block)
        self._stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if not builder.terminated:
            builder.br(cond_block)
        builder.set_block(cond_block)
        condition = self._truth(self._expr(stmt.condition),
                                stmt.condition.ctype)
        builder.cond_br(condition, body_block, end_block)
        builder.set_block(end_block)

    def _for(self, stmt: ast.For) -> None:
        builder = self.builder
        if stmt.init is not None:
            self._stmt(stmt.init)
        cond_block = builder.new_block("for.cond")
        body_block = builder.new_block("for.body")
        step_block = builder.new_block("for.inc")
        end_block = builder.new_block("for.end")
        builder.br(cond_block)
        builder.set_block(cond_block)
        if stmt.condition is not None:
            condition = self._truth(self._expr(stmt.condition),
                                    stmt.condition.ctype)
            builder.cond_br(condition, body_block, end_block)
        else:
            builder.br(body_block)
        builder.set_block(body_block)
        self._break_stack.append(end_block)
        self._continue_stack.append(step_block)
        self._stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if not builder.terminated:
            builder.br(step_block)
        builder.set_block(step_block)
        if stmt.advance is not None:
            self._expr(stmt.advance)
        builder.br(cond_block)
        builder.set_block(end_block)

    def _switch(self, stmt: ast.Switch) -> None:
        builder = self.builder
        value = self._expr(stmt.value)
        value_bits = value.type.bits

        markers: list = []
        _collect_case_markers(stmt.body, markers)
        end_block = builder.new_block("switch.end")
        context = {"blocks": {}, "default": None}
        cases: list[tuple[int, ir.Block]] = []
        for marker in markers:
            block = builder.new_block(
                "switch.default" if isinstance(marker, ast.Default)
                else f"switch.case")
            context["blocks"][id(marker)] = block
            if isinstance(marker, ast.Default):
                context["default"] = block
            else:
                mask = (1 << value_bits) - 1
                cases.append((marker.resolved & mask, block))
        default_block = context["default"] or end_block
        builder.switch(value, default_block, cases)

        # The body is laid out linearly; case markers switch the insertion
        # point, and fallthrough between cases is preserved.
        builder.set_block(builder.new_block("switch.body.dead"))
        self._break_stack.append(end_block)
        self._switch_stack.append(context)
        self._stmt(stmt.body)
        self._switch_stack.pop()
        self._break_stack.pop()
        if not builder.terminated:
            builder.br(end_block)
        builder.set_block(end_block)

    def _case_marker(self, stmt: ast.Case) -> None:
        self._enter_case_block(stmt)

    def _default_marker(self, stmt: ast.Default) -> None:
        self._enter_case_block(stmt)

    def _enter_case_block(self, marker) -> None:
        builder = self.builder
        if not self._switch_stack:
            raise CompileError("case label outside switch", marker.loc)
        block = self._switch_stack[-1]["blocks"][id(marker)]
        if not builder.terminated:
            builder.br(block)  # fallthrough from the previous case
        builder.set_block(block)

    # -- expressions ----------------------------------------------------------------

    def _truth(self, value: ir.Value, ctype: ct.CType) -> ir.Value:
        """Convert a value to an i1 condition (comparison with 0/null)."""
        builder = self.builder
        vtype = value.type
        if isinstance(vtype, irt.IntType):
            if vtype.bits == 1:
                return value
            return builder.icmp("ne", value, ir.ConstInt(vtype, 0))
        if isinstance(vtype, irt.FloatType):
            return builder.fcmp("une", value, ir.ConstFloat(vtype, 0.0))
        if isinstance(vtype, irt.PointerType):
            return builder.icmp("ne", value, ir.ConstNull(vtype))
        raise CompileError(f"cannot branch on {vtype}")

    def _expr(self, expr: ast.Expr) -> ir.Value:
        override = self._value_overrides.get(id(expr))
        if override is not None:
            return override
        self.builder.set_loc(expr.loc)
        method = getattr(self, "_expr_" + type(expr).__name__, None)
        if method is None:
            raise CompileError(f"unhandled expr {type(expr).__name__}",
                               expr.loc)
        return method(expr)

    def _addr(self, expr: ast.Expr) -> ir.Value:
        """Generate the address of an lvalue expression."""
        builder = self.builder
        builder.set_loc(expr.loc)
        if isinstance(expr, ast.Ident):
            slot = expr.decl.ir_slot
            if slot is None:
                raise CompileError(f"no storage for {expr.name!r}", expr.loc)
            return slot
        if isinstance(expr, ast.Index):
            base = self._expr(expr.base)
            index = self._expr(expr.index)
            return builder.gep(base, [index],
                               irt.ptr(self.lower_type(expr.ctype)))
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = self._expr(expr.base)
                struct_ctype = expr.base.ctype.target
            else:
                # make().field reads through the call's sret temporary.
                base = self._struct_addr(expr.base)
                struct_ctype = expr.base.ctype
            field_index = struct_ctype.field_index(expr.name)
            result_type = irt.ptr(self.lower_type(expr.ctype))
            return builder.gep(base, [ir.ConstInt(irt.I64, 0),
                                      ir.ConstInt(irt.I32, field_index)],
                               result_type)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self._expr(expr.operand)
        if isinstance(expr, ast.StringLit):
            return self._string_global(expr.data)
        if isinstance(expr, ast.Comma):
            self._expr(expr.lhs)
            return self._addr(expr.rhs)
        raise CompileError(
            f"expression is not an lvalue ({type(expr).__name__})", expr.loc)

    def _struct_addr(self, expr: ast.Expr) -> ir.Value:
        """Address of a struct-typed expression.  Non-lvalues (calls,
        conditionals) evaluate to the address of their backing
        temporary under the aggregate ABI."""
        if expr.is_lvalue:
            return self._addr(expr)
        return self._expr(expr)

    # individual expression kinds -----------------------------------------------

    def _expr_IntLit(self, expr: ast.IntLit) -> ir.Value:
        return ir.ConstInt(self.lower_type(expr.ctype), expr.value)

    def _expr_CharLit(self, expr: ast.CharLit) -> ir.Value:
        return ir.ConstInt(irt.I32, expr.value)

    def _expr_FloatLit(self, expr: ast.FloatLit) -> ir.Value:
        return ir.ConstFloat(self.lower_type(expr.ctype), expr.value)

    def _expr_StringLit(self, expr: ast.StringLit) -> ir.Value:
        # A bare string literal used as a value (rare without decay).
        return self._string_global(expr.data)

    def _expr_Ident(self, expr: ast.Ident) -> ir.Value:
        decl = expr.decl
        if isinstance(decl, (ast.FunctionDecl, ast.FunctionDef)):
            return decl.ir_slot
        if isinstance(expr.ctype, (ct.CArray, ct.CStruct)):
            # Arrays/structs as values only appear under decay or member
            # access; hand back the address.
            return self._addr(expr)
        return self.builder.load(self._addr(expr))

    def _expr_ImplicitCast(self, expr: ast.ImplicitCast) -> ir.Value:
        if expr.kind == "decay":
            operand = expr.operand
            addr = self._addr(operand)
            # addr has type [N x T]*, decay to T*.
            return self.builder.gep(
                addr, [ir.ConstInt(irt.I64, 0), ir.ConstInt(irt.I64, 0)],
                self.lower_type(expr.ctype))
        if expr.kind == "fn-decay":
            return self._expr(expr.operand)
        value = self._expr(expr.operand)
        return self._convert_value(value, expr.operand.ctype, expr.ctype)

    def _expr_Cast(self, expr: ast.Cast) -> ir.Value:
        value = self._expr(expr.operand)
        if isinstance(expr.ctype, ct.CVoid):
            return value
        return self._convert_value(value, expr.operand.ctype, expr.ctype)

    def _convert_value(self, value: ir.Value, source: ct.CType,
                       target: ct.CType) -> ir.Value:
        builder = self.builder
        src = value.type
        dst = self.lower_type(target)
        if src == dst:
            return value
        # Fold conversions of constants right away (clang does the same;
        # it keeps indices like arr[7] recognisably constant in the IR).
        if isinstance(value, ir.ConstInt):
            if isinstance(target, ct.CInt) and target.kind == "bool":
                return ir.ConstInt(dst, 1 if value.value else 0)
            if isinstance(dst, irt.IntType):
                raw = value.signed_value if _is_signed(source) \
                    else value.value
                return ir.ConstInt(dst, raw)
            if isinstance(dst, irt.FloatType):
                raw = value.signed_value if _is_signed(source) \
                    else value.value
                return ir.ConstFloat(dst, float(raw))
        if isinstance(value, ir.ConstFloat) and isinstance(dst,
                                                           irt.FloatType):
            return ir.ConstFloat(dst, value.value)
        src_int = isinstance(src, irt.IntType)
        dst_int = isinstance(dst, irt.IntType)
        src_float = isinstance(src, irt.FloatType)
        dst_float = isinstance(dst, irt.FloatType)
        src_ptr = isinstance(src, irt.PointerType)
        dst_ptr = isinstance(dst, irt.PointerType)
        source_signed = _is_signed(source)
        target_bool = isinstance(target, ct.CInt) and target.kind == "bool"

        if target_bool:
            condition = self._truth(value, source)
            return builder.cast("zext", condition, dst)
        if src_int and dst_int:
            if dst.bits < src.bits:
                return builder.cast("trunc", value, dst)
            kind = "sext" if source_signed else "zext"
            return builder.cast(kind, value, dst)
        if src_int and dst_float:
            kind = "sitofp" if source_signed else "uitofp"
            return builder.cast(kind, value, dst)
        if src_float and dst_int:
            kind = "fptosi" if _is_signed(target) else "fptoui"
            return builder.cast(kind, value, dst)
        if src_float and dst_float:
            kind = "fpext" if dst.bits > src.bits else "fptrunc"
            return builder.cast(kind, value, dst)
        if src_ptr and dst_ptr:
            return builder.cast("bitcast", value, dst)
        if src_ptr and dst_int:
            wide = builder.cast("ptrtoint", value, irt.I64)
            if dst.bits == 64:
                return wide
            return builder.cast("trunc", wide, dst)
        if src_int and dst_ptr:
            if src.bits != 64:
                kind = "sext" if source_signed else "zext"
                value = builder.cast(kind, value, irt.I64)
            return builder.cast("inttoptr", value, dst)
        raise CompileError(f"unsupported conversion {src} -> {dst}")

    def _expr_Unary(self, expr: ast.Unary) -> ir.Value:
        builder = self.builder
        op = expr.op
        if op == "&":
            return self._addr(expr.operand)
        if op == "*":
            pointer = self._expr(expr.operand)
            if isinstance(expr.ctype, (ct.CArray, ct.CStruct, ct.CFunc)):
                return pointer
            return builder.load(pointer)
        if op in ("++", "--"):
            return self._incdec(expr.operand, op, prefix=True)
        operand = self._expr(expr.operand)
        if op == "-":
            if isinstance(operand.type, irt.FloatType):
                return builder.binop("fsub",
                                     ir.ConstFloat(operand.type, 0.0),
                                     operand)
            return builder.binop("sub", ir.ConstInt(operand.type, 0),
                                 operand)
        if op == "+":
            return operand
        if op == "~":
            return builder.binop("xor", operand,
                                 ir.ConstInt(operand.type, -1))
        if op == "!":
            truth = self._truth(operand, expr.operand.ctype)
            flipped = builder.binop("xor", truth, ir.ConstInt(irt.I1, 1))
            return builder.cast("zext", flipped, irt.I32)
        raise CompileError(f"unhandled unary {op}", expr.loc)

    def _expr_Postfix(self, expr: ast.Postfix) -> ir.Value:
        return self._incdec(expr.operand, expr.op, prefix=False)

    def _incdec(self, lvalue: ast.Expr, op: str, prefix: bool) -> ir.Value:
        builder = self.builder
        addr = self._addr(lvalue)
        old = builder.load(addr)
        delta = 1 if op == "++" else -1
        if isinstance(old.type, irt.PointerType):
            new = builder.gep(old, [ir.ConstInt(irt.I64, delta)], old.type)
        elif isinstance(old.type, irt.FloatType):
            new = builder.binop("fadd", old,
                                ir.ConstFloat(old.type, float(delta)))
        else:
            new = builder.binop("add", old, ir.ConstInt(old.type, delta))
        builder.store(new, addr)
        return new if prefix else old

    def _expr_Binary(self, expr: ast.Binary) -> ir.Value:
        builder = self.builder
        op = expr.op
        if op in ("&&", "||"):
            return self._short_circuit(expr)

        lhs_ct = expr.lhs.ctype
        rhs_ct = expr.rhs.ctype
        lhs = self._expr(expr.lhs)

        # Pointer arithmetic.
        if isinstance(lhs_ct, ct.CPointer) and op in ("+", "-") \
                and not isinstance(rhs_ct, ct.CPointer):
            rhs = self._expr(expr.rhs)
            if op == "-":
                rhs = builder.binop("sub", ir.ConstInt(rhs.type, 0), rhs)
            return builder.gep(lhs, [rhs], lhs.type)
        if isinstance(lhs_ct, ct.CPointer) and op == "-" \
                and isinstance(rhs_ct, ct.CPointer):
            rhs = self._expr(expr.rhs)
            lhs_int = builder.cast("ptrtoint", lhs, irt.I64)
            rhs_int = builder.cast("ptrtoint", rhs, irt.I64)
            diff = builder.binop("sub", lhs_int, rhs_int)
            elem_size = lhs_ct.target.size
            if elem_size > 1:
                diff = builder.binop("sdiv", diff,
                                     ir.ConstInt(irt.I64, elem_size))
            return diff

        rhs = self._expr(expr.rhs)
        is_float = isinstance(lhs.type, irt.FloatType)
        signed = _is_signed(lhs_ct)

        if op in ("==", "!=", "<", ">", "<=", ">="):
            if is_float:
                predicate = {"==": "oeq", "!=": "une", "<": "olt",
                             ">": "ogt", "<=": "ole", ">=": "oge"}[op]
                bit = builder.fcmp(predicate, lhs, rhs)
            else:
                if op in ("==", "!="):
                    predicate = "eq" if op == "==" else "ne"
                elif signed:
                    predicate = {"<": "slt", ">": "sgt", "<=": "sle",
                                 ">=": "sge"}[op]
                else:
                    predicate = {"<": "ult", ">": "ugt", "<=": "ule",
                                 ">=": "uge"}[op]
                bit = builder.icmp(predicate, lhs, rhs)
            return builder.cast("zext", bit, irt.I32)

        if is_float:
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
                      "%": "frem"}[op]
        else:
            opcode = {
                "+": "add", "-": "sub", "*": "mul",
                "/": "sdiv" if signed else "udiv",
                "%": "srem" if signed else "urem",
                "&": "and", "|": "or", "^": "xor", "<<": "shl",
                ">>": "ashr" if signed else "lshr",
            }[op]
        if op in ("<<", ">>") and rhs.type != lhs.type:
            rhs = self._resize_int(rhs, lhs.type, _is_signed(rhs_ct))
        return builder.binop(opcode, lhs, rhs)

    def _resize_int(self, value: ir.Value, target: irt.IntType,
                    signed: bool) -> ir.Value:
        if value.type == target:
            return value
        if value.type.bits > target.bits:
            return self.builder.cast("trunc", value, target)
        return self.builder.cast("sext" if signed else "zext", value, target)

    def _short_circuit(self, expr: ast.Binary) -> ir.Value:
        builder = self.builder
        result = builder.alloca(irt.I32, f"{'and' if expr.op == '&&' else 'or'}.tmp")
        lhs = self._truth(self._expr(expr.lhs), expr.lhs.ctype)
        rhs_block = builder.new_block("sc.rhs")
        short_block = builder.new_block("sc.short")
        end_block = builder.new_block("sc.end")
        if expr.op == "&&":
            builder.cond_br(lhs, rhs_block, short_block)
            short_value = 0
        else:
            builder.cond_br(lhs, short_block, rhs_block)
            short_value = 1
        builder.set_block(short_block)
        builder.store(ir.ConstInt(irt.I32, short_value), result)
        builder.br(end_block)
        builder.set_block(rhs_block)
        rhs = self._truth(self._expr(expr.rhs), expr.rhs.ctype)
        rhs_int = builder.cast("zext", rhs, irt.I32)
        builder.store(rhs_int, result)
        builder.br(end_block)
        builder.set_block(end_block)
        return builder.load(result)

    def _expr_Assign(self, expr: ast.Assign) -> ir.Value:
        builder = self.builder
        if isinstance(expr.ctype, ct.CStruct):
            dst = self._addr(expr.lhs)
            src = self._struct_addr(expr.rhs)
            self._emit_copy(dst, src, expr.ctype.size)
            return dst
        addr = self._addr(expr.lhs)
        if expr.op == "=":
            value = self._expr(expr.rhs)
        else:
            # Compound assignment: read once through the shared lvalue node.
            loaded = builder.load(addr)
            self._value_overrides[id(expr.lhs)] = loaded
            try:
                value = self._expr(expr.rhs)
            finally:
                self._value_overrides.pop(id(expr.lhs), None)
            value = self._coerce_store(value, addr.type.pointee,
                                       signed=_is_signed(expr.ctype))
        builder.store(value, addr)
        return value

    def _coerce_store(self, value: ir.Value, target: irt.IRType,
                      signed: bool) -> ir.Value:
        builder = self.builder
        if value.type == target:
            return value
        if isinstance(value.type, irt.IntType) and isinstance(
                target, irt.IntType):
            return self._resize_int(value, target, signed)
        if isinstance(value.type, irt.FloatType) and isinstance(
                target, irt.FloatType):
            kind = "fpext" if target.bits > value.type.bits else "fptrunc"
            return builder.cast(kind, value, target)
        if isinstance(value.type, irt.FloatType) and isinstance(
                target, irt.IntType):
            return builder.cast("fptosi" if signed else "fptoui", value,
                                target)
        if isinstance(value.type, irt.IntType) and isinstance(
                target, irt.FloatType):
            return builder.cast("sitofp" if signed else "uitofp", value,
                                target)
        if isinstance(target, irt.PointerType) and isinstance(
                value.type, irt.PointerType):
            return builder.cast("bitcast", value, target)
        raise CompileError(f"cannot store {value.type} into {target}")

    def _expr_Conditional(self, expr: ast.Conditional) -> ir.Value:
        builder = self.builder
        is_void = isinstance(expr.ctype, ct.CVoid)
        slot = None
        if not is_void:
            slot = builder.alloca(self.lower_type(expr.ctype), "cond.tmp")
        condition = self._truth(self._expr(expr.condition),
                                expr.condition.ctype)
        true_block = builder.new_block("cond.true")
        false_block = builder.new_block("cond.false")
        end_block = builder.new_block("cond.end")
        builder.cond_br(condition, true_block, false_block)
        builder.set_block(true_block)
        value = self._expr(expr.if_true)
        if slot is not None:
            builder.store(value, slot)
        builder.br(end_block)
        builder.set_block(false_block)
        value = self._expr(expr.if_false)
        if slot is not None:
            builder.store(value, slot)
        builder.br(end_block)
        builder.set_block(end_block)
        if slot is None:
            return ir.ConstInt(irt.I32, 0)
        return builder.load(slot)

    def _expr_Call(self, expr: ast.Call) -> ir.Value:
        builder = self.builder
        callee_expr = expr.callee
        # Direct call to a named function.
        if isinstance(callee_expr, ast.Ident) and isinstance(
                callee_expr.decl, (ast.FunctionDecl, ast.FunctionDef)):
            callee = callee_expr.decl.ir_slot
            signature = callee.ftype
        elif isinstance(callee_expr, ast.ImplicitCast) \
                and callee_expr.kind == "fn-decay" \
                and isinstance(callee_expr.operand, ast.Ident) \
                and isinstance(callee_expr.operand.decl,
                               (ast.FunctionDecl, ast.FunctionDef)):
            callee = callee_expr.operand.decl.ir_slot
            signature = callee.ftype
        else:
            callee = self._expr(callee_expr)
            sig_type = callee.type.pointee
            signature = sig_type
        args = []
        sret_tmp = None
        if isinstance(expr.ctype, ct.CStruct):
            # Struct return: the caller allocates the result object and
            # passes its address as a hidden leading argument.
            sret_tmp = builder.alloca(self.lower_type(expr.ctype),
                                      "sret.tmp")
            args.append(sret_tmp)
        for arg in expr.args:
            value = self._expr(arg)
            if isinstance(arg.ctype, ct.CStruct):
                # By-value struct argument: pass a fresh caller-side
                # copy so callee writes never alias the original.
                tmp = builder.alloca(self.lower_type(arg.ctype),
                                     "byval.tmp")
                self._emit_copy(tmp, value, arg.ctype.size)
                value = tmp
            args.append(value)
        value = builder.call(callee, args, signature)
        if sret_tmp is not None:
            return sret_tmp
        if value is None:
            return ir.ConstInt(irt.I32, 0)  # void call used as a value
        return value

    def _expr_Index(self, expr: ast.Index) -> ir.Value:
        if isinstance(expr.ctype, (ct.CArray, ct.CStruct)):
            return self._addr(expr)
        return self.builder.load(self._addr(expr))

    def _expr_Member(self, expr: ast.Member) -> ir.Value:
        if isinstance(expr.ctype, (ct.CArray, ct.CStruct)):
            return self._addr(expr)
        return self.builder.load(self._addr(expr))

    def _expr_SizeofType(self, expr: ast.SizeofType) -> ir.Value:
        return ir.ConstInt(irt.I64, expr.target.size)

    def _expr_SizeofExpr(self, expr: ast.SizeofExpr) -> ir.Value:
        return ir.ConstInt(irt.I64, expr.operand.ctype.size)

    def _expr_Comma(self, expr: ast.Comma) -> ir.Value:
        self._expr(expr.lhs)
        return self._expr(expr.rhs)


def _mk_field(name: str, ftype: irt.IRType):
    from ..ir.types import StructField
    return StructField(name, ftype)


def _fold_const_binary(op: str, lhs, rhs, target: irt.IRType):
    """Fold arithmetic on constants in initializer context."""
    def numeric(const):
        if isinstance(const, ir.ConstFloat):
            return const.value
        if isinstance(const, ir.ConstInt):
            return const.signed_value
        return None

    a = numeric(lhs)
    b = numeric(rhs)
    if a is None or b is None:
        return None
    try:
        value = {"+": lambda: a + b, "-": lambda: a - b,
                 "*": lambda: a * b,
                 "/": lambda: a / b if isinstance(target, irt.FloatType)
                 else int(a / b)}.get(op, lambda: None)()
    except ZeroDivisionError:
        return None
    if value is None:
        return None
    if isinstance(target, irt.FloatType):
        return ir.ConstFloat(target, float(value))
    if isinstance(target, irt.IntType):
        return ir.ConstInt(target, int(value))
    return None


def _collect_case_markers(stmt: ast.Stmt, out: list) -> None:
    """Collect Case/Default markers belonging to the current switch (do
    not descend into nested switches)."""
    if isinstance(stmt, (ast.Case, ast.Default)):
        out.append(stmt)
    elif isinstance(stmt, ast.Block):
        for item in stmt.items:
            _collect_case_markers(item, out)
    elif isinstance(stmt, ast.If):
        _collect_case_markers(stmt.then_body, out)
        if stmt.else_body is not None:
            _collect_case_markers(stmt.else_body, out)
    elif isinstance(stmt, (ast.While, ast.DoWhile)):
        _collect_case_markers(stmt.body, out)
    elif isinstance(stmt, ast.For):
        _collect_case_markers(stmt.body, out)
    elif isinstance(stmt, ast.Label):
        _collect_case_markers(stmt.body, out)


def _is_signed(ctype: ct.CType | None) -> bool:
    if isinstance(ctype, ct.CInt):
        return ctype.signed
    if isinstance(ctype, ct.CEnum):
        return True
    return True


def _coerce_const(const: ir.Constant, target: irt.IRType) -> ir.Constant:
    if const.type == target:
        return const
    if isinstance(const, ir.ConstInt) and isinstance(target, irt.IntType):
        return ir.ConstInt(target, const.signed_value)
    if isinstance(const, ir.ConstInt) and isinstance(target, irt.FloatType):
        return ir.ConstFloat(target, float(const.signed_value))
    if isinstance(const, ir.ConstFloat) and isinstance(target,
                                                       irt.FloatType):
        return ir.ConstFloat(target, const.value)
    if isinstance(const, ir.ConstFloat) and isinstance(target, irt.IntType):
        return ir.ConstInt(target, int(const.value))
    if isinstance(const, ir.ConstNull) and isinstance(target,
                                                      irt.PointerType):
        return ir.ConstNull(target)
    if isinstance(const, ir.ConstInt) and isinstance(target,
                                                     irt.PointerType):
        if const.value == 0:
            return ir.ConstNull(target)
    if isinstance(const, (ir.ConstGEP,)) and isinstance(target,
                                                        irt.PointerType):
        return ir.ConstGEP(target, const.base, const.byte_offset)
    if isinstance(const, ir.Constant) and isinstance(target,
                                                     irt.PointerType):
        from ..ir.module import Function
        if isinstance(const, Function):
            return const
    raise CompileError(f"cannot coerce constant {const.short()} to {target}")


def generate(unit: ast.TranslationUnit, name: str = "module") -> ir.Module:
    return IRGen(name).run(unit)
