"""Semantic analysis.

Annotates every expression with its C type, resolves identifiers to their
declarations, inserts :class:`~repro.cfront.ast.ImplicitCast` nodes for the
usual arithmetic conversions / array decay / argument promotions, and folds
constant expressions needed by later stages (case labels).

After this pass, the IR generator can lower the tree without re-deriving any
C conversion rule.
"""

from __future__ import annotations

from . import ast
from . import ctypes as ct
from .errors import TypeCheckError
from .parser import _eval_const


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.names: dict[str, object] = {}

    def declare(self, name: str, decl) -> None:
        self.names[name] = decl

    def lookup(self, name: str):
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Sema:
    def __init__(self):
        self.globals = _Scope()
        self.scope = self.globals
        self.current_function: ast.FunctionDef | None = None

    # -- scopes ----------------------------------------------------------------

    def _push(self) -> None:
        self.scope = _Scope(self.scope)

    def _pop(self) -> None:
        assert self.scope.parent is not None
        self.scope = self.scope.parent

    # -- entry -----------------------------------------------------------------

    def run(self, unit: ast.TranslationUnit) -> ast.TranslationUnit:
        for decl in unit.decls:
            if isinstance(decl, ast.FunctionDecl):
                self.globals.declare(decl.name, decl)
            elif isinstance(decl, ast.FunctionDef):
                self.globals.declare(decl.name, decl)
            elif isinstance(decl, ast.VarDecl):
                if decl.storage != "typedef":
                    self.globals.declare(decl.name, decl)
        for decl in unit.decls:
            if isinstance(decl, ast.FunctionDef):
                self._function(decl)
            elif isinstance(decl, ast.VarDecl) and decl.storage != "typedef":
                self._global_var(decl)
        return unit

    def _global_var(self, decl: ast.VarDecl) -> None:
        if decl.init is not None:
            decl.init = self._initializer(decl.init, decl.ctype)
        if not decl.ctype.is_complete and decl.storage != "extern":
            raise TypeCheckError(
                f"global {decl.name!r} has incomplete type", decl.loc)

    def _function(self, func: ast.FunctionDef) -> None:
        self.current_function = func
        self._push()
        for param in func.params:
            self.scope.declare(param.name, param)
        self._block(func.body, push_scope=False)
        self._pop()
        self.current_function = None

    # -- statements ---------------------------------------------------------------

    def _block(self, block: ast.Block, push_scope: bool = True) -> None:
        if push_scope:
            self._push()
        for item in block.items:
            self._stmt(item)
        if push_scope:
            self._pop()

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._expr(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._local_var(decl)
        elif isinstance(stmt, ast.If):
            stmt.condition = self._scalar(self._rvalue(stmt.condition))
            self._stmt(stmt.then_body)
            if stmt.else_body is not None:
                self._stmt(stmt.else_body)
        elif isinstance(stmt, ast.While):
            stmt.condition = self._scalar(self._rvalue(stmt.condition))
            self._stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._stmt(stmt.body)
            stmt.condition = self._scalar(self._rvalue(stmt.condition))
        elif isinstance(stmt, ast.For):
            self._push()
            if stmt.init is not None:
                self._stmt(stmt.init)
            if stmt.condition is not None:
                stmt.condition = self._scalar(self._rvalue(stmt.condition))
            if stmt.advance is not None:
                stmt.advance = self._expr(stmt.advance)
            self._stmt(stmt.body)
            self._pop()
        elif isinstance(stmt, ast.Switch):
            stmt.value = self._rvalue(stmt.value)
            if not ct.is_integer(stmt.value.ctype):
                raise TypeCheckError("switch value must be an integer",
                                     stmt.loc)
            stmt.value = self._convert(
                stmt.value, ct.integer_promote(stmt.value.ctype))
            self._stmt(stmt.body)
        elif isinstance(stmt, ast.Case):
            value = _eval_const(stmt.value)
            if value is None:
                raise TypeCheckError("case label must be constant", stmt.loc)
            stmt.resolved = value
        elif isinstance(stmt, ast.Return):
            ret_type = self.current_function.ctype.ret
            if stmt.value is not None:
                if isinstance(ret_type, ct.CVoid):
                    raise TypeCheckError(
                        "return with value in void function", stmt.loc)
                stmt.value = self._convert(self._rvalue(stmt.value),
                                           ret_type)
            elif not isinstance(ret_type, ct.CVoid):
                raise TypeCheckError("return without value", stmt.loc)
        elif isinstance(stmt, ast.Label):
            self._stmt(stmt.body)
        elif isinstance(stmt, (ast.EmptyStmt, ast.Break, ast.Continue,
                               ast.Goto, ast.Default)):
            pass
        else:
            raise TypeCheckError(f"unhandled statement {type(stmt).__name__}",
                                 stmt.loc)

    def _local_var(self, decl: ast.VarDecl) -> None:
        if decl.init is not None:
            decl.init = self._initializer(decl.init, decl.ctype)
        if not decl.ctype.is_complete:
            raise TypeCheckError(
                f"variable {decl.name!r} has incomplete type", decl.loc)
        self.scope.declare(decl.name, decl)

    def _initializer(self, init, target: ct.CType):
        if isinstance(init, ast.InitList):
            self._init_list(init, target)
            return init
        if isinstance(init, ast.StringLit) and isinstance(target, ct.CArray):
            init.ctype = ct.CArray(ct.CHAR, len(init.data) + 1)
            return init
        expr = self._rvalue(init)
        if isinstance(target, (ct.CArray, ct.CStruct)):
            if expr.ctype == target:
                return expr
            raise TypeCheckError(
                f"cannot initialize {target} from {expr.ctype}", init.loc)
        return self._convert(expr, target)

    def _init_list(self, init: ast.InitList, target: ct.CType) -> None:
        if isinstance(target, ct.CArray):
            elem = target.elem
            if target.count is not None and len(init.items) > target.count:
                raise TypeCheckError("too many initializers", init.loc)
            init.items = [self._initializer(item, elem)
                          for item in init.items]
        elif isinstance(target, ct.CStruct):
            fields = target.fields or []
            if len(init.items) > len(fields):
                raise TypeCheckError("too many initializers", init.loc)
            init.items = [
                self._initializer(item, fields[i].type)
                for i, item in enumerate(init.items)
            ]
        elif len(init.items) == 1:
            # Scalar in braces: `int x = {3};`
            init.items = [self._initializer(init.items[0], target)]
        else:
            raise TypeCheckError("invalid initializer list", init.loc)

    # -- expressions -----------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> ast.Expr:
        method = getattr(self, "_expr_" + type(expr).__name__, None)
        if method is None:
            raise TypeCheckError(
                f"unhandled expression {type(expr).__name__}", expr.loc)
        return method(expr)

    def _rvalue(self, expr: ast.Expr) -> ast.Expr:
        """Type-check and apply array/function decay."""
        expr = self._expr(expr)
        return self._decay(expr)

    def _decay(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr.ctype, ct.CArray):
            return ast.ImplicitCast("decay", ct.CPointer(expr.ctype.elem),
                                    expr)
        if isinstance(expr.ctype, ct.CFunc):
            return ast.ImplicitCast("fn-decay", ct.CPointer(expr.ctype),
                                    expr)
        return expr

    def _convert(self, expr: ast.Expr, target: ct.CType) -> ast.Expr:
        source = expr.ctype
        if source == target:
            return expr
        if ct.is_arithmetic(source) and ct.is_arithmetic(target):
            return ast.ImplicitCast("convert", target, expr)
        if isinstance(source, ct.CPointer) and isinstance(target, ct.CPointer):
            return ast.ImplicitCast("convert", target, expr)
        if isinstance(target, ct.CPointer) and isinstance(expr, ast.IntLit) \
                and expr.value == 0:
            return ast.ImplicitCast("convert", target, expr)  # NULL
        if isinstance(target, ct.CPointer) and ct.is_integer(source):
            # Integers convert to pointers with a diagnostic in real C; the
            # corpus relies on NULL-ish conversions, so allow it.
            return ast.ImplicitCast("convert", target, expr)
        if ct.is_integer(target) and isinstance(source, ct.CPointer):
            return ast.ImplicitCast("convert", target, expr)
        if isinstance(target, ct.CVoid):
            return expr
        raise TypeCheckError(f"cannot convert {source} to {target}",
                             expr.loc)

    def _scalar(self, expr: ast.Expr) -> ast.Expr:
        if not ct.is_scalar(expr.ctype):
            raise TypeCheckError(
                f"expected scalar, found {expr.ctype}", expr.loc)
        return expr

    # individual expression kinds ---------------------------------------------

    def _expr_IntLit(self, expr: ast.IntLit) -> ast.Expr:
        if expr.ctype is None:
            expr.ctype = ct.INT
        return expr

    def _expr_FloatLit(self, expr: ast.FloatLit) -> ast.Expr:
        expr.ctype = ct.FLOAT if expr.is_single else ct.DOUBLE
        return expr

    def _expr_CharLit(self, expr: ast.CharLit) -> ast.Expr:
        expr.ctype = ct.INT
        return expr

    def _expr_StringLit(self, expr: ast.StringLit) -> ast.Expr:
        expr.ctype = ct.CArray(ct.CHAR, len(expr.data) + 1)
        expr.is_lvalue = True
        return expr

    def _expr_Ident(self, expr: ast.Ident) -> ast.Expr:
        decl = self.scope.lookup(expr.name)
        if decl is None:
            raise TypeCheckError(f"use of undeclared identifier "
                                 f"{expr.name!r}", expr.loc)
        expr.decl = decl
        expr.ctype = decl.ctype
        expr.is_lvalue = not isinstance(decl, (ast.FunctionDecl,
                                               ast.FunctionDef))
        return expr

    def _expr_ImplicitCast(self, expr: ast.ImplicitCast) -> ast.Expr:
        return expr  # already typed

    def _expr_Unary(self, expr: ast.Unary) -> ast.Expr:
        op = expr.op
        if op == "&":
            operand = self._expr(expr.operand)
            if isinstance(operand.ctype, ct.CFunc):
                expr.operand = operand
                expr.ctype = ct.CPointer(operand.ctype)
                return expr
            if not operand.is_lvalue:
                raise TypeCheckError("cannot take address of rvalue",
                                     expr.loc)
            expr.operand = operand
            expr.ctype = ct.CPointer(operand.ctype)
            return expr
        if op == "*":
            operand = self._rvalue(expr.operand)
            if not isinstance(operand.ctype, ct.CPointer):
                raise TypeCheckError(
                    f"cannot dereference {operand.ctype}", expr.loc)
            expr.operand = operand
            target = operand.ctype.target
            if isinstance(target, ct.CFunc):
                expr.ctype = target  # dereferencing a function pointer
            else:
                expr.ctype = target
                expr.is_lvalue = True
            return expr
        if op in ("++", "--"):
            operand = self._expr(expr.operand)
            if not operand.is_lvalue:
                raise TypeCheckError(f"{op} requires an lvalue", expr.loc)
            expr.operand = operand
            expr.ctype = operand.ctype
            return expr
        operand = self._rvalue(expr.operand)
        if op in ("-", "+"):
            if not ct.is_arithmetic(operand.ctype):
                raise TypeCheckError(f"unary {op} on {operand.ctype}",
                                     expr.loc)
            if ct.is_integer(operand.ctype):
                operand = self._convert(operand,
                                        ct.integer_promote(operand.ctype))
            expr.operand = operand
            expr.ctype = operand.ctype
            return expr
        if op == "~":
            if not ct.is_integer(operand.ctype):
                raise TypeCheckError(f"~ on {operand.ctype}", expr.loc)
            operand = self._convert(operand,
                                    ct.integer_promote(operand.ctype))
            expr.operand = operand
            expr.ctype = operand.ctype
            return expr
        if op == "!":
            self._scalar(operand)
            expr.operand = operand
            expr.ctype = ct.INT
            return expr
        raise TypeCheckError(f"unhandled unary {op}", expr.loc)

    def _expr_Postfix(self, expr: ast.Postfix) -> ast.Expr:
        operand = self._expr(expr.operand)
        if not operand.is_lvalue:
            raise TypeCheckError(f"{expr.op} requires an lvalue", expr.loc)
        expr.operand = operand
        expr.ctype = operand.ctype
        return expr

    def _expr_Binary(self, expr: ast.Binary) -> ast.Expr:
        op = expr.op
        lhs = self._rvalue(expr.lhs)
        rhs = self._rvalue(expr.rhs)

        if op in ("&&", "||"):
            self._scalar(lhs)
            self._scalar(rhs)
            expr.lhs, expr.rhs = lhs, rhs
            expr.ctype = ct.INT
            return expr

        lptr = isinstance(lhs.ctype, ct.CPointer)
        rptr = isinstance(rhs.ctype, ct.CPointer)

        if op == "+" and (lptr or rptr):
            if lptr and rptr:
                raise TypeCheckError("cannot add two pointers", expr.loc)
            if rptr:
                lhs, rhs = rhs, lhs  # canonicalize to ptr + int
            if not ct.is_integer(rhs.ctype):
                raise TypeCheckError("pointer + non-integer", expr.loc)
            expr.lhs = lhs
            expr.rhs = self._convert(rhs, ct.LONG)
            expr.ctype = lhs.ctype
            return expr
        if op == "-" and lptr:
            if rptr:
                expr.lhs, expr.rhs = lhs, rhs
                expr.ctype = ct.LONG
                return expr
            if not ct.is_integer(rhs.ctype):
                raise TypeCheckError("pointer - non-integer", expr.loc)
            expr.lhs = lhs
            expr.rhs = self._convert(rhs, ct.LONG)
            expr.ctype = lhs.ctype
            return expr

        if op in ("==", "!=", "<", ">", "<=", ">=") and (lptr or rptr):
            if lptr and not rptr:
                rhs = self._convert(rhs, lhs.ctype)
            elif rptr and not lptr:
                lhs = self._convert(lhs, rhs.ctype)
            elif lhs.ctype != rhs.ctype:
                rhs = self._convert(rhs, lhs.ctype)
            expr.lhs, expr.rhs = lhs, rhs
            expr.ctype = ct.INT
            return expr

        if not (ct.is_arithmetic(lhs.ctype) and ct.is_arithmetic(rhs.ctype)):
            raise TypeCheckError(
                f"invalid operands to {op}: {lhs.ctype} and {rhs.ctype}",
                expr.loc)

        if op in ("<<", ">>"):
            lhs = self._convert(lhs, ct.integer_promote(lhs.ctype))
            rhs = self._convert(rhs, ct.integer_promote(rhs.ctype))
            expr.lhs, expr.rhs = lhs, rhs
            expr.ctype = lhs.ctype
            return expr

        common = ct.usual_arithmetic_conversion(lhs.ctype, rhs.ctype)
        if op in ("%", "&", "|", "^") and isinstance(common, ct.CFloat):
            raise TypeCheckError(f"{op} requires integer operands", expr.loc)
        expr.lhs = self._convert(lhs, common)
        expr.rhs = self._convert(rhs, common)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            expr.ctype = ct.INT
        else:
            expr.ctype = common
        return expr

    def _expr_Assign(self, expr: ast.Assign) -> ast.Expr:
        lhs = self._expr(expr.lhs)
        if not lhs.is_lvalue:
            raise TypeCheckError("assignment to rvalue", expr.loc)
        if isinstance(lhs.ctype, ct.CArray):
            raise TypeCheckError("assignment to array", expr.loc)
        if expr.op == "=":
            rhs = self._rvalue(expr.rhs)
            if isinstance(lhs.ctype, ct.CStruct):
                if rhs.ctype != lhs.ctype:
                    raise TypeCheckError("struct assignment type mismatch",
                                         expr.loc)
                expr.lhs, expr.rhs = lhs, rhs
                expr.ctype = lhs.ctype
                return expr
            expr.rhs = self._convert(rhs, lhs.ctype)
        else:
            # Compound assignment: typecheck as lhs OP rhs, then store.
            binary = ast.Binary(expr.op[:-1], _clone_for_read(lhs),
                                expr.rhs, expr.loc)
            typed = self._expr_Binary(binary)
            expr.rhs = typed
            if ct.is_arithmetic(typed.ctype) and ct.is_arithmetic(lhs.ctype):
                expr.rhs = self._convert(typed, lhs.ctype)
        expr.lhs = lhs
        expr.ctype = lhs.ctype
        return expr

    def _expr_Conditional(self, expr: ast.Conditional) -> ast.Expr:
        expr.condition = self._scalar(self._rvalue(expr.condition))
        if_true = self._rvalue(expr.if_true)
        if_false = self._rvalue(expr.if_false)
        tt, ft = if_true.ctype, if_false.ctype
        if ct.is_arithmetic(tt) and ct.is_arithmetic(ft):
            common = ct.usual_arithmetic_conversion(tt, ft)
            if_true = self._convert(if_true, common)
            if_false = self._convert(if_false, common)
            expr.ctype = common
        elif isinstance(tt, ct.CPointer) and isinstance(ft, ct.CPointer):
            expr.ctype = tt
            if_false = self._convert(if_false, tt)
        elif isinstance(tt, ct.CPointer) and ct.is_integer(ft):
            if_false = self._convert(if_false, tt)
            expr.ctype = tt
        elif isinstance(ft, ct.CPointer) and ct.is_integer(tt):
            if_true = self._convert(if_true, ft)
            expr.ctype = ft
        elif tt == ft:
            expr.ctype = tt
        else:
            raise TypeCheckError(
                f"incompatible conditional arms: {tt} and {ft}", expr.loc)
        expr.if_true = if_true
        expr.if_false = if_false
        return expr

    def _expr_Cast(self, expr: ast.Cast) -> ast.Expr:
        operand = self._rvalue(expr.operand)
        target = expr.target
        if not (ct.is_scalar(target) or isinstance(target, ct.CVoid)):
            raise TypeCheckError(f"invalid cast target {target}", expr.loc)
        if not ct.is_scalar(operand.ctype) and not isinstance(
                target, ct.CVoid):
            raise TypeCheckError(f"cannot cast {operand.ctype}", expr.loc)
        expr.operand = operand
        expr.ctype = target
        return expr

    def _expr_SizeofExpr(self, expr: ast.SizeofExpr) -> ast.Expr:
        operand = self._expr(expr.operand)  # no decay inside sizeof
        expr.operand = operand
        expr.ctype = ct.ULONG
        return expr

    def _expr_SizeofType(self, expr: ast.SizeofType) -> ast.Expr:
        expr.ctype = ct.ULONG
        return expr

    def _expr_Call(self, expr: ast.Call) -> ast.Expr:
        callee = self._expr(expr.callee)
        ftype: ct.CFunc
        if isinstance(callee.ctype, ct.CFunc):
            ftype = callee.ctype
        elif isinstance(callee.ctype, ct.CPointer) \
                and isinstance(callee.ctype.target, ct.CFunc):
            ftype = callee.ctype.target
        else:
            raise TypeCheckError(f"called object is not a function "
                                 f"({callee.ctype})", expr.loc)
        args = [self._rvalue(arg) for arg in expr.args]
        n_fixed = len(ftype.params)
        if len(args) < n_fixed or (len(args) > n_fixed
                                   and not ftype.is_varargs):
            raise TypeCheckError(
                f"call expects {n_fixed} arguments, got {len(args)}",
                expr.loc)
        converted = []
        for i, arg in enumerate(args):
            if i < n_fixed:
                converted.append(self._convert(arg, ftype.params[i]))
            else:
                converted.append(self._default_promote(arg))
        expr.callee = callee
        expr.args = converted
        expr.ctype = ftype.ret
        return expr

    def _default_promote(self, expr: ast.Expr) -> ast.Expr:
        """Default argument promotions for variadic arguments."""
        t = expr.ctype
        if isinstance(t, ct.CFloat) and t.bits == 32:
            return self._convert(expr, ct.DOUBLE)
        if ct.is_integer(t):
            promoted = ct.integer_promote(t)
            return self._convert(expr, promoted)
        return expr

    def _expr_Index(self, expr: ast.Index) -> ast.Expr:
        base = self._rvalue(expr.base)
        index = self._rvalue(expr.index)
        if ct.is_integer(base.ctype) and isinstance(index.ctype, ct.CPointer):
            base, index = index, base  # `3[arr]`
        if not isinstance(base.ctype, ct.CPointer):
            raise TypeCheckError(f"cannot index {base.ctype}", expr.loc)
        if not ct.is_integer(index.ctype):
            raise TypeCheckError("array index must be an integer", expr.loc)
        expr.base = base
        expr.index = self._convert(index, ct.LONG)
        expr.ctype = base.ctype.target
        expr.is_lvalue = True
        return expr

    def _expr_Member(self, expr: ast.Member) -> ast.Expr:
        if expr.arrow:
            base = self._rvalue(expr.base)
            if not (isinstance(base.ctype, ct.CPointer)
                    and isinstance(base.ctype.target, ct.CStruct)):
                raise TypeCheckError(
                    f"-> on non-struct-pointer ({base.ctype})", expr.loc)
            struct = base.ctype.target
        else:
            base = self._expr(expr.base)
            if not isinstance(base.ctype, ct.CStruct):
                raise TypeCheckError(f". on non-struct ({base.ctype})",
                                     expr.loc)
            struct = base.ctype
        try:
            field = struct.field(expr.name)
        except KeyError:
            raise TypeCheckError(
                f"no member {expr.name!r} in {struct}", expr.loc) from None
        expr.base = base
        expr.ctype = field.type
        expr.is_lvalue = True
        return expr

    def _expr_Comma(self, expr: ast.Comma) -> ast.Expr:
        expr.lhs = self._expr(expr.lhs)
        expr.rhs = self._rvalue(expr.rhs)
        expr.ctype = expr.rhs.ctype
        return expr


def _clone_for_read(lvalue: ast.Expr) -> ast.Expr:
    """Wrap an already-typed lvalue so compound assignment can reuse it as
    the read operand without re-running sema on it."""
    return lvalue


def analyze(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    return Sema().run(unit)
